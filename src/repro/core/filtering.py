"""Event filtering: "users can only specify what to monitor" (§2).

A :class:`FilterSpec` declares *what* to keep — by event id, node, field
predicates, and a sampling ratio — and is enforceable at two altitudes:

* **at the external sensor** (the interesting case): the ISM pushes a
  spec to an EXS over the control channel
  (:class:`repro.wire.protocol.SetFilter`), and records that fail it are
  dropped *before* XDR encoding and transfer — the §2 trade of
  completeness against transfer volume, applied at the source.  The EXS
  evaluates the spec through the compiled form
  (:mod:`repro.core.predicate`), which tests the packed ring payload
  without decoding it;
* **at a consumer** (:class:`FilteringConsumer`): a local view for one
  tool without affecting what other consumers see.

Sampling (``sample_every=N``) keeps every N-th record *per event id*, so
a rare event is not starved by a chatty one sharing the stream.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.records import EventRecord

#: Comparison operators a :class:`FieldTest` may use.  The tuple index is
#: the operator's wire code in :class:`repro.wire.protocol.SetFilter`.
FIELD_TEST_OPS: tuple[str, ...] = ("eq", "ne", "lt", "le", "gt", "ge")

_OP_FNS: dict[str, Callable[[Any, Any], bool]] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


@dataclass(frozen=True)
class FieldTest:
    """One pushed-down predicate over a record field: ``values[i] <op> v``.

    Tests are numeric: a record whose ``field_index``-th field is missing
    or non-numeric (string/opaque) fails the test — predicates select
    records they can actually evaluate.  Field tests on ``X_TS`` fields
    compare the sensor-written (pre-correction) value: the source-side
    filter runs before the EXS applies its clock correction.
    """

    field_index: int
    op: str
    value: int | float

    def __post_init__(self) -> None:
        if not 0 <= self.field_index <= 254:
            raise ValueError(f"field_index {self.field_index} outside [0, 254]")
        if self.op not in _OP_FNS:
            raise ValueError(f"unknown field-test op {self.op!r}")
        if isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
            raise TypeError(f"field-test value must be numeric, got {self.value!r}")
        if isinstance(self.value, int) and not _I64_MIN <= self.value <= _I64_MAX:
            raise ValueError(f"field-test value {self.value} outside i64 range")

    def evaluate(self, values: Sequence[Any]) -> bool:
        """Apply the test to one record's value tuple."""
        if self.field_index >= len(values):
            return False
        value = values[self.field_index]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        return _OP_FNS[self.op](value, self.value)


@dataclass(frozen=True)
class FilterSpec:
    """A declarative record filter.

    Attributes
    ----------
    allowed_events:
        When not None, only these event ids pass (whitelist).
    blocked_events:
        These event ids never pass (applied after the whitelist).
    allowed_nodes:
        When not None, only records from these nodes pass.
    sample_every:
        Keep one record in every ``sample_every`` per event id (1 = all).
    field_tests:
        Pushed-down value predicates; every test must pass (conjunction).
    """

    allowed_events: frozenset[int] | None = None
    blocked_events: frozenset[int] = frozenset()
    allowed_nodes: frozenset[int] | None = None
    sample_every: int = 1
    field_tests: tuple[FieldTest, ...] = ()

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        # Normalize plain iterables so callers can pass sets/lists.
        for name in ("allowed_events", "allowed_nodes"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, frozenset):
                object.__setattr__(self, name, frozenset(value))
        if not isinstance(self.blocked_events, frozenset):
            object.__setattr__(
                self, "blocked_events", frozenset(self.blocked_events)
            )
        if not isinstance(self.field_tests, tuple):
            object.__setattr__(self, "field_tests", tuple(self.field_tests))
        for test in self.field_tests:
            if not isinstance(test, FieldTest):
                raise TypeError(f"field_tests entries must be FieldTest, got {test!r}")

    @property
    def is_pass_through(self) -> bool:
        """True when the spec cannot drop anything."""
        return (
            self.allowed_events is None
            and not self.blocked_events
            and self.allowed_nodes is None
            and self.sample_every == 1
            and not self.field_tests
        )

    def admits(self, record: EventRecord) -> bool:
        """Identity part of the filter (event/node sets only)."""
        if self.allowed_events is not None and record.event_id not in self.allowed_events:
            return False
        if record.event_id in self.blocked_events:
            return False
        if self.allowed_nodes is not None and record.node_id not in self.allowed_nodes:
            return False
        return True

    def matches(self, record: EventRecord) -> bool:
        """Full static (non-sampling) decision: identity sets + field tests.

        This is the reference semantics the compiled pushdown predicate
        (:class:`repro.core.predicate.CompiledFilterState`) must agree
        with on every record — the equivalence is property-tested.
        """
        if not self.admits(record):
            return False
        for test in self.field_tests:
            if not test.evaluate(record.values):
                return False
        return True


class FilterState:
    """A :class:`FilterSpec` plus the per-event sampling counters.

    Separate from the spec so the spec stays a hashable value object that
    can travel over the wire.
    """

    def __init__(self, spec: FilterSpec) -> None:
        self.spec = spec
        self._counters: dict[int, int] = {}
        #: Records dropped by this filter.
        self.dropped = 0
        #: Records passed.
        self.passed = 0

    def admit(self, record: EventRecord) -> bool:
        """Full filter decision, advancing sampling state."""
        if not self.spec.matches(record):
            self.dropped += 1
            return False
        n = self.spec.sample_every
        if n > 1:
            count = self._counters.get(record.event_id, 0)
            self._counters[record.event_id] = count + 1
            if count % n != 0:
                self.dropped += 1
                return False
        self.passed += 1
        return True


class FilteringConsumer:
    """Wrap a consumer with a local filter view."""

    def __init__(self, inner, spec: FilterSpec) -> None:
        self.inner = inner
        self.state = FilterState(spec)

    def deliver(self, record: EventRecord) -> None:
        """Forward the record to the inner consumer when admitted."""
        if self.state.admit(record):
            self.inner.deliver(record)

    def close(self) -> None:
        """Close the wrapped consumer."""
        self.inner.close()
