"""Causally-related event (CRE) matching (§3.2, §3.6).

Applications mark causality with the system field types: an ``X_REASON``
field publishes a ``u_long`` identifier, and an ``X_CONSEQ`` field declares
that this event must follow the reason event carrying the same identifier.
Clock synchronization cannot guarantee that timestamps respect causality —
when the EXS clocks are further apart than the causal information's transit
time, a *tachyon* appears: a consequence that seems to precede its reason.

The ISM matches markers through a hash table as records come off the
on-line sorter:

* a consequence with no reason seen yet is **parked** until its reason is
  processed — or until a timeout expires, "because its peer may have been
  dropped";
* when a reason arrives and a waiting consequence's timestamp is smaller,
  the consequence's timestamp is **overridden by a larger value** (the
  causality is authoritative over the clocks);
* every tachyon is proof the clocks are not synchronized, so the matcher
  immediately requests **an extra clock-synchronization round** through the
  callback the ISM wires to :meth:`BriskSyncMaster.request_extra_round`.

The paper notes the flip side (benchmark A5): instrumenting causally-related
events *helps* BRISK keep the EXS clocks synchronized, reducing tachyons
among the events that are not marked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.records import EventRecord, FieldType


@dataclass(frozen=True, slots=True)
class CreConfig:
    """Causal-matcher tuning knobs.

    ``timeout_us`` bounds how long either kind of marked event is kept in
    memory; ``epsilon_us`` is how far past the reason a tachyonic
    consequence is pushed.
    """

    timeout_us: int = 5_000_000
    epsilon_us: int = 1

    def __post_init__(self) -> None:
        if self.timeout_us < 0:
            raise ValueError("timeout_us must be non-negative")
        if self.epsilon_us < 1:
            raise ValueError("epsilon_us must be >= 1")


@dataclass
class CreStats:
    """Counters maintained by the matcher."""

    reasons_seen: int = 0
    consequences_seen: int = 0
    #: Consequences parked at least once awaiting their reason.
    parked: int = 0
    #: Timestamp overrides applied (tachyons corrected).
    tachyons_fixed: int = 0
    #: Parked consequences released by timeout (peer presumed dropped).
    timed_out_consequences: int = 0
    #: Reasons expired from the hash table by timeout.
    timed_out_reasons: int = 0
    #: Extra synchronization rounds requested.
    sync_requests: int = 0


@dataclass
class _ParkedConseq:
    record: EventRecord
    parked_at: int
    #: Identifiers still missing a reason.
    waiting_for: set[int] = field(default_factory=set)


class CausalMatcher:
    """Hash-table matcher for reason/consequence markers.

    ``on_tachyon`` is invoked (at most once per processed record) whenever a
    timestamp override proves the clocks un-synchronized; the ISM connects
    it to the sync master's extra-round request.
    """

    def __init__(
        self,
        config: CreConfig = CreConfig(),
        on_tachyon: Callable[[], None] | None = None,
    ) -> None:
        self.config = config
        self.on_tachyon = on_tachyon
        self.stats = CreStats()
        # reason id → (timestamp of the reason event, when it was seen).
        self._reasons: dict[int, tuple[int, int]] = {}
        # reason id → parked consequences waiting on that id.
        self._waiting: dict[int, list[_ParkedConseq]] = {}
        # field-type tuple → carries causal markers?  The wire decoder
        # interns schemas, so the same tuple object recurs and the batch
        # path answers "not causal" with one dict hit instead of building
        # the reason/consequence id tuples per record.
        self._schema_causal: dict[tuple, bool] = {}
        # Unique consequence records currently parked, maintained on
        # park/release/expire so observability reads are O(1).
        self._parked_now = 0

    # ------------------------------------------------------------------
    @property
    def parked_count(self) -> int:
        """Consequence records currently held."""
        return sum(
            1
            for parked_list in self._waiting.values()
            for _ in parked_list
        )

    @property
    def parked_now(self) -> int:
        """Unique parked consequence records, O(1) (a record waiting on
        several reasons counts once, unlike :attr:`parked_count`)."""
        return self._parked_now

    @property
    def reason_table_size(self) -> int:
        """Reason identifiers currently remembered, O(1)."""
        return len(self._reasons)

    @property
    def waiting_table_size(self) -> int:
        """Reason identifiers with at least one waiter, O(1)."""
        return len(self._waiting)

    def process(self, record: EventRecord, now: int) -> list[EventRecord]:
        """Run one sorted record through the matcher.

        Returns the records now ready for delivery, in order: the input
        record (possibly timestamp-corrected) followed by any parked
        consequences it released.  An empty list means the record was
        parked.
        """
        if not record.is_causal:
            return [record]

        out: list[EventRecord] = []
        released: list[EventRecord] = []
        tachyon = False

        reason_ids = record.reason_ids
        conseq_ids = record.conseq_ids

        # A consequence missing any reason is parked on all missing ids.
        if conseq_ids:
            self.stats.consequences_seen += 1
            missing = {cid for cid in conseq_ids if cid not in self._reasons}
            if missing:
                parked = _ParkedConseq(
                    record=record, parked_at=now, waiting_for=missing
                )
                for cid in missing:
                    self._waiting.setdefault(cid, []).append(parked)
                self.stats.parked += 1
                self._parked_now += 1
                # Reasons the record itself provides still register below —
                # a parked record can unblock others even before delivery?
                # No: causality says this record precedes them, and this
                # record has not been delivered.  Register nothing yet; the
                # release path handles its reasons.
                return []
            # All reasons present: enforce ordering against the latest one.
            latest_reason_ts = max(self._reasons[cid][0] for cid in conseq_ids)
            if record.timestamp <= latest_reason_ts:
                record = record.with_timestamp(
                    latest_reason_ts + self.config.epsilon_us
                )
                self.stats.tachyons_fixed += 1
                tachyon = True

        if reason_ids:
            self.stats.reasons_seen += 1
            for rid in reason_ids:
                self._reasons[rid] = (record.timestamp, now)
                waiters = self._waiting.pop(rid, None)
                if waiters:
                    freed, any_override = self._release_waiters(
                        rid, record.timestamp, waiters
                    )
                    released.extend(freed)
                    tachyon = tachyon or any_override

        out.append(record)
        out.extend(released)
        if tachyon:
            self._request_sync()
        return out

    def process_many(
        self, records: Sequence[EventRecord], now: int
    ) -> list[EventRecord]:
        """Run a sorted batch through the matcher in one call.

        Record-for-record equivalent to ``process`` in a loop (the output
        is the concatenation, in order, of each record's ready list); the
        win is that non-causal records — the overwhelming majority in any
        real stream — are passed through on a per-schema cache hit without
        touching the hash tables or building marker-id tuples.
        """
        causal_cache = self._schema_causal
        process = self.process
        out: list[EventRecord] = []
        append = out.append
        for record in records:
            field_types = record.field_types
            causal = causal_cache.get(field_types)
            if causal is None:
                causal = (
                    FieldType.X_REASON in field_types
                    or FieldType.X_CONSEQ in field_types
                )
                if len(causal_cache) < 4096:  # adversarial-schema backstop
                    causal_cache[field_types] = causal
            if causal:
                out.extend(process(record, now))
            else:
                append(record)
        return out

    def _release_waiters(
        self,
        reason_id: int,
        reason_ts: int,
        waiters: list[_ParkedConseq],
    ) -> tuple[list[EventRecord], bool]:
        """Release parked consequences whose last missing reason arrived.

        Returns the released records and whether any timestamp override
        (tachyon correction) was applied.
        """
        released: list[EventRecord] = []
        any_override = False
        for parked in waiters:
            parked.waiting_for.discard(reason_id)
            if parked.waiting_for:
                continue  # still missing other reasons
            self._parked_now -= 1
            record = parked.record
            if record.timestamp <= reason_ts:
                record = record.with_timestamp(reason_ts + self.config.epsilon_us)
                self.stats.tachyons_fixed += 1
                any_override = True
            released.append(record)
        return released, any_override

    # ------------------------------------------------------------------
    def expire(self, now: int) -> list[EventRecord]:
        """Apply the timeout: drop stale reasons, release stale parked
        consequences un-corrected.

        Returns the timed-out consequences (they are still delivered — the
        ISM never destroys data, it only gives up on reordering it).
        """
        cutoff = now - self.config.timeout_us
        for rid in [r for r, (_, seen) in self._reasons.items() if seen < cutoff]:
            del self._reasons[rid]
            self.stats.timed_out_reasons += 1

        released: list[EventRecord] = []
        emptied: list[int] = []
        seen_ids: set[int] = set()
        for rid, waiters in self._waiting.items():
            keep: list[_ParkedConseq] = []
            for parked in waiters:
                if parked.parked_at < cutoff:
                    # Release once even when parked under several ids.
                    key = id(parked)
                    if key not in seen_ids:
                        seen_ids.add(key)
                        released.append(parked.record)
                        self.stats.timed_out_consequences += 1
                        self._parked_now -= 1
                else:
                    keep.append(parked)
            if keep:
                self._waiting[rid] = keep
            else:
                emptied.append(rid)
        for rid in emptied:
            del self._waiting[rid]
        return released

    def _request_sync(self) -> None:
        self.stats.sync_requests += 1
        if self.on_tachyon is not None:
            self.on_tachyon()
