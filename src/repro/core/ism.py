"""The instrumentation system manager (ISM) — the central component (§3.5).

The ISM receives data batches from external sensors, keeps them in per-EXS
queues ("the in-order arrival of these batches is guaranteed by the socket
stream protocol"), merges the queues through the on-line sorter, runs the
causally-related-event matcher over the sorted stream, and delivers each
record to every configured consumer.

Like the EXS, the manager core is transport-agnostic: real deployments feed
it decoded :class:`~repro.wire.protocol.Message` objects from sockets
(:mod:`repro.runtime.ism_proc`), the simulator feeds it from simulated
links, and tests feed it directly.  ``now`` — ISM time in microseconds — is
always passed in, never read from a wall clock, so every pipeline stage is
deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.consumers import Consumer
from repro.core.cre import CausalMatcher, CreConfig
from repro.core.records import EventRecord
from repro.core.sorting import OnlineSorter, SorterConfig
from repro.wire import protocol


@dataclass(frozen=True, slots=True)
class IsmConfig:
    """Manager configuration: sorter and CRE knobs plus housekeeping.

    ``expire_interval_us`` throttles how often the CRE timeout scan runs;
    the scan is linear in parked events, so running it on every tick would
    tax the very resource (ISM CPU) the paper identifies as the bottleneck.
    """

    sorter: SorterConfig = SorterConfig()
    cre: CreConfig = CreConfig()
    expire_interval_us: int = 100_000
    #: Consecutive delivery failures before a consumer is detached.
    max_consumer_errors: int = 3
    #: Records handed to the consumer fan-out per delivery call — the
    #: staged pipeline's delivery batch size.  A tick that released more
    #: than this many records delivers them in slices so one huge merge
    #: cannot hand a consumer an unbounded list (memory) or starve a
    #: bounded-queue writer thread of steady work.
    delivery_batch: int = 1024

    def __post_init__(self) -> None:
        if self.expire_interval_us < 0:
            raise ValueError("expire_interval_us must be non-negative")
        if self.max_consumer_errors < 1:
            raise ValueError("max_consumer_errors must be >= 1")
        if self.delivery_batch < 1:
            raise ValueError("delivery_batch must be >= 1")


@dataclass
class IsmStats:
    """Manager-level counters (queue/merge counters live in the sorter)."""

    batches_received: int = 0
    records_received: int = 0
    records_delivered: int = 0
    #: Batch sequence gaps per EXS — should stay zero over healthy TCP.
    seq_gaps: int = 0
    #: Retransmitted batches dropped by the admission dedup (at-least-once
    #: wire converging to exactly-once delivery).
    duplicate_batches: int = 0
    #: Records inside those duplicate batches.
    records_deduped: int = 0
    #: Records from sources that never sent a Hello.
    unknown_source_records: int = 0
    #: Exceptions raised by consumers during delivery (isolated).
    consumer_errors: int = 0
    #: Consumers detached after repeated failures.
    consumers_detached: int = 0
    last_seq: dict[int, int] = field(default_factory=dict)


class InstrumentationManager:
    """Queues → on-line sort → causal ordering → consumers."""

    def __init__(
        self,
        config: IsmConfig = IsmConfig(),
        consumers: list[Consumer] | None = None,
        sync_master=None,
        metrics=None,
    ) -> None:
        self.config = config
        self.consumers: list[Consumer] = list(consumers or [])
        self.sorter = OnlineSorter(config.sorter)
        self.cre = CausalMatcher(config.cre, on_tachyon=self._on_tachyon)
        self.stats = IsmStats()
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` wired over
        #: the manager, its sorter, CRE tables, and consumer list.  When
        #: None the pipeline pays nothing (one ``is not None`` per tick).
        self.metrics = metrics
        self._tick_timer = None
        if metrics is not None:
            from repro.obs import collect

            collect.wire_manager(metrics, self)
            self._tick_timer = metrics.timer("ism.tick_us")
        #: Optional :class:`repro.clocksync.BriskSyncMaster`; when present,
        #: tachyons trigger its extra-round request (§3.6).
        self.sync_master = sync_master
        self._known_sources: dict[int, int] = {}  # exs_id → node_id
        # exs_id → highest admitted batch seq.  Retransmits at or below
        # this watermark are dropped before the sorter; the value is what
        # Ack/HelloReply carry back to the EXS, and what resume_state()
        # exports so a restarted ISM can keep validating the stream.
        self._admitted: dict[int, int] = {}
        self._last_expire_now: int | None = None
        self._consumer_strikes: dict[int, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def register_source(self, exs_id: int, node_id: int) -> None:
        """Handle an EXS Hello: create its queue."""
        self._known_sources[exs_id] = node_id
        self.sorter.add_source(exs_id)

    @property
    def sources(self) -> dict[int, int]:
        """Registered sources, ``exs_id → node_id``."""
        return dict(self._known_sources)

    # ------------------------------------------------------------------
    # delivery-guarantee state
    # ------------------------------------------------------------------
    def admitted_seq(self, exs_id: int) -> int | None:
        """Highest admitted batch seq for *exs_id* (None = no state)."""
        return self._admitted.get(exs_id)

    def resume_state(self) -> dict[int, int]:
        """Snapshot of per-EXS admission watermarks.

        Feed it to :meth:`load_resume_state` on a replacement manager so a
        restarted ISM keeps deduplicating retransmits instead of treating
        the resumed stream as brand new.
        """
        return dict(self._admitted)

    def load_resume_state(self, state: dict[int, int]) -> None:
        """Adopt admission watermarks saved by a previous incarnation.

        Watermarks only ever move forward: an entry lower than what this
        manager has already admitted is ignored.
        """
        for exs_id, seq in state.items():
            current = self._admitted.get(exs_id)
            if current is None or seq > current:
                self._admitted[int(exs_id)] = int(seq)

    def on_message(self, msg: protocol.Message, now: int) -> None:
        """Dispatch one decoded protocol message at ISM time *now*."""
        if isinstance(msg, protocol.Batch):
            self.on_batch(msg, now)
        elif isinstance(msg, protocol.Hello):
            self.register_source(msg.exs_id, msg.node_id)
        elif isinstance(msg, protocol.Bye):
            pass  # the transport layer tears the connection down
        elif isinstance(msg, protocol.Heartbeat):
            pass  # liveness only; the transport layer tracks activity
        else:
            raise TypeError(
                f"ISM cannot handle {type(msg).__name__}; clock-sync "
                f"messages belong to the sync master loop"
            )

    def on_batch(self, batch: protocol.Batch, now: int) -> None:
        """Queue a batch's records for sorting.

        Batches at or below the admission watermark are retransmits of
        already-admitted data (the acked transfer protocol resends
        unacked batches after a reconnect); they are counted and dropped,
        which is what turns the at-least-once wire into exactly-once
        delivery.  Batch framing is atomic on the wire — the deframer
        never yields a partial batch — so whole-batch dedup suffices.
        A relay-coalesced frame covers ``first_seq..seq`` but is still
        one atomic unit: the relay's outbox retransmits the identical
        frame, so the same watermark test applies to its last seq.
        """
        self.stats.batches_received += 1
        admitted = self._admitted.get(batch.exs_id)
        if admitted is not None and batch.seq <= admitted:
            self.stats.duplicate_batches += 1
            self.stats.records_deduped += len(batch.records)
            return
        self.stats.records_received += len(batch.records)
        if batch.exs_id not in self._known_sources:
            # Tolerated (a Hello may have raced the first batch in tests),
            # but counted: a real deployment treats it as a config smell.
            self.stats.unknown_source_records += len(batch.records)
            self.register_source(batch.exs_id, 0)
        last = self.stats.last_seq.get(batch.exs_id)
        first = batch.seq if batch.first_seq is None else batch.first_seq
        if last is not None and first != last + 1:
            self.stats.seq_gaps += 1
        self.stats.last_seq[batch.exs_id] = batch.seq
        self._admitted[batch.exs_id] = batch.seq
        # The wire format does not carry node identity per record — the
        # stream implies it; stamp it back on from the Hello registration.
        # Stamping runs vectorized over the decoded list: records already
        # carrying the node pass through, the rest are rebuilt through the
        # trusted ``from_wire`` constructor (their fields were validated
        # structurally by the codec) instead of re-validating every field
        # per record via ``with_node``.
        node_id = self._known_sources[batch.exs_id]
        from_wire = EventRecord.from_wire
        records: Sequence[EventRecord] = [
            r
            if r.node_id == node_id
            else from_wire(r.event_id, r.timestamp, r.field_types, r.values, node_id)
            for r in batch.records
        ]
        self.sorter.push_many(batch.exs_id, records, now)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def tick(self, now: int) -> int:
        """Advance the pipeline: release due records and deliver them.

        Returns the number of records delivered to consumers this tick.
        The whole tick is staged batch-wise: one bulk sorter extraction,
        one CRE pass over the released list, one bulk delivery fan-out.
        """
        timer = self._tick_timer
        t0 = timer.start() if timer is not None else 0
        ready = self.cre.process_many(self.sorter.extract_ready_batch(now), now)
        if self._expire_due(now):
            expired = self.cre.expire(now)
            if expired:
                ready.extend(expired)
        if ready:
            self._deliver_many(ready)
        # Idle ticks run at pump frequency; observing each would dominate
        # the tick itself, so only work is timed.
        if timer is not None and ready:
            timer.stop(t0)
        return len(ready)

    def flush(self, now: int) -> int:
        """Drain everything (shutdown): sorter, then parked CRE events."""
        ready = self.cre.process_many(self.sorter.flush(now), now)
        # Force the timeout on whatever is still parked.
        ready.extend(self.cre.expire(now + self.config.cre.timeout_us + 1))
        if ready:
            self._deliver_many(ready)
        return len(ready)

    def inject(self, record: EventRecord) -> None:
        """Deliver one manager-synthesized record to every consumer now.

        The monitor engine's alert records enter here: they carry the
        manager's own clock and must reach consumers (and the durable
        log) immediately rather than queue behind the sorter's time
        frame.  Failure isolation and the delivered-records accounting
        are identical to the normal path.
        """
        self._deliver(record)

    def close(self) -> None:
        """Close every consumer (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for consumer in self.consumers:
            consumer.close()

    # ------------------------------------------------------------------
    def _deliver(self, record: EventRecord) -> None:
        """Deliver to every consumer, isolating their failures.

        A consumer that raises must not take the pipeline (or its sibling
        consumers) down; after ``max_consumer_errors`` consecutive
        failures it is detached — the same posture
        :class:`~repro.core.consumers.VisualObjectConsumer` applies to its
        remote objects, applied one level up.
        """
        self.stats.records_delivered += 1
        dead: list[Consumer] = []
        for consumer in self.consumers:
            try:
                consumer.deliver(record)
                self._consumer_strikes.pop(id(consumer), None)
            except Exception:
                self.stats.consumer_errors += 1
                strikes = self._consumer_strikes.get(id(consumer), 0) + 1
                self._consumer_strikes[id(consumer)] = strikes
                if strikes >= self.config.max_consumer_errors:
                    dead.append(consumer)
        for consumer in dead:
            self.consumers.remove(consumer)
            self._consumer_strikes.pop(id(consumer), None)
            self.stats.consumers_detached += 1

    def _deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Fan a released batch out to the consumers in delivery slices.

        Record-for-record equivalent to calling :meth:`_deliver` per
        record: every consumer sees the same records in the same order,
        and the consecutive-failure strike accounting is preserved — a
        consumer without :meth:`~repro.core.consumers.Consumer.
        deliver_many` still gets per-record ``deliver`` calls with
        per-record strikes, so an intermittent failure pattern detaches
        (or survives) exactly as it did on the per-record path.
        """
        batch = self.config.delivery_batch
        if len(records) <= batch:
            self._deliver_chunk(records)
            return
        for start in range(0, len(records), batch):
            self._deliver_chunk(records[start : start + batch])

    def _deliver_chunk(self, chunk: Sequence[EventRecord]) -> None:
        self.stats.records_delivered += len(chunk)
        strikes_map = self._consumer_strikes
        max_errors = self.config.max_consumer_errors
        dead: list[Consumer] = []
        for consumer in self.consumers:
            cid = id(consumer)
            deliver_many = getattr(consumer, "deliver_many", None)
            if deliver_many is not None:
                try:
                    deliver_many(chunk)
                    strikes_map.pop(cid, None)
                except Exception:
                    # One strike per failed chunk: a bulk consumer opts in
                    # to coarser failure granularity for the batching win.
                    self.stats.consumer_errors += 1
                    strikes = strikes_map.get(cid, 0) + 1
                    strikes_map[cid] = strikes
                    if strikes >= max_errors:
                        dead.append(consumer)
                continue
            deliver = consumer.deliver
            strikes = strikes_map.get(cid, 0)
            for record in chunk:
                try:
                    deliver(record)
                    strikes = 0
                except Exception:
                    self.stats.consumer_errors += 1
                    strikes += 1
                    if strikes >= max_errors:
                        dead.append(consumer)
                        break
            if strikes:
                strikes_map[cid] = strikes
            else:
                strikes_map.pop(cid, None)
        for consumer in dead:
            self.consumers.remove(consumer)
            strikes_map.pop(id(consumer), None)
            self.stats.consumers_detached += 1

    def _expire_due(self, now: int) -> bool:
        last = self._last_expire_now
        if last is None or now - last >= self.config.expire_interval_us:
            self._last_expire_now = now
            return True
        return False

    def _on_tachyon(self) -> None:
        if self.sync_master is not None:
            self.sync_master.request_extra_round()
