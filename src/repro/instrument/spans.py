"""Span instrumentation: paired begin/end events around code regions.

The lightest automation level — the user names a region once (decorator
or ``with`` block) and BRISK emits matched begin/end records carrying a
span identifier, so downstream tools (e.g.
:func:`repro.analysis.statistics.utilization_timeline`) can reconstruct
busy intervals.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Callable

from repro.core.records import FieldType
from repro.core.sensor import Sensor

#: Process-wide span-instance counter; distinct across sensors so that
#: begin/end pairs from nested or concurrent spans never collide.
_span_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class SpanEvents:
    """Event ids used by span instrumentation.

    ``begin``/``end`` mirror PICL's block-begin/block-end convention.
    """

    begin: int = 0xB0
    end: int = 0xB1


def span(sensor: Sensor, label: str, events: SpanEvents = SpanEvents()):
    """Context manager emitting begin/end records around its body.

    The begin record carries ``(span_id, label)``; the end record carries
    ``(span_id, label)`` too, so either endpoint suffices to identify the
    region.  Events are emitted even when the body raises — an aborted
    region still ends.
    """
    return _Span(sensor, label, events)


class _Span:
    __slots__ = ("sensor", "label", "events", "span_id")

    def __init__(self, sensor: Sensor, label: str, events: SpanEvents):
        self.sensor = sensor
        self.label = label
        self.events = events
        self.span_id = 0

    def __enter__(self) -> "_Span":
        self.span_id = next(_span_counter)
        self.sensor.notice(
            self.events.begin,
            (FieldType.X_UINT, self.span_id),
            (FieldType.X_STRING, self.label),
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.sensor.notice(
            self.events.end,
            (FieldType.X_UINT, self.span_id),
            (FieldType.X_STRING, self.label),
        )


def instrumented(
    sensor: Sensor,
    label: str | None = None,
    events: SpanEvents = SpanEvents(),
) -> Callable:
    """Decorator wrapping a function in a :func:`span`.

    ``label`` defaults to the function's qualified name::

        @instrumented(sensor)
        def solve_block(block):
            ...
    """

    def decorate(fn: Callable) -> Callable:
        span_label = label if label is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(sensor, span_label, events):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
