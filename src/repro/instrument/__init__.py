"""Transparent monitoring: automatic instrumentation of applications.

§2: "Adding significant amounts of instrumentation code ... by users is
subject to errors.  It is important that tools can be built based on the
IS to instrument the target system automatically, so that the users can
only specify what to monitor, from which aspect, and at which level."

Three levels of automation, from explicit to fully transparent:

* :func:`instrumented` / :class:`span` — decorator and context manager
  emitting paired begin/end events around code regions;
* :class:`FunctionTracer` — a ``sys.setprofile``-based tracer that emits
  call/return events for functions matching module filters, with zero
  edits to the target code;
* :class:`CausalChannel` — a message-passing wrapper that automatically
  marks sends as reasons and receives as consequences, so cross-node
  causality flows into the ISM without the application managing ids.
"""

from repro.instrument.spans import instrumented, span, SpanEvents
from repro.instrument.tracer import FunctionTracer, TracerEvents
from repro.instrument.messaging import CausalChannel, CausalToken

__all__ = [
    "instrumented",
    "span",
    "SpanEvents",
    "FunctionTracer",
    "TracerEvents",
    "CausalChannel",
    "CausalToken",
]
