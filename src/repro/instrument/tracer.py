"""Fully transparent function tracing via ``sys.setprofile``.

The user specifies *what* to monitor (module prefixes, a depth limit) —
never touches the target code.  While the tracer is active, every call
and return of a matching Python function emits an event record whose
fields carry an interned function id; the function-name table travels as
its own records so a trace is self-describing.

Intrusion note: profile callbacks fire for *every* Python call, so the
filter runs on the hot path.  The match result is cached per code object,
which keeps the non-matching case to one dict lookup — the same "specify
the level, pay only for it" posture as §2 demands.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Sequence

from repro.core.records import FieldType
from repro.core.sensor import Sensor


@dataclass(frozen=True, slots=True)
class TracerEvents:
    """Event ids used by the function tracer."""

    call: int = 0xC0
    ret: int = 0xC1
    #: Emits the (function_id → name) mapping records.
    define: int = 0xCF


class FunctionTracer:
    """Emit call/return events for functions in selected modules.

    Parameters
    ----------
    sensor:
        Destination internal sensor.
    include:
        Module-name prefixes to trace (e.g. ``("myapp.solver",)``).  An
        empty sequence traces nothing — opt-in only.
    max_depth:
        Calls nested deeper than this (counting only *matching* frames)
        are not emitted; bounds both intrusion and data volume.
    """

    def __init__(
        self,
        sensor: Sensor,
        include: Sequence[str],
        events: TracerEvents = TracerEvents(),
        max_depth: int = 32,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.sensor = sensor
        self.include = tuple(include)
        self.events = events
        self.max_depth = max_depth
        self._function_ids: dict[int, int] = {}  # id(code) → function id
        self._match_cache: dict[int, bool] = {}  # id(code) → traced?
        self._names: dict[int, str] = {}
        self._depth = 0
        self._active = False
        self._announced = False
        #: Matching call events emitted.
        self.calls_traced = 0
        #: Matching calls skipped by the depth bound.
        self.calls_skipped = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "FunctionTracer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Install the profile hook (no-op if already active).

        The first start also announces catalog definitions for the
        tracer's event ids, so a consumer of the trace sees
        ``tracer.call`` instead of a bare number.
        """
        if self._active:
            return
        if not self._announced:
            from repro.core.catalog import EventCatalog

            catalog = EventCatalog()
            catalog.define(self.events.call, "tracer.call")
            catalog.define(self.events.ret, "tracer.return")
            catalog.define(self.events.define, "tracer.define")
            catalog.announce(self.sensor)
            self._announced = True
        self._active = True
        self._depth = 0
        sys.setprofile(self._hook)

    def stop(self) -> None:
        """Remove the profile hook (no-op if not active)."""
        if not self._active:
            return
        self._active = False
        sys.setprofile(None)

    @property
    def function_names(self) -> dict[int, str]:
        """Interned ``function_id → qualified name`` table."""
        return dict(self._names)

    # ------------------------------------------------------------------
    def _matches(self, frame) -> bool:
        code = frame.f_code
        cached = self._match_cache.get(id(code))
        if cached is not None:
            return cached
        module = frame.f_globals.get("__name__", "")
        matched = any(module.startswith(prefix) for prefix in self.include)
        self._match_cache[id(code)] = matched
        return matched

    def _function_id(self, frame) -> int:
        code = frame.f_code
        fid = self._function_ids.get(id(code))
        if fid is None:
            fid = len(self._function_ids) + 1
            self._function_ids[id(code)] = fid
            name = f"{frame.f_globals.get('__name__', '?')}.{code.co_qualname}"
            self._names[fid] = name
            # Self-describing trace: ship the mapping as a record.
            self.sensor.notice(
                self.events.define,
                (FieldType.X_UINT, fid),
                (FieldType.X_STRING, name[:200]),
            )
        return fid

    def _hook(self, frame, event: str, arg) -> None:
        if event == "call":
            if not self._matches(frame):
                return
            self._depth += 1
            if self._depth > self.max_depth:
                self.calls_skipped += 1
                return
            self.calls_traced += 1
            self.sensor.notice(
                self.events.call,
                (FieldType.X_UINT, self._function_id(frame)),
                (FieldType.X_USHORT, min(self._depth, 65535)),
            )
        elif event == "return":
            if not self._matches(frame):
                return
            if self._depth <= self.max_depth:
                self.sensor.notice(
                    self.events.ret,
                    (FieldType.X_UINT, self._function_id(frame)),
                    (FieldType.X_USHORT, min(self._depth, 65535)),
                )
            self._depth = max(0, self._depth - 1)
