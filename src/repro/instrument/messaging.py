"""Automatic causal marking for message-passing applications.

§3.6 shows why marking matters: causally-related events both survive bad
clocks (the ISM repairs tachyons) and *improve* the clocks (extra sync
rounds).  Doing the marking by hand — inventing identifiers, keeping them
consistent across nodes — is exactly the error-prone busywork §2 warns
about, so :class:`CausalChannel` does it automatically:

* ``note_send(payload)`` emits an ``X_REASON`` record and returns a
  :class:`CausalToken` to piggyback on the real message;
* ``note_recv(token)`` on the receiving node emits the matching
  ``X_CONSEQ`` record.

The token is a plain integer pair, cheap to serialize into any transport
the application already uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import FieldType
from repro.core.sensor import Sensor

_CID_LIMIT = 2**32


@dataclass(frozen=True, slots=True)
class CausalToken:
    """The causal identifier carried alongside an application message."""

    cid: int
    origin_node: int

    def pack(self) -> bytes:
        """Eight-byte wire form for transports that want raw bytes."""
        return self.cid.to_bytes(4, "big") + self.origin_node.to_bytes(4, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "CausalToken":
        """Inverse of :meth:`pack`."""
        if len(data) != 8:
            raise ValueError(f"causal token must be 8 bytes, got {len(data)}")
        return cls(
            cid=int.from_bytes(data[:4], "big"),
            origin_node=int.from_bytes(data[4:], "big"),
        )


class CausalChannel:
    """Per-node endpoint generating collision-free causal identifiers.

    Identifier layout: the node id occupies the high bits and a local
    counter the low bits, so two nodes can never mint the same ``cid``
    without any coordination.  ``node_bits`` bounds the deployment size;
    the default (10 bits, 1024 nodes) leaves 22 bits ≈ 4M outstanding
    sends per node before wraparound.
    """

    def __init__(
        self,
        sensor: Sensor,
        send_event: int = 0xD0,
        recv_event: int = 0xD1,
        node_bits: int = 10,
    ) -> None:
        if not 1 <= node_bits <= 20:
            raise ValueError("node_bits must be within 1..20")
        self.sensor = sensor
        self.send_event = send_event
        self.recv_event = recv_event
        self._counter_bits = 32 - node_bits
        if sensor.node_id >= (1 << node_bits):
            raise ValueError(
                f"node id {sensor.node_id} needs more than {node_bits} node bits"
            )
        self._prefix = sensor.node_id << self._counter_bits
        self._counter = 0
        #: Sends/receives marked through this channel.
        self.sends = 0
        self.receives = 0

    # ------------------------------------------------------------------
    def note_send(self, tag: int = 0) -> CausalToken:
        """Record an outgoing message; returns the token to attach to it.

        ``tag`` is an application-chosen extra field (message kind, size,
        ...) carried in the reason record.
        """
        self._counter = (self._counter + 1) % (1 << self._counter_bits)
        cid = (self._prefix | self._counter) % _CID_LIMIT
        self.sensor.notice(
            self.send_event,
            (FieldType.X_REASON, cid),
            (FieldType.X_UINT, tag % _CID_LIMIT),
        )
        self.sends += 1
        return CausalToken(cid=cid, origin_node=self.sensor.node_id)

    def note_recv(self, token: CausalToken, tag: int = 0) -> None:
        """Record the receipt of the message carrying *token*."""
        self.sensor.notice(
            self.recv_event,
            (FieldType.X_CONSEQ, token.cid),
            (FieldType.X_UINT, tag % _CID_LIMIT),
        )
        self.receives += 1
