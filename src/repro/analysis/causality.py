"""Causal-structure analysis of BRISK traces.

``X_REASON``/``X_CONSEQ`` markers define edges of a causality DAG over
event records.  This module reconstructs that graph (networkx) from a
trace and answers the questions monitoring tools ask of it:

* which records form a causal *chain* (request → hop → hop → reply),
* whether any delivered trace still violates causal order (a tachyon the
  ISM failed to repair — e.g. because the record pair never met in the
  matcher's window),
* per-edge latency: the timestamp gap between a reason and each of its
  consequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.analysis.trace import Trace
from repro.core.records import EventRecord
from repro.util.stats import RunningStats


@dataclass
class CausalGraph:
    """A causality DAG plus bookkeeping about how it was built.

    Nodes are trace indices (positions in the sorted trace); the record
    itself hangs off the ``record`` node attribute.  Edges run
    reason → consequence and carry the marker ``cid`` and the timestamp
    ``lag_us``.
    """

    graph: nx.DiGraph
    #: marker ids whose reason never appeared in the trace.
    unmatched_conseq_ids: set[int] = field(default_factory=set)
    #: marker ids whose consequences never appeared.
    unmatched_reason_ids: set[int] = field(default_factory=set)

    @property
    def n_edges(self) -> int:
        """Causal edges reconstructed."""
        return self.graph.number_of_edges()

    def record(self, node) -> EventRecord:
        """The event record at a graph node."""
        return self.graph.nodes[node]["record"]

    def edge_lag_stats(self) -> RunningStats:
        """Distribution of reason→consequence timestamp lags (µs)."""
        stats = RunningStats()
        for _, _, data in self.graph.edges(data=True):
            stats.add(data["lag_us"])
        return stats


def build_causal_graph(trace: Trace) -> CausalGraph:
    """Reconstruct the reason→consequence DAG from a trace.

    A marker id published by several reasons attaches consequences to the
    *latest* reason at or before the consequence (re-used identifiers are
    treated as sequential generations, matching the matcher's overwrite
    semantics in :class:`repro.core.cre.CausalMatcher`).
    """
    graph = nx.DiGraph()
    latest_reason: dict[int, int] = {}
    result = CausalGraph(graph=graph)
    consumers_of: dict[int, int] = {}

    for idx, record in enumerate(trace):
        if record.is_causal:
            graph.add_node(idx, record=record)
        for cid in record.conseq_ids:
            source = latest_reason.get(cid)
            if source is None:
                result.unmatched_conseq_ids.add(cid)
            else:
                graph.add_edge(
                    source,
                    idx,
                    cid=cid,
                    lag_us=record.timestamp - trace[source].timestamp,
                )
                consumers_of[cid] = consumers_of.get(cid, 0) + 1
        for cid in record.reason_ids:
            latest_reason[cid] = idx

    for cid, idx in latest_reason.items():
        if consumers_of.get(cid, 0) == 0:
            result.unmatched_reason_ids.add(cid)
    return result


def causal_chains(graph: CausalGraph, min_length: int = 2) -> list[list[int]]:
    """Maximal root-to-leaf causal chains, longest first.

    A chain is a path from a record with no causal predecessor to one with
    no causal successor; only chains of at least *min_length* records are
    returned.
    """
    g = graph.graph
    roots = [n for n in g.nodes if g.in_degree(n) == 0 and g.out_degree(n) > 0]
    chains: list[list[int]] = []
    for root in roots:
        # DFS enumerating root→leaf paths; traces are small relative to
        # their causal substructure, so explicit enumeration is fine.
        stack = [[root]]
        while stack:
            path = stack.pop()
            successors = list(g.successors(path[-1]))
            if not successors:
                if len(path) >= min_length:
                    chains.append(path)
                continue
            for nxt in successors:
                stack.append(path + [nxt])
    chains.sort(key=len, reverse=True)
    return chains


def find_causal_violations(trace: Trace) -> list[tuple[int, int, int]]:
    """Tachyons in a trace: ``(cid, reason_idx, conseq_idx)`` triples
    where a consequence's timestamp does not exceed its reason's.

    Unlike :func:`build_causal_graph` (which walks delivered, repaired
    traces in order), this matches markers *regardless of trace position*
    — a consequence sorted before its reason is precisely the pathology
    being hunted.  Each consequence pairs with the nearest reason carrying
    its marker (by timestamp distance), mirroring the matcher's
    one-generation-at-a-time semantics.

    On a healthy ISM output this is empty — the causal matcher overrode
    every such timestamp (§3.6); a non-empty result on raw (pre-ISM) data
    quantifies how badly the clocks disagree.
    """
    reasons_by_cid: dict[int, list[int]] = {}
    conseqs_by_cid: dict[int, list[int]] = {}
    for idx, record in enumerate(trace):
        for cid in record.reason_ids:
            reasons_by_cid.setdefault(cid, []).append(idx)
        for cid in record.conseq_ids:
            conseqs_by_cid.setdefault(cid, []).append(idx)

    violations: list[tuple[int, int, int]] = []
    for cid, conseq_idxs in conseqs_by_cid.items():
        reason_idxs = reasons_by_cid.get(cid)
        if not reason_idxs:
            continue
        for c_idx in conseq_idxs:
            c_ts = trace[c_idx].timestamp
            nearest = min(
                reason_idxs, key=lambda r_idx: abs(trace[r_idx].timestamp - c_ts)
            )
            if c_ts <= trace[nearest].timestamp:
                violations.append((cid, nearest, c_idx))
    return violations
