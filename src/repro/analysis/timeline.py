"""ASCII timeline rendering: the terminal half of performance visualization.

BRISK was built "as a part of a real-time system instrumentation and
performance visualization project"; the CORBA visual objects of §3.5 are
its graphical front end.  For a terminal (tests, CI, quick looks) this
module renders the same views as text:

* :func:`render_gantt` — per-node span bars (from the begin/end events of
  :mod:`repro.instrument.spans` or any paired event ids),
* :func:`render_rate_heatmap` — node × time event-intensity grid,
* :func:`render_event_timeline` — one lane per event id, a mark per
  occurrence.

Rendering is pure (trace in, string out), so every view is testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.trace import Trace

#: Intensity ramp for the heatmap (space = idle).
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True, slots=True)
class GanttSpan:
    """One reconstructed busy interval."""

    node_id: int
    label: str
    start_us: int
    end_us: int

    @property
    def duration_us(self) -> int:
        """Span length in microseconds."""
        return self.end_us - self.start_us


def extract_spans(
    trace: Trace, begin_event: int, end_event: int
) -> list[GanttSpan]:
    """Pair begin/end records into spans.

    Records are matched by their first value (the span id written by
    :mod:`repro.instrument.spans`); the second value, when present and a
    string, becomes the label.  Unmatched begins close at the trace end.
    """
    if not trace:
        return []
    open_spans: dict[object, tuple[int, str, int]] = {}
    spans: list[GanttSpan] = []
    for record in trace:
        if record.event_id == begin_event and record.values:
            key = (record.node_id, record.values[0])
            label = (
                record.values[1]
                if len(record.values) > 1 and isinstance(record.values[1], str)
                else str(record.values[0])
            )
            open_spans[key] = (record.node_id, label, record.timestamp)
        elif record.event_id == end_event and record.values:
            key = (record.node_id, record.values[0])
            opened = open_spans.pop(key, None)
            if opened is not None:
                node_id, label, start = opened
                spans.append(GanttSpan(node_id, label, start, record.timestamp))
    trace_end = trace.end_us
    for node_id, label, start in open_spans.values():
        spans.append(GanttSpan(node_id, label, start, trace_end))
    spans.sort(key=lambda s: (s.node_id, s.start_us))
    return spans


def render_gantt(
    spans: list[GanttSpan], width: int = 72, label_width: int = 18
) -> str:
    """Render spans as per-row ASCII bars over a common time axis."""
    if not spans:
        return "(no spans)"
    t0 = min(s.start_us for s in spans)
    t1 = max(s.end_us for s in spans)
    extent = max(1, t1 - t0)
    lines = []
    for span in spans:
        lo = round((span.start_us - t0) / extent * (width - 1))
        hi = max(lo, round((span.end_us - t0) / extent * (width - 1)))
        bar = " " * lo + "█" * max(1, hi - lo + 1)
        label = f"n{span.node_id} {span.label}"[:label_width]
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| "
            f"{span.duration_us / 1000:8.2f} ms"
        )
    axis = f"{'':<{label_width}} |{'0':<{width - 10}}{extent / 1000:8.1f}ms|"
    return "\n".join(lines + [axis])


def span_statistics(spans: list[GanttSpan]) -> dict[str, "RunningStats"]:
    """Per-label duration statistics over reconstructed spans.

    The question span instrumentation exists to answer: how long does
    each region take, and how much does it vary?  Returns
    ``label → RunningStats`` (durations in µs).
    """
    from repro.util.stats import RunningStats

    out: dict[str, RunningStats] = {}
    for span in spans:
        out.setdefault(span.label, RunningStats()).add(span.duration_us)
    return out


def render_rate_heatmap(
    trace: Trace, bins: int = 60
) -> str:
    """Node × time heatmap of event intensity.

    All rows share one time axis (the whole trace's extent), so a node
    that goes quiet shows blank cells rather than a shortened row.
    """
    if not trace:
        return "(empty trace)"
    t0 = trace.start_us
    bin_width = max(1, trace.duration_us // bins + 1)
    counts: dict[int, list[int]] = {
        node_id: [0] * bins for node_id in trace.node_ids
    }
    for record in trace:
        b = min(bins - 1, (record.timestamp - t0) // bin_width)
        counts[record.node_id][b] += 1
    peak = max((max(row) for row in counts.values()), default=0) or 1
    lines = []
    for node_id, row in counts.items():
        cells = "".join(
            _RAMP[min(len(_RAMP) - 1, c * (len(_RAMP) - 1) // peak)]
            for c in row
        )
        lines.append(f"node {node_id:>3} [{cells}]")
    peak_hz = peak * 1_000_000 / bin_width
    lines.append(
        f"         0 .. {trace.duration_us / 1e6:.2f}s   "
        f"(peak {peak_hz:,.0f} ev/s)"
    )
    return "\n".join(lines)


def render_event_timeline(
    trace: Trace, width: int = 72, max_lanes: int = 12
) -> str:
    """One lane per event id; a mark for every occurrence."""
    if not trace:
        return "(empty trace)"
    t0 = trace.start_us
    extent = max(1, trace.duration_us)
    lines = []
    for event_id in trace.event_ids[:max_lanes]:
        lane = [" "] * width
        for record in trace.events(event_id):
            pos = min(
                width - 1, round((record.timestamp - t0) / extent * (width - 1))
            )
            lane[pos] = "|" if lane[pos] == " " else "#"
        lines.append(f"event {event_id:>6} [{''.join(lane)}]")
    skipped = len(trace.event_ids) - max_lanes
    if skipped > 0:
        lines.append(f"(+{skipped} more event types)")
    return "\n".join(lines)
