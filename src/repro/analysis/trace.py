"""The :class:`Trace` container — a queryable, immutable event trace.

A trace can be built from any of the ISM's output artifacts:

* a list of :class:`~repro.core.records.EventRecord` (e.g. a
  :class:`~repro.core.consumers.CollectingConsumer`),
* an ISM memory buffer in the native layout
  (:meth:`Trace.from_memory_buffer`),
* a UTC-mode PICL trace file (:meth:`Trace.from_picl`),
* a durable commit log or log directory (:meth:`Trace.from_log`).

Queries return new :class:`Trace` objects so analyses compose:
``trace.node(3).events(1, 2).between(t0, t1)``.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable, Iterator, TextIO

from repro.core import native
from repro.core.records import EventRecord
from repro.picl.format import PiclReader, picl_to_record


class Trace:
    """An ordered, immutable sequence of event records.

    Records are sorted by :meth:`EventRecord.sort_key` at construction
    unless ``presorted=True``, so positional queries (:meth:`between`)
    can binary-search.
    """

    __slots__ = ("_records", "_timestamps")

    def __init__(
        self, records: Iterable[EventRecord], *, presorted: bool = False
    ) -> None:
        items = list(records)
        if not presorted:
            items.sort(key=EventRecord.sort_key)
        self._records: tuple[EventRecord, ...] = tuple(items)
        self._timestamps = [r.timestamp for r in self._records]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_memory_buffer(cls, buffer) -> "Trace":
        """Decode a native-layout ISM memory buffer."""
        return cls(native.unpack_all(buffer))

    @classmethod
    def from_picl(cls, stream: TextIO) -> "Trace":
        """Parse a UTC-mode PICL trace file."""
        return cls(picl_to_record(p) for p in PiclReader(stream))

    def to_picl(self, stream: TextIO) -> int:
        """Write the trace as UTC-mode PICL lines; returns lines written."""
        from repro.picl.format import PiclWriter

        writer = PiclWriter(stream)
        writer.write_all(self._records)
        return writer.lines_written

    @classmethod
    def from_native_file(cls, path) -> "Trace":
        """Load a trace saved by :meth:`save_native`."""
        with open(path, "rb") as stream:
            return cls.from_memory_buffer(stream.read())

    @classmethod
    def from_log(cls, log, start: int = 0) -> "Trace":
        """Load from a commit log (:class:`repro.log.CommitLog`) or a log
        directory path, starting at offset *start*.

        The log preserves ISM delivery order, which is sort order, so the
        trace is built presorted — loading a large log skips the re-sort.
        """
        import os

        if isinstance(log, (str, os.PathLike)):
            from repro.log import iter_log

            return cls(iter_log(log, start), presorted=True)
        return cls(log.iter_from(start), presorted=True)

    def save_native(self, path) -> int:
        """Save in the compact native binary layout; returns bytes written.

        Much faster to load than PICL (binary decode, no text parsing) and
        smaller whenever records carry binary or wide payloads; the file
        is simply back-to-back :mod:`repro.core.native` records — the same
        bytes an ISM memory buffer holds.
        """
        payload = b"".join(native.pack_record(r) for r in self._records)
        with open(path, "wb") as stream:
            stream.write(payload)
        return len(payload)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._records[index], presorted=True)
        return self._records[index]

    def __bool__(self) -> bool:
        return bool(self._records)

    def __eq__(self, other) -> bool:
        return isinstance(other, Trace) and self._records == other._records

    def __hash__(self):  # pragma: no cover - explicitness
        return hash(self._records)

    @property
    def records(self) -> tuple[EventRecord, ...]:
        """The underlying record tuple."""
        return self._records

    # ------------------------------------------------------------------
    # extents
    # ------------------------------------------------------------------
    @property
    def start_us(self) -> int:
        """Timestamp of the first record."""
        self._require_nonempty()
        return self._timestamps[0]

    @property
    def end_us(self) -> int:
        """Timestamp of the last record."""
        self._require_nonempty()
        return self._timestamps[-1]

    @property
    def duration_us(self) -> int:
        """Trace extent in microseconds (0 for single-record traces)."""
        return self.end_us - self.start_us if self._records else 0

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Sorted distinct node identifiers appearing in the trace."""
        return tuple(sorted({r.node_id for r in self._records}))

    @property
    def event_ids(self) -> tuple[int, ...]:
        """Sorted distinct event identifiers appearing in the trace."""
        return tuple(sorted({r.event_id for r in self._records}))

    def _require_nonempty(self) -> None:
        if not self._records:
            raise ValueError("empty trace has no time extent")

    # ------------------------------------------------------------------
    # filters (each returns a new Trace)
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[EventRecord], bool]) -> "Trace":
        """Records satisfying *predicate*."""
        return Trace(
            (r for r in self._records if predicate(r)), presorted=True
        )

    def node(self, *node_ids: int) -> "Trace":
        """Records produced by any of *node_ids*."""
        wanted = set(node_ids)
        return self.filter(lambda r: r.node_id in wanted)

    def events(self, *event_ids: int) -> "Trace":
        """Records with any of *event_ids*."""
        wanted = set(event_ids)
        return self.filter(lambda r: r.event_id in wanted)

    def between(self, start_us: int, end_us: int) -> "Trace":
        """Records with ``start_us <= timestamp < end_us`` (binary search)."""
        lo = bisect.bisect_left(self._timestamps, start_us)
        hi = bisect.bisect_left(self._timestamps, end_us)
        return Trace(self._records[lo:hi], presorted=True)

    def causal(self) -> "Trace":
        """Only causally-marked records."""
        return self.filter(lambda r: r.is_causal)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def split_by_gap(self, gap_threshold_us: int) -> list["Trace"]:
        """Split into phases at inter-event gaps above the threshold.

        Bursty applications alternate activity and silence; a gap larger
        than *gap_threshold_us* starts a new phase.  Returns the phases in
        time order (a single-phase list when no gap qualifies).
        """
        if gap_threshold_us <= 0:
            raise ValueError("gap threshold must be positive")
        if not self._records:
            return []
        phases: list[Trace] = []
        start = 0
        for i in range(1, len(self._records)):
            if self._timestamps[i] - self._timestamps[i - 1] > gap_threshold_us:
                phases.append(Trace(self._records[start:i], presorted=True))
                start = i
        phases.append(Trace(self._records[start:], presorted=True))
        return phases

    def iter_windows(self, width_us: int) -> Iterator[tuple[int, "Trace"]]:
        """Yield ``(window_start_us, sub_trace)`` for fixed time windows.

        Windows tile the trace extent; empty windows are yielded too (an
        empty window is information — the application went quiet).
        """
        if width_us <= 0:
            raise ValueError("window width must be positive")
        if not self._records:
            return
        t = self.start_us
        end = self.end_us
        while t <= end:
            yield t, self.between(t, t + width_us)
            t += width_us

    def count_inversions(self) -> int:
        """Adjacent timestamp inversions — 0 for a sorted trace.

        Useful on *delivery-order* traces (``presorted=True`` input) to
        measure how well the ISM's on-line sort did.
        """
        return sum(
            1
            for a, b in zip(self._timestamps, self._timestamps[1:])
            if b < a
        )

    def summary(self) -> dict:
        """A human-oriented digest of the trace."""
        if not self._records:
            return {"records": 0}
        return {
            "records": len(self._records),
            "nodes": len(self.node_ids),
            "event_types": len(self.event_ids),
            "duration_s": self.duration_us / 1_000_000,
            "causal_records": sum(1 for r in self._records if r.is_causal),
        }
