"""Anomaly detection over event-rate series.

The on-line visualization project BRISK serves wants more than pictures:
it wants the *interesting* windows flagged.  This module provides the
first-order detectors a monitoring dashboard runs on rate series:

* :func:`rate_anomalies` — robust z-score spikes/droughts in a node's (or
  event type's) binned rate;
* :func:`silence_gaps` — intervals where an expected-active source went
  quiet (the classic symptom of a hung or crashed node);
* :func:`correlate_series` — Pearson correlation between two rate series
  (does node A's burst coincide with node B's?).

All detectors are pure functions of a trace; numpy does the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.statistics import rate_series
from repro.analysis.trace import Trace


@dataclass(frozen=True, slots=True)
class RateAnomaly:
    """One flagged window."""

    start_us: int
    rate_hz: float
    zscore: float
    kind: str  # "spike" | "drought"


def _robust_z(values: np.ndarray) -> np.ndarray:
    """Median/MAD z-scores — outliers must not inflate their own baseline."""
    median = np.median(values)
    mad = np.median(np.abs(values - median))
    if mad == 0:
        # Degenerate (constant) series: fall back to the standard score.
        std = values.std()
        if std == 0:
            return np.zeros_like(values)
        return (values - values.mean()) / std
    return (values - median) / (1.4826 * mad)


def rate_anomalies(
    trace: Trace,
    bin_width_us: int = 1_000_000,
    threshold: float = 3.5,
) -> list[RateAnomaly]:
    """Windows whose event rate deviates beyond *threshold* robust z-scores.

    Uses the median/MAD score, so a handful of pathological windows cannot
    mask themselves by dragging the mean along.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    series = rate_series(trace, bin_width_us)
    if len(series.rates_hz) < 4:
        return []  # not enough baseline to call anything anomalous
    scores = _robust_z(series.rates_hz)
    out: list[RateAnomaly] = []
    for start, rate, z in zip(series.bin_starts_us, series.rates_hz, scores):
        if z >= threshold:
            out.append(RateAnomaly(int(start), float(rate), float(z), "spike"))
        elif z <= -threshold:
            out.append(RateAnomaly(int(start), float(rate), float(z), "drought"))
    return out


@dataclass(frozen=True, slots=True)
class SilenceGap:
    """An interval during which a source emitted nothing."""

    node_id: int
    start_us: int
    end_us: int

    @property
    def duration_us(self) -> int:
        """Gap length in microseconds."""
        return self.end_us - self.start_us


def silence_gaps(
    trace: Trace, min_gap_us: int = 5_000_000
) -> list[SilenceGap]:
    """Per-node quiet intervals of at least *min_gap_us*.

    The trailing gap (last record → trace end) counts too: a node that
    stops emitting before the run ends is exactly the node to look at.
    """
    if min_gap_us <= 0:
        raise ValueError("min_gap_us must be positive")
    if not trace:
        return []
    trace_end = trace.end_us
    gaps: list[SilenceGap] = []
    for node_id in trace.node_ids:
        timestamps = [r.timestamp for r in trace.node(node_id)]
        for a, b in zip(timestamps, timestamps[1:]):
            if b - a >= min_gap_us:
                gaps.append(SilenceGap(node_id, a, b))
        if trace_end - timestamps[-1] >= min_gap_us:
            gaps.append(SilenceGap(node_id, timestamps[-1], trace_end))
    gaps.sort(key=lambda g: (g.start_us, g.node_id))
    return gaps


def correlate_series(
    trace_a: Trace, trace_b: Trace, bin_width_us: int = 1_000_000
) -> float:
    """Pearson correlation of two traces' binned rates over their union
    extent (0.0 when either side has no variance)."""
    if not trace_a or not trace_b:
        return 0.0
    t0 = min(trace_a.start_us, trace_b.start_us)
    t1 = max(trace_a.end_us, trace_b.end_us)
    n_bins = max(1, -(-(t1 - t0 + 1) // bin_width_us))

    def bin_counts(trace: Trace) -> np.ndarray:
        counts = np.zeros(n_bins)
        for record in trace:
            counts[min(n_bins - 1, (record.timestamp - t0) // bin_width_us)] += 1
        return counts

    a = bin_counts(trace_a)
    b = bin_counts(trace_b)
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
