"""Perturbation (intrusion) analysis and compensation.

§2: "The overhead should be predictable and must not change the order and
timing of critical events in the target system.  It is desired that IS
components are schedulable with the target system, so that perturbation
analyses can be performed to investigate the degree of intrusion."

Event-based software monitoring perturbs the application by the cost of
every NOTICE executed before a given point.  Because that cost is small
and predictable (benchmark E1), the classic compensation applies: model
the per-notice overhead, then shift every timestamp back by the
cumulative overhead its node has accumulated so far.  The result
approximates the timing the *uninstrumented* application would have shown.

Two entry points:

* :func:`estimate_intrusion` — calibrate an :class:`IntrusionModel` by
  timing the sensor on this machine (the measured side of E1);
* :func:`compensate_trace` — apply a model to a trace, returning the
  de-perturbed trace plus a report of how much time was removed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.trace import Trace
from repro.core.records import FieldType, RecordSchema
from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer
from repro.core.sensor import Sensor, compile_notice


@dataclass(frozen=True, slots=True)
class IntrusionModel:
    """Predictable per-event instrumentation overhead.

    ``base_cost_us`` is charged per NOTICE; ``per_field_cost_us`` per
    payload field (dynamic dispatch and packing scale with width).
    """

    base_cost_us: float
    per_field_cost_us: float = 0.0

    def __post_init__(self) -> None:
        if self.base_cost_us < 0 or self.per_field_cost_us < 0:
            raise ValueError("intrusion costs must be non-negative")

    def cost_of(self, n_fields: int) -> float:
        """Modelled overhead (µs) of one notice with *n_fields* fields."""
        return self.base_cost_us + self.per_field_cost_us * n_fields


def estimate_intrusion(
    samples: int = 5_000, specialized: bool = True
) -> IntrusionModel:
    """Calibrate an intrusion model by timing the sensor on this host.

    Times records of two widths and solves for the base and per-field
    costs.  Uses the specialized packer by default — the configuration a
    measurement-conscious deployment would run.
    """
    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 20)), OverflowPolicy.OVERWRITE_OLD
    )
    sensor = Sensor(ring, node_id=1)

    def time_width(n_fields: int) -> float:
        values = tuple(range(n_fields))
        if specialized:
            fast = compile_notice(RecordSchema((FieldType.X_INT,) * n_fields))

            def call() -> None:
                fast(sensor, 1, *values)
        else:
            fields = tuple((FieldType.X_INT, v) for v in values)

            def call() -> None:
                sensor.notice(1, *fields)
        call()  # warm the path
        t0 = time.perf_counter()
        for _ in range(samples):
            call()
        return (time.perf_counter() - t0) / samples * 1e6

    narrow = time_width(2)
    wide = time_width(10)
    per_field = max(0.0, (wide - narrow) / 8)
    base = max(0.0, narrow - 2 * per_field)
    return IntrusionModel(base_cost_us=base, per_field_cost_us=per_field)


@dataclass(frozen=True)
class CompensationReport:
    """What :func:`compensate_trace` did.

    Distinguish two magnitudes:

    * ``overhead_injected_us`` — the modelled instrumentation time the
      monitored run actually spent executing notices (linear in events);
    * ``total_shift_us`` — the sum of per-record timestamp shifts applied
      (each record shifts by its node's overhead *so far*, so this grows
      quadratically on dense traces — it is a bookkeeping total, not a
      physical duration).
    """

    total_shift_us: float
    overhead_injected_us: float
    per_node_shift_us: dict[int, float]
    events_compensated: int

    @property
    def mean_shift_us(self) -> float:
        """Average timestamp shift per event."""
        if not self.events_compensated:
            return 0.0
        return self.total_shift_us / self.events_compensated


def compensate_trace(
    trace: Trace, model: IntrusionModel
) -> tuple[Trace, CompensationReport]:
    """Remove modelled instrumentation overhead from a trace.

    Every record's timestamp is shifted earlier by the cumulative notice
    overhead its node accrued *before* that record (the record's own cost
    lands after its timestamp was taken, so it charges later events only).
    Per-node cumulative shifts preserve each node's local event order;
    cross-node order may legitimately change — that reordering is exactly
    the measurement distortion the instrumentation had introduced.
    """
    accumulated: dict[int, float] = {}
    compensated = []
    shift_per_node: dict[int, float] = {}
    for record in trace:
        before = accumulated.get(record.node_id, 0.0)
        compensated.append(
            record.with_timestamp(record.timestamp - round(before))
        )
        cost = model.cost_of(len(record.field_types))
        accumulated[record.node_id] = before + cost
        shift_per_node[record.node_id] = (
            shift_per_node.get(record.node_id, 0.0) + before
        )
    report = CompensationReport(
        total_shift_us=sum(shift_per_node.values()),
        overhead_injected_us=sum(accumulated.values()),
        per_node_shift_us=shift_per_node,
        events_compensated=len(compensated),
    )
    return Trace(compensated), report
