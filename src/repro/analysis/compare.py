"""Trace comparison: what changed between two runs.

Monitoring earns its keep when something *differs* — a regression, a
tuning change, an optimization.  :func:`compare_traces` aligns two traces
by (node, event type) and reports the deltas a performance engineer asks
for first: counts, rates, inter-event gaps, and overall extent.

Both traces are treated as whole runs; timestamps are compared relative
to each trace's own start, so absolute clock epochs (which differ between
runs by construction) do not pollute the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.statistics import gap_statistics
from repro.analysis.trace import Trace


@dataclass(frozen=True)
class SeriesDelta:
    """Count/rate change for one (node, event) series."""

    node_id: int
    event_id: int
    count_a: int
    count_b: int
    rate_a_hz: float
    rate_b_hz: float

    @property
    def count_delta(self) -> int:
        """Absolute count change (b − a)."""
        return self.count_b - self.count_a

    @property
    def count_ratio(self) -> float:
        """b/a count ratio (inf when a is empty)."""
        if self.count_a == 0:
            return float("inf") if self.count_b else 1.0
        return self.count_b / self.count_a


@dataclass(frozen=True)
class TraceComparison:
    """The full comparison result."""

    duration_a_us: int
    duration_b_us: int
    total_a: int
    total_b: int
    deltas: tuple[SeriesDelta, ...]
    #: (node, event) series present in exactly one trace.
    only_in_a: tuple[tuple[int, int], ...]
    only_in_b: tuple[tuple[int, int], ...]
    mean_gap_a_us: float = 0.0
    mean_gap_b_us: float = 0.0

    @property
    def duration_ratio(self) -> float:
        """Run-length ratio b/a."""
        if self.duration_a_us == 0:
            return float("inf") if self.duration_b_us else 1.0
        return self.duration_b_us / self.duration_a_us

    def regressions(self, threshold: float = 1.5) -> list[SeriesDelta]:
        """Series whose count grew by at least *threshold*× — the usual
        smell of a hot loop or retry storm."""
        return [
            d
            for d in self.deltas
            if d.count_ratio >= threshold and d.count_b > d.count_a
        ]

    def summary_rows(self, limit: int = 10) -> list[str]:
        """Human-readable digest, biggest count changes first."""
        rows = [
            f"duration: {self.duration_a_us / 1e6:.3f}s -> "
            f"{self.duration_b_us / 1e6:.3f}s ({self.duration_ratio:.2f}x)",
            f"records:  {self.total_a} -> {self.total_b}",
        ]
        ranked = sorted(
            self.deltas, key=lambda d: abs(d.count_delta), reverse=True
        )
        for delta in ranked[:limit]:
            rows.append(
                f"  node {delta.node_id} event {delta.event_id}: "
                f"{delta.count_a} -> {delta.count_b} "
                f"({delta.rate_a_hz:,.1f} -> {delta.rate_b_hz:,.1f} ev/s)"
            )
        for node_id, event_id in self.only_in_a:
            rows.append(f"  node {node_id} event {event_id}: vanished in B")
        for node_id, event_id in self.only_in_b:
            rows.append(f"  node {node_id} event {event_id}: new in B")
        return rows


def _series_counts(trace: Trace) -> dict[tuple[int, int], int]:
    counts: dict[tuple[int, int], int] = {}
    for record in trace:
        key = (record.node_id, record.event_id)
        counts[key] = counts.get(key, 0) + 1
    return counts


def compare_traces(a: Trace, b: Trace) -> TraceComparison:
    """Compare two traces series-by-series."""
    counts_a = _series_counts(a)
    counts_b = _series_counts(b)
    dur_a = a.duration_us if a else 0
    dur_b = b.duration_us if b else 0
    secs_a = max(dur_a, 1) / 1_000_000
    secs_b = max(dur_b, 1) / 1_000_000

    deltas = []
    for key in sorted(counts_a.keys() & counts_b.keys()):
        node_id, event_id = key
        deltas.append(
            SeriesDelta(
                node_id=node_id,
                event_id=event_id,
                count_a=counts_a[key],
                count_b=counts_b[key],
                rate_a_hz=counts_a[key] / secs_a,
                rate_b_hz=counts_b[key] / secs_b,
            )
        )
    gaps_a = gap_statistics(a)
    gaps_b = gap_statistics(b)
    return TraceComparison(
        duration_a_us=dur_a,
        duration_b_us=dur_b,
        total_a=len(a),
        total_b=len(b),
        deltas=tuple(deltas),
        only_in_a=tuple(sorted(counts_a.keys() - counts_b.keys())),
        only_in_b=tuple(sorted(counts_b.keys() - counts_a.keys())),
        mean_gap_a_us=gaps_a.mean,
        mean_gap_b_us=gaps_b.mean,
    )
