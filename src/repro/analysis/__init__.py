"""Instrumentation-data analysis toolkit.

The paper positions BRISK as a *kernel* for building analysis tools: the
ISM's outputs (memory buffer, PICL traces) are meant to be consumed by
"extant, independently-built tools and systems for the analysis of
instrumentation data" (§2).  This subpackage is that first tool layer:

* :mod:`repro.analysis.trace` — load traces (PICL files, ISM memory
  buffers, record lists) into a queryable :class:`Trace`;
* :mod:`repro.analysis.statistics` — event rates, inter-event gaps,
  per-node activity timelines;
* :mod:`repro.analysis.causality` — reconstruct the reason→consequence
  graph, find causal chains and violations;
* :mod:`repro.analysis.perturbation` — the §2 "perturbation analyses ...
  to investigate the degree of intrusion": model per-notice overhead and
  compensate trace timestamps for it.
"""

from repro.analysis.trace import Trace
from repro.analysis.statistics import (
    EventRateSeries,
    gap_statistics,
    node_activity,
    rate_series,
)
from repro.analysis.causality import (
    CausalGraph,
    build_causal_graph,
    causal_chains,
    find_causal_violations,
)
from repro.analysis.perturbation import (
    IntrusionModel,
    compensate_trace,
    estimate_intrusion,
)
from repro.analysis.anomaly import (
    RateAnomaly,
    SilenceGap,
    correlate_series,
    rate_anomalies,
    silence_gaps,
)
from repro.analysis.compare import TraceComparison, compare_traces

__all__ = [
    "Trace",
    "EventRateSeries",
    "gap_statistics",
    "node_activity",
    "rate_series",
    "CausalGraph",
    "build_causal_graph",
    "causal_chains",
    "find_causal_violations",
    "IntrusionModel",
    "compensate_trace",
    "estimate_intrusion",
    "RateAnomaly",
    "SilenceGap",
    "correlate_series",
    "rate_anomalies",
    "silence_gaps",
    "TraceComparison",
    "compare_traces",
]
