"""Trace statistics: rates, gaps, per-node activity.

Thin, numpy-backed computations over :class:`~repro.analysis.trace.Trace`
objects — the quantitative half of a performance-visualization front end
(the visual objects of §3.5 render exactly these series).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.trace import Trace
from repro.util.stats import RunningStats


@dataclass(frozen=True)
class EventRateSeries:
    """A binned event-rate time series.

    ``bin_starts_us[i]`` is the left edge of bin *i*; ``rates_hz[i]`` the
    event rate inside it.
    """

    bin_starts_us: np.ndarray
    rates_hz: np.ndarray
    bin_width_us: int

    @property
    def peak_hz(self) -> float:
        """Largest binned rate."""
        return float(self.rates_hz.max()) if len(self.rates_hz) else 0.0

    @property
    def mean_hz(self) -> float:
        """Mean rate across bins."""
        return float(self.rates_hz.mean()) if len(self.rates_hz) else 0.0


def rate_series(trace: Trace, bin_width_us: int = 1_000_000) -> EventRateSeries:
    """Bin the trace into fixed windows and compute events/second."""
    if bin_width_us < 1:
        raise ValueError("bin width must be positive")
    if not trace:
        return EventRateSeries(
            np.array([], dtype=np.int64), np.array([]), bin_width_us
        )
    timestamps = np.fromiter(
        (r.timestamp for r in trace), dtype=np.int64, count=len(trace)
    )
    start = timestamps.min()
    bins = (timestamps - start) // bin_width_us
    n_bins = int(bins.max()) + 1
    counts = np.bincount(bins, minlength=n_bins)
    starts = start + np.arange(n_bins, dtype=np.int64) * bin_width_us
    rates = counts * (1_000_000 / bin_width_us)
    return EventRateSeries(starts, rates, bin_width_us)


def gap_statistics(trace: Trace) -> RunningStats:
    """Statistics of inter-event gaps (µs) in timestamp order."""
    stats = RunningStats()
    previous: int | None = None
    for record in trace:
        if previous is not None:
            stats.add(record.timestamp - previous)
        previous = record.timestamp
    return stats


def node_activity(trace: Trace) -> dict[int, dict]:
    """Per-node digest: count, rate, share of the trace, time extent."""
    if not trace:
        return {}
    total = len(trace)
    duration_s = max(trace.duration_us, 1) / 1_000_000
    out: dict[int, dict] = {}
    for node_id in trace.node_ids:
        node_trace = trace.node(node_id)
        out[node_id] = {
            "count": len(node_trace),
            "share": len(node_trace) / total,
            "rate_hz": len(node_trace) / duration_s,
            "first_us": node_trace.start_us,
            "last_us": node_trace.end_us,
        }
    return out


def utilization_timeline(
    trace: Trace,
    start_event: int,
    end_event: int,
    bin_width_us: int = 1_000_000,
) -> dict[int, np.ndarray]:
    """Busy-fraction per bin per node from paired start/end events.

    Interprets *start_event*/*end_event* records as entering/leaving a
    busy region (the classic PICL block-begin/block-end pattern).  Returns
    ``node_id → fraction-of-bin-busy`` arrays over the trace's extent.
    Unbalanced markers are tolerated: an unmatched start runs to the end
    of the trace, an unmatched end is ignored.
    """
    if not trace:
        return {}
    t0, t1 = trace.start_us, trace.end_us + 1
    n_bins = max(1, -(-(t1 - t0) // bin_width_us))
    out: dict[int, np.ndarray] = {}
    for node_id in trace.node_ids:
        busy = np.zeros(n_bins)
        open_since: int | None = None
        for record in trace.node(node_id):
            if record.event_id == start_event and open_since is None:
                open_since = record.timestamp
            elif record.event_id == end_event and open_since is not None:
                _accumulate(busy, open_since, record.timestamp, t0, bin_width_us)
                open_since = None
        if open_since is not None:
            _accumulate(busy, open_since, t1, t0, bin_width_us)
        out[node_id] = busy / bin_width_us
    return out


def _accumulate(
    busy: np.ndarray, start: int, end: int, origin: int, width: int
) -> None:
    """Spread the interval [start, end) across the affected bins."""
    if end <= start:
        return
    first = (start - origin) // width
    last = (end - 1 - origin) // width
    for b in range(first, last + 1):
        lo = max(start, origin + b * width)
        hi = min(end, origin + (b + 1) * width)
        busy[b] += hi - lo
