"""PICL ASCII trace records (ORNL/TM-12125 subset).

The new PICL trace format is line oriented; every line is a whitespace-
separated record::

    <record-type> <event-type> <timestamp> <node> <extra...>

BRISK's instrumentation events map onto PICL *user-defined event* records
(record type ``-3`` in the PICL family of "non-standard" types), with the
dynamically-typed field payload carried in the data section::

    -3 <event_id> <timestamp> <node_id> <n_fields> <type value>...

* ``timestamp`` is printed either as microseconds of UTC (an integer) or as
  floating-point seconds since the ISM started — the two output modes §3.5
  describes.
* Strings are quoted with C-style escaping so a PICL line remains one line.

The reader accepts exactly what the writer produces and raises
:class:`PiclParseError` otherwise; it exists so tests and downstream tools
can round-trip traces, not to parse the full PICL zoo.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, TextIO

from repro.core.records import EventRecord, FieldType
from repro.util.timebase import MICROS_PER_SEC

#: PICL record type used for BRISK user events.
USER_EVENT_RECORD_TYPE = -3


class TimestampMode(Enum):
    """§3.5: "time-stamps either in the UTC format or as the (floating-
    point) number of seconds since the ISM was run"."""

    UTC_MICROS = "utc"
    RELATIVE_SECONDS = "relative"


class PiclParseError(ValueError):
    """A line is not a valid BRISK-subset PICL record."""


@dataclass(frozen=True, slots=True)
class PiclRecord:
    """Parsed form of one PICL line."""

    record_type: int
    event_type: int
    timestamp: float | int
    node: int
    fields: tuple[tuple[FieldType, object], ...] = ()


# ----------------------------------------------------------------------
# value formatting
# ----------------------------------------------------------------------

def _quote(text: str) -> str:
    out = ['"']
    for ch in text:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def _unquote(token: str) -> str:
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise PiclParseError(f"malformed quoted string: {token!r}")
    body = token[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise PiclParseError("dangling escape in string")
            esc = body[i]
            out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def _format_value(ftype: FieldType, value) -> str:
    if ftype is FieldType.X_STRING:
        return _quote(value)
    if ftype is FieldType.X_OPAQUE:
        return bytes(value).hex() or "-"
    if ftype in (FieldType.X_FLOAT, FieldType.X_DOUBLE):
        return repr(float(value))
    return str(int(value))


def _parse_value(ftype: FieldType, token: str):
    if ftype is FieldType.X_STRING:
        return _unquote(token)
    if ftype is FieldType.X_OPAQUE:
        return b"" if token == "-" else bytes.fromhex(token)
    if ftype in (FieldType.X_FLOAT, FieldType.X_DOUBLE):
        return float(token)
    return int(token)


# ----------------------------------------------------------------------
# record <-> line
# ----------------------------------------------------------------------

def record_to_picl(
    record: EventRecord,
    mode: TimestampMode = TimestampMode.UTC_MICROS,
    epoch_us: int = 0,
) -> PiclRecord:
    """Convert an event record into its PICL representation."""
    if mode is TimestampMode.UTC_MICROS:
        ts: float | int = record.timestamp
    else:
        ts = (record.timestamp - epoch_us) / MICROS_PER_SEC
    return PiclRecord(
        record_type=USER_EVENT_RECORD_TYPE,
        event_type=record.event_id,
        timestamp=ts,
        node=record.node_id,
        fields=tuple(zip(record.field_types, record.values)),
    )


def picl_to_line(picl: PiclRecord) -> str:
    """Serialize a PICL record to its trace line (no newline)."""
    if isinstance(picl.timestamp, int):
        ts = str(picl.timestamp)
    else:
        ts = f"{picl.timestamp:.6f}"
    parts = [
        str(picl.record_type),
        str(picl.event_type),
        ts,
        str(picl.node),
        str(len(picl.fields)),
    ]
    for ftype, value in picl.fields:
        parts.append(str(int(ftype)))
        parts.append(_format_value(ftype, value))
    return " ".join(parts)


def _split_tokens(line: str) -> list[str]:
    """Split on whitespace, keeping quoted strings as single tokens."""
    tokens: list[str] = []
    i, n = 0, len(line)
    while i < n:
        if line[i].isspace():
            i += 1
            continue
        if line[i] == '"':
            j = i + 1
            while j < n:
                if line[j] == "\\":
                    j += 2
                    continue
                if line[j] == '"':
                    break
                j += 1
            if j >= n:
                raise PiclParseError("unterminated quoted string")
            tokens.append(line[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and not line[j].isspace():
                j += 1
            tokens.append(line[i:j])
            i = j
    return tokens


def parse_line(line: str) -> PiclRecord:
    """Parse one trace line back into a :class:`PiclRecord`."""
    tokens = _split_tokens(line.strip())
    if len(tokens) < 5:
        raise PiclParseError(f"too few tokens: {line!r}")
    try:
        record_type = int(tokens[0])
        event_type = int(tokens[1])
        ts_token = tokens[2]
        timestamp: float | int = (
            float(ts_token) if ("." in ts_token or "e" in ts_token) else int(ts_token)
        )
        node = int(tokens[3])
        n_fields = int(tokens[4])
    except ValueError as exc:
        raise PiclParseError(f"malformed header in {line!r}") from exc
    expected = 5 + 2 * n_fields
    if len(tokens) != expected:
        raise PiclParseError(
            f"expected {expected} tokens for {n_fields} fields, got {len(tokens)}"
        )
    fields: list[tuple[FieldType, object]] = []
    for k in range(n_fields):
        try:
            ftype = FieldType(int(tokens[5 + 2 * k]))
        except ValueError as exc:
            raise PiclParseError(f"bad field type in {line!r}") from exc
        fields.append((ftype, _parse_value(ftype, tokens[6 + 2 * k])))
    return PiclRecord(
        record_type=record_type,
        event_type=event_type,
        timestamp=timestamp,
        node=node,
        fields=tuple(fields),
    )


def picl_to_record(picl: PiclRecord) -> EventRecord:
    """Rebuild an event record from a UTC-mode PICL record.

    Relative-seconds traces cannot be converted back exactly (the epoch is
    not stored in the line); passing one raises :class:`PiclParseError`.
    """
    if not isinstance(picl.timestamp, int):
        raise PiclParseError(
            "cannot rebuild EventRecord from relative-seconds timestamps"
        )
    types = tuple(t for t, _ in picl.fields)
    values = tuple(v for _, v in picl.fields)
    return EventRecord(
        event_id=picl.event_type,
        timestamp=picl.timestamp,
        field_types=types,
        values=values,
        node_id=picl.node,
    )


# ----------------------------------------------------------------------
# file objects
# ----------------------------------------------------------------------

class PiclWriter:
    """Streams event records to a PICL trace file object."""

    def __init__(
        self,
        stream: TextIO,
        mode: TimestampMode = TimestampMode.UTC_MICROS,
        epoch_us: int = 0,
    ) -> None:
        self._stream = stream
        self.mode = mode
        self.epoch_us = epoch_us
        self.lines_written = 0

    def write(self, record: EventRecord) -> None:
        """Append one record as one trace line."""
        line = picl_to_line(record_to_picl(record, self.mode, self.epoch_us))
        self._stream.write(line)
        self._stream.write("\n")
        self.lines_written += 1

    def write_all(self, records: Iterable[EventRecord]) -> None:
        """Append many records in one stream write.

        Byte-identical to calling :meth:`write` per record; the batch
        renders every line first and hands the stream a single string, so
        a buffered file does one flush-check instead of two per record.
        """
        mode = self.mode
        epoch_us = self.epoch_us
        lines = [
            picl_to_line(record_to_picl(record, mode, epoch_us))
            for record in records
        ]
        if not lines:
            return
        lines.append("")  # trailing newline after the final line
        self._stream.write("\n".join(lines))
        self.lines_written += len(lines) - 1

    def sync(self) -> None:
        """Flush the stream and ``fsync`` it to stable storage.

        A no-op past the flush for streams without a real file descriptor
        (``StringIO``); the crash-safe trace consumer calls this after
        each delivered slice so a killed ISM loses at most the slice in
        flight.
        """
        self._stream.flush()
        fileno = getattr(self._stream, "fileno", None)
        if fileno is None:
            return
        try:
            os.fsync(fileno())
        except (OSError, io.UnsupportedOperation):
            pass  # not a real file (pipe to a gone reader, StringIO, ...)


class PiclReader:
    """Iterates PICL records from a trace file object.

    *tolerate_torn_tail* accepts the one corruption a crash of the
    *writer* can legitimately produce in a line-oriented append-only
    trace: a final line cut short mid-write.  With it set, a parse error
    on the **last** line of the stream is swallowed (counted in
    ``torn_lines``) instead of raised; a malformed line anywhere earlier
    still raises — that is real corruption, not a crash artifact.
    """

    def __init__(self, stream: TextIO, *, tolerate_torn_tail: bool = False) -> None:
        self._stream = stream
        self.tolerate_torn_tail = tolerate_torn_tail
        #: Torn final lines swallowed (0 or 1 per stream).
        self.torn_lines = 0

    def __iter__(self) -> Iterator[PiclRecord]:
        deferred: PiclParseError | None = None
        for line in self._stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if deferred is not None:
                # The bad line was *not* the tail after all.
                raise deferred
            try:
                parsed = parse_line(line)
            except PiclParseError as exc:
                if not self.tolerate_torn_tail:
                    raise
                deferred = exc
                continue
            yield parsed
        if deferred is not None:
            self.torn_lines += 1

    def read_all(self) -> list[PiclRecord]:
        """Read every record in the stream."""
        return list(self)


def dumps(
    records: Iterable[EventRecord],
    mode: TimestampMode = TimestampMode.UTC_MICROS,
    epoch_us: int = 0,
) -> str:
    """Render records as a PICL trace string (tests/examples helper)."""
    buf = io.StringIO()
    PiclWriter(buf, mode, epoch_us).write_all(records)
    return buf.getvalue()
