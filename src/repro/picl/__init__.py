"""PICL trace format support.

The ISM "may log instrumentation data to trace files in the PICL ASCII
format" (P. H. Worley, *A new PICL trace file format*, ORNL/TM-12125, 1992),
the lingua franca of 1990s performance-analysis tools (ParaGraph and
friends).  :mod:`repro.picl.format` implements a writer and reader for the
record subset BRISK emits.
"""

from repro.picl.format import (
    PiclRecord,
    PiclWriter,
    PiclReader,
    TimestampMode,
    record_to_picl,
    picl_to_line,
    parse_line,
    USER_EVENT_RECORD_TYPE,
)

__all__ = [
    "PiclRecord",
    "PiclWriter",
    "PiclReader",
    "TimestampMode",
    "record_to_picl",
    "picl_to_line",
    "parse_line",
    "USER_EVENT_RECORD_TYPE",
]
