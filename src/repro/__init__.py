"""BRISK — Baseline Reduced Instrumentation System Kernel.

A from-scratch Python reproduction of *"BRISK: A Portable and Flexible
Distributed Instrumentation System"* (A. M. Bakić, M. W. Mutka, D. T. Rover,
IPPS 1999): a general-purpose distributed instrumentation system kernel for
monitoring parallel and distributed applications.

Quickstart
----------
::

    from repro import (
        FieldType, InstrumentationManager, MemoryBufferConsumer,
        Sensor, ring_for_records,
    )

    ring = ring_for_records(10_000)
    sensor = Sensor(ring, node_id=1)
    sensor.notice_ints(42, 1, 2, 3, 4, 5, 6)

See ``examples/quickstart.py`` for the full single-node pipeline and
``examples/distributed_pipeline.py`` for the multi-node deployment.

Package map
-----------
* :mod:`repro.core` — the IS kernel: sensors, ring buffer, external sensor,
  ISM with on-line sorting and causal matching, consumers.
* :mod:`repro.xdr` / :mod:`repro.wire` — the XDR-based transfer protocol.
* :mod:`repro.clocksync` — the modified Cristian clock synchronization.
* :mod:`repro.picl` — PICL ASCII trace output.
* :mod:`repro.sim` — deterministic discrete-event substrate reproducing the
  paper's distributed experiments.
* :mod:`repro.runtime` — real multi-process deployment over TCP and shared
  memory.
"""

from repro.core import (
    CallbackConsumer,
    CausalMatcher,
    Consumer,
    CreConfig,
    EventRecord,
    ExsConfig,
    ExternalSensor,
    FieldType,
    InstrumentationManager,
    IsmConfig,
    MemoryBufferConsumer,
    OnlineSorter,
    OverflowPolicy,
    PiclFileConsumer,
    RecordSchema,
    RingBuffer,
    Sensor,
    SorterConfig,
    VisualObjectConsumer,
    compile_notice,
)
from repro.core.ringbuffer import ring_for_records
from repro.clocksync import (
    BriskSyncConfig,
    BriskSyncMaster,
    CorrectedClock,
    CristianMaster,
    DriftingClock,
)

__version__ = "1.0.0"

__all__ = [
    "CallbackConsumer",
    "CausalMatcher",
    "Consumer",
    "CreConfig",
    "EventRecord",
    "ExsConfig",
    "ExternalSensor",
    "FieldType",
    "InstrumentationManager",
    "IsmConfig",
    "MemoryBufferConsumer",
    "OnlineSorter",
    "OverflowPolicy",
    "PiclFileConsumer",
    "RecordSchema",
    "RingBuffer",
    "Sensor",
    "SorterConfig",
    "VisualObjectConsumer",
    "compile_notice",
    "ring_for_records",
    "BriskSyncConfig",
    "BriskSyncMaster",
    "CorrectedClock",
    "CristianMaster",
    "DriftingClock",
    "__version__",
]
