"""``brisk-tail``: follow an ISM's shared-memory output buffer live.

The simplest possible instrumentation data consumer tool (§3.5): attach
to the ISM's shared output segment and print each record as a PICL line
as it is delivered::

    brisk-ism ... &            # configured with a SharedMemoryConsumer
    brisk-tail brisk_out       # segment name

Stops after ``--count`` records or when the stream goes idle.
"""

from __future__ import annotations

import argparse
import sys

from repro.picl.format import TimestampMode, picl_to_line, record_to_picl
from repro.runtime.shm_consumer import SharedMemoryReader


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-tail",
        description="Follow an ISM shared-memory output buffer, printing PICL.",
    )
    parser.add_argument("segment", help="shared-memory segment name")
    parser.add_argument(
        "--count", type=int, default=None, help="stop after this many records"
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=5.0,
        help="stop after this many idle seconds",
    )
    parser.add_argument(
        "--relative", action="store_true",
        help="print relative-seconds timestamps (epoch = first record seen)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that quit early: not an error.
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        reader = SharedMemoryReader(args.segment)
    except FileNotFoundError:
        print(f"no such shared segment: {args.segment}", file=sys.stderr)
        return 1
    mode = (
        TimestampMode.RELATIVE_SECONDS if args.relative else TimestampMode.UTC_MICROS
    )
    epoch: int | None = None
    printed = 0
    try:
        for record in reader.stream(
            stop_after=args.count, idle_timeout_s=args.idle_timeout
        ):
            if epoch is None:
                epoch = record.timestamp
            print(picl_to_line(record_to_picl(record, mode, epoch_us=epoch)))
            printed += 1
    except KeyboardInterrupt:
        pass
    finally:
        reader.close()
    print(f"brisk-tail: {printed} records", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
