"""Command-line tools built on the BRISK kernel.

The off-the-shelf entry points a deployment needs on day one:

* ``brisk-ism`` (:mod:`repro.tools.ism_cli`) — run an ISM server that
  accepts external-sensor connections, synchronizes their clocks, and
  logs the merged stream to a PICL trace;
* ``brisk-trace-stats`` (:mod:`repro.tools.trace_stats_cli`) — summarize
  a PICL trace: rates, per-node activity, causal structure;
* ``brisk-replay`` (:mod:`repro.tools.replay_cli`) — re-run a recorded
  trace through the on-line sorting pipeline (re-order a raw trace, or
  rewrite timestamp modes).
"""
