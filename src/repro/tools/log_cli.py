"""``brisk-log``: inspect and maintain a durable commit log directory.

Four subcommands::

    # Segment layout, offsets, checkpoint, consumer groups at a glance.
    brisk-log info /var/lib/brisk/log

    # Print the newest records as PICL lines (or from a given offset).
    brisk-log tail /var/lib/brisk/log -n 20
    brisk-log tail /var/lib/brisk/log --from-offset 10000

    # Dry-run crash recovery: scan every segment, CRC-check every entry,
    # report what a real recovery would truncate.  Read-only.
    brisk-log truncate-check /var/lib/brisk/log

    # Consumer-group offsets and lag; set one explicitly for replay.
    brisk-log offsets /var/lib/brisk/log
    brisk-log offsets /var/lib/brisk/log --set analytics=0

``info``, ``tail`` and ``truncate-check`` never write: they scan segment
files directly, so they are safe to run against a log an ISM is actively
appending to.  ``offsets --set`` writes only the group's offset file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.log.commitlog import CHECKPOINT_FILE, CommitLog, OffsetOutOfRange, iter_log
from repro.log.segment import LogCorruption, scan_segment, segment_path
from repro.picl.format import PiclWriter


def _segment_bases(directory: str) -> list[int]:
    try:
        names = os.listdir(directory)
    except OSError as exc:
        raise SystemExit(f"brisk-log: cannot read {directory}: {exc}")
    return sorted(
        int(name[:-4])
        for name in names
        if name.endswith(".seg") and name[:-4].isdigit()
    )


def _read_checkpoint(directory: str) -> dict | None:
    try:
        with open(os.path.join(directory, CHECKPOINT_FILE), encoding="ascii") as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        return None


def cmd_info(args: argparse.Namespace) -> int:
    bases = _segment_bases(args.log_dir)
    if not bases:
        print(f"{args.log_dir}: no segments")
        return 1
    print(f"commit log {args.log_dir}")
    total_records = 0
    total_bytes = 0
    end = bases[-1]
    for i, base in enumerate(bases):
        path = segment_path(args.log_dir, base)
        try:
            scan = scan_segment(path)
        except LogCorruption as exc:
            print(f"  segment {base:>12}  CORRUPT: {exc}")
            continue
        torn = scan.file_size - scan.valid_end
        tag = " (active)" if i == len(bases) - 1 else ""
        note = f"  torn tail {torn} B" if torn else ""
        print(
            f"  segment {base:>12}  {scan.record_count:>9} records"
            f"  {scan.file_size:>12} B{tag}{note}"
        )
        total_records += scan.record_count
        total_bytes += scan.file_size
        end = base + scan.record_count
    print(f"  offsets [{bases[0]}, {end})  {total_records} records, {total_bytes} B")
    checkpoint = _read_checkpoint(args.log_dir)
    if checkpoint is not None:
        print(
            f"  checkpoint: durable_end={checkpoint.get('durable_end')}"
            f" fsync={checkpoint.get('fsync')}"
            f" sources={checkpoint.get('sources')}"
        )
    groups_dir = os.path.join(args.log_dir, "offsets")
    if os.path.isdir(groups_dir):
        for name in sorted(os.listdir(groups_dir)):
            if name.endswith(".part"):
                continue
            try:
                with open(os.path.join(groups_dir, name), encoding="ascii") as f:
                    committed = int(f.read().strip())
            except (OSError, ValueError):
                continue
            print(f"  group {name}: offset {committed}, lag {max(0, end - committed)}")
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    bases = _segment_bases(args.log_dir)
    if not bases:
        print(f"{args.log_dir}: no segments", file=sys.stderr)
        return 1
    if args.from_offset is not None:
        records = list(iter_log(args.log_dir, args.from_offset))
    else:
        # Newest n: start the scan at the latest segment that still
        # yields enough records (iter_log reads from there to the end).
        records = []
        for base in reversed(bases):
            records = list(iter_log(args.log_dir, base))
            if len(records) >= args.lines:
                break
        records = records[-args.lines :]
    writer = PiclWriter(sys.stdout)
    writer.write_all(records)
    return 0


def cmd_truncate_check(args: argparse.Namespace) -> int:
    bases = _segment_bases(args.log_dir)
    if not bases:
        print(f"{args.log_dir}: no segments", file=sys.stderr)
        return 1
    status = 0
    end = 0
    for i, base in enumerate(bases):
        path = segment_path(args.log_dir, base)
        try:
            scan = scan_segment(path)
        except LogCorruption as exc:
            print(f"{path}: CORRUPT header: {exc}")
            status = 2
            continue
        torn = scan.file_size - scan.valid_end
        end = base + scan.record_count
        if torn:
            last = i == len(bases) - 1
            print(
                f"{path}: torn tail of {torn} B past record "
                f"{base + scan.record_count - 1}; recovery would truncate "
                f"to {scan.valid_end} B"
                + ("" if last else "  [NOT the tail segment!]")
            )
            if not last:
                status = 2
            elif status == 0:
                status = 1
        else:
            print(f"{path}: clean ({scan.record_count} records)")
    checkpoint = _read_checkpoint(args.log_dir)
    if checkpoint is not None:
        durable_end = int(checkpoint.get("durable_end", 0))
        if durable_end < end:
            print(
                f"checkpoint durable_end={durable_end} < scanned end={end}: "
                f"recovery would also discard {end - durable_end} unacked "
                f"record(s) past the checkpoint"
            )
            if status == 0:
                status = 1
    return status


def cmd_offsets(args: argparse.Namespace) -> int:
    if args.set is not None:
        group, _, raw = args.set.partition("=")
        if not raw:
            print("brisk-log: --set expects GROUP=OFFSET", file=sys.stderr)
            return 2
        log = CommitLog(args.log_dir)
        try:
            log.commit_offset(group, int(raw))
            print(f"group {group}: offset set to {int(raw)}")
        except (OffsetOutOfRange, ValueError) as exc:
            print(f"brisk-log: {exc}", file=sys.stderr)
            return 2
        finally:
            log.close()
        return 0
    bases = _segment_bases(args.log_dir)
    end = 0
    if bases:
        scan = scan_segment(segment_path(args.log_dir, bases[-1]))
        end = bases[-1] + scan.record_count
    groups_dir = os.path.join(args.log_dir, "offsets")
    found = False
    if os.path.isdir(groups_dir):
        for name in sorted(os.listdir(groups_dir)):
            if name.endswith(".part"):
                continue
            try:
                with open(os.path.join(groups_dir, name), encoding="ascii") as f:
                    committed = int(f.read().strip())
            except (OSError, ValueError):
                continue
            print(f"{name}\t{committed}\t{max(0, end - committed)}")
            found = True
    if not found:
        print("no consumer groups", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-log",
        description="Inspect and maintain a BRISK commit-log directory.",
    )
    sub = parser.add_subparsers(dest="mode", required=True)

    info = sub.add_parser("info", help="segments, offsets, checkpoint, groups")
    info.add_argument("log_dir", help="commit-log directory")

    tail = sub.add_parser("tail", help="print records as PICL lines")
    tail.add_argument("log_dir", help="commit-log directory")
    tail.add_argument(
        "-n", "--lines", type=int, default=10, help="newest records to print"
    )
    tail.add_argument(
        "--from-offset", type=int, default=None,
        help="print everything from this offset instead of the newest -n",
    )

    check = sub.add_parser(
        "truncate-check",
        help="dry-run recovery: report torn tails without touching the log",
    )
    check.add_argument("log_dir", help="commit-log directory")

    offsets = sub.add_parser("offsets", help="consumer-group offsets and lag")
    offsets.add_argument("log_dir", help="commit-log directory")
    offsets.add_argument(
        "--set", metavar="GROUP=OFFSET", default=None,
        help="durably set a group's committed offset (e.g. replay=0)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "tail": cmd_tail,
        "truncate-check": cmd_truncate_check,
        "offsets": cmd_offsets,
    }
    return handlers[args.mode](args)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
