"""``brisk-report``: aggregate benchmark results into one document.

Each evaluation benchmark writes its table to
``benchmarks/results/<test>.txt`` (see ``benchmarks/conftest.py``); this
tool collates them into a single markdown report ordered by experiment
id, so refreshing the paper-vs-measured comparison after a benchmark run
is one command::

    pytest benchmarks/ --benchmark-only
    brisk-report benchmarks/results -o results-report.md
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: Experiment ordering: E1..E8 then A1..A8, then anything else.
_ORDER = re.compile(r"test_(e\d+|a\d+)?", re.IGNORECASE)

_EXPERIMENT_OF_FILE = {
    "notice": "E1",
    "a2_specialization": "E1/A2",
    "exs": "E2",
    "sharded": "E5b",
    "aggregate": "E5",
    "e11": "E11",
    "sorter_throughput": "E7",
    "throughput": "E3",
    "latency": "E4",
    "quiet_lan": "E6",
    "disturbed_lan": "E6",
    "a3": "E6/A3",
    "growth_signal": "E7",
    "decay_constant": "E7",
    "initial_frame": "E7",
    "delay_profile": "E7",
    "sorter_throughput": "E7",
    "paper_40": "E8",
    "size_vs": "E8",
    "size_per": "E8",
    "batch_encode": "E8",
    "batch_decode": "E8",
    "relay": "E10",
    "specialized_vs_dynamic": "E9",
    "mixed_schema_batch": "E9",
    "bytes_saved": "A1",
    "roundtrip_equivalence": "A1",
    "conservative_rules": "A4",
    "probe_estimators": "A4",
    "causal_marking": "A5",
    "batching_latency": "A6",
    "profiling_vs": "A7",
    "filter_placement": "A8",
}


def experiment_of(name: str) -> str:
    """Best-effort experiment id for a result file name."""
    stem = name.lower()
    for needle, exp in _EXPERIMENT_OF_FILE.items():
        if needle in stem:
            return exp
    return "misc"


def _sort_key(item: tuple[str, pathlib.Path]):
    exp = item[0]
    kind = 0 if exp.startswith("E") else (1 if exp.startswith("A") else 2)
    digits = re.findall(r"\d+", exp)
    return (kind, int(digits[0]) if digits else 99, item[1].name)


def build_report(results_dir: pathlib.Path) -> str:
    """Render all result files into one markdown document."""
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        return "# BRISK benchmark report\n\n(no result files found)\n"
    grouped = sorted(
        ((experiment_of(f.stem), f) for f in files), key=_sort_key
    )
    lines = ["# BRISK benchmark report", ""]
    current = None
    for exp, path in grouped:
        if exp != current:
            lines.append(f"## {exp}")
            lines.append("")
            current = exp
        body = path.read_text().splitlines()
        title = body[0].lstrip("# ") if body else path.stem
        lines.append(f"### `{title}`")
        lines.append("")
        lines.append("```")
        lines.extend(line for line in body[1:] if line.strip() or True)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-report",
        description="Collate benchmark result files into one markdown report.",
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        default="benchmarks/results",
        help="directory of *.txt result files",
    )
    parser.add_argument("-o", "--output", help="write here instead of stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that quit early: not an error.
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"no such directory: {results_dir}", file=sys.stderr)
        return 1
    report = build_report(results_dir)
    if args.output:
        pathlib.Path(args.output).write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
