"""``brisk-replay``: re-run a recorded trace through the sorting pipeline.

Reads a UTC-mode PICL trace — or, when *input* is a directory, a durable
commit log (:mod:`repro.log`) — feeds it through a fresh on-line sorter
and causal matcher (as if the records were arriving live, in recorded
order), and writes the re-ordered result.  Useful to:

* repair an unsorted or causally-inconsistent raw trace offline,
* convert timestamps to relative-seconds for tools that want them,
* experiment with sorter knobs against a captured workload,
* turn a crash-recovered commit log back into a PICL trace.

Example::

    brisk-replay raw.picl sorted.picl --time-frame-ms 50 --relative
    brisk-replay /var/lib/brisk/log sorted.picl --from-offset 10000
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.consumers import PiclFileConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sorting import SorterConfig
from repro.picl.format import TimestampMode
from repro.wire.protocol import Batch


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-replay",
        description="Replay a PICL trace through the BRISK sorting pipeline.",
    )
    parser.add_argument(
        "input",
        help="input PICL trace (UTC timestamps), or a commit-log directory",
    )
    parser.add_argument("output", help="output PICL trace")
    parser.add_argument(
        "--time-frame-ms", type=float, default=10.0,
        help="initial sorting time frame, milliseconds",
    )
    parser.add_argument(
        "--relative", action="store_true",
        help="write relative-seconds timestamps (epoch = first record)",
    )
    parser.add_argument(
        "--from-offset", type=int, default=0,
        help="log input only: replay from this log offset (default 0)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if os.path.isdir(args.input):
        # A commit-log directory: read-only scan, log order is arrival
        # order (it is the ISM's delivery order).
        from repro.log import iter_log

        records = list(iter_log(args.input, args.from_offset))
    else:
        with open(args.input) as stream:
            # File order is the arrival order; do not pre-sort.
            from repro.picl.format import PiclReader, picl_to_record

            records = [picl_to_record(p) for p in PiclReader(stream)]
    if not records:
        print("empty input trace", file=sys.stderr)
        open(args.output, "w").close()
        return 0

    epoch = min(r.timestamp for r in records)
    mode = TimestampMode.RELATIVE_SECONDS if args.relative else TimestampMode.UTC_MICROS
    out_stream = open(args.output, "w")
    consumer = PiclFileConsumer(out_stream, mode, epoch_us=epoch, close_stream=True)
    manager = InstrumentationManager(
        IsmConfig(
            sorter=SorterConfig(initial_frame_us=round(args.time_frame_ms * 1000))
        ),
        [consumer],
    )
    # One virtual source per node id; arrival time = the record's own
    # timestamp (the best stand-in a file replay has).
    for node_id in {r.node_id for r in records}:
        manager.register_source(node_id, node_id)
    for record in records:
        manager.on_batch(
            Batch(
                exs_id=record.node_id,
                seq=manager.stats.last_seq.get(record.node_id, -1) + 1,
                records=(record,),
            ),
            now=record.timestamp,
        )
        manager.tick(record.timestamp)
    manager.flush(max(r.timestamp for r in records))
    manager.close()

    print(
        f"replayed {manager.stats.records_received} records; "
        f"out-of-order extractions {manager.sorter.stats.out_of_order}; "
        f"tachyons fixed {manager.cre.stats.tachyons_fixed}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
