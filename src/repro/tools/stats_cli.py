"""``brisk-stats``: render the instrumentation system's own metrics.

Three modes::

    # Watch a simulated deployment monitor itself: live metric tables at
    # every reporting interval, then the snapshot decoded back from the
    # self-emitted records that rode the pipeline.
    brisk-stats sim --nodes 4 --duration 10 --rate 200

    # Decode self-emitted metric records out of a PICL trace.
    brisk-stats picl /tmp/run.picl

    # Snapshot a live shared-memory output segment (brisk-ism --shm-out).
    brisk-stats shm brisk-out-1234

    # Fleet view of a sharded ISM run: merged totals plus the per-shard
    # breakdown table (JSON written by brisk-ism --shards N --stats-json).
    brisk-stats shards /tmp/ism-stats.json

    # Relay-tier view: coalesce/compress/fold accounting of one or more
    # relay nodes (JSON from relay_process_main(..., stats_json=...)).
    brisk-stats relay /tmp/relay-0.json /tmp/relay-1.json

The ``sim`` mode doubles as the smoke proof for the observability layer:
ring/EXS/sorter/CRE gauges move while the run progresses, and the metric
records round-trip LIS→EXS→ISM→PICL like any application event.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.render import render_snapshot
from repro.obs.reporter import METRICS_EVENT_ID, scalars_snapshot, snapshot_from_records


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-stats",
        description="Render BRISK self-observability metrics.",
    )
    sub = parser.add_subparsers(dest="mode", required=True)

    sim = sub.add_parser("sim", help="run a simulated deployment and watch it")
    sim.add_argument("--nodes", type=int, default=4, help="LIS node count")
    sim.add_argument(
        "--duration", type=float, default=10.0, help="simulated seconds"
    )
    sim.add_argument(
        "--rate", type=float, default=200.0, help="events/second per node"
    )
    sim.add_argument(
        "--interval", type=float, default=1.0,
        help="metrics reporting interval, simulated seconds",
    )
    sim.add_argument("--seed", type=int, default=7, help="simulation seed")
    sim.add_argument(
        "--quiet", action="store_true",
        help="only print the final snapshot and round-trip check",
    )

    picl = sub.add_parser("picl", help="decode metric records from a trace")
    picl.add_argument("path", help="PICL trace file")
    picl.add_argument(
        "--event-id", type=int, default=METRICS_EVENT_ID,
        help="event id carried by metric records",
    )

    shm = sub.add_parser("shm", help="snapshot a shared output segment")
    shm.add_argument("name", help="segment name (printed by brisk-ism)")
    shm.add_argument(
        "--event-id", type=int, default=METRICS_EVENT_ID,
        help="event id carried by metric records",
    )

    shards = sub.add_parser(
        "shards", help="fleet view of a sharded ISM stats dump"
    )
    shards.add_argument(
        "path", help="stats JSON written by brisk-ism --stats-json"
    )
    shards.add_argument(
        "--no-dispatcher", action="store_true",
        help="leave the dispatcher's own counters out of the fleet totals",
    )

    relay = sub.add_parser(
        "relay", help="relay-tier view of one or more relay stats dumps"
    )
    relay.add_argument(
        "paths", nargs="+",
        help="stats JSON written by relay_process_main(stats_json=...)",
    )
    return parser


def _run_sim(args) -> int:
    from repro.core.consumers import CollectingConsumer
    from repro.sim.deployment import DeploymentConfig, SimDeployment
    from repro.sim.engine import Simulator
    from repro.sim.workload import PeriodicWorkload

    sim = Simulator(seed=args.seed)
    interval_us = max(1, round(args.interval * 1_000_000))
    config = DeploymentConfig(metrics_interval_us=interval_us)
    collected = CollectingConsumer()
    deployment = SimDeployment(sim, config, consumers=[collected])
    for node in deployment.add_nodes(args.nodes):
        deployment.attach_workload(node, PeriodicWorkload(args.rate))
    deployment.start()

    slices = max(1, round(args.duration / args.interval))
    for _ in range(slices):
        deployment.run(args.interval)
        if not args.quiet:
            print(f"== t={sim.now / 1e6:.1f}s " + "=" * 30)
            print(render_snapshot(deployment.metrics_snapshot()))
    deployment.stop()

    print("== final snapshot " + "=" * 26)
    print(render_snapshot(deployment.metrics_snapshot()))
    round_tripped = snapshot_from_records(collected.records)
    print()
    print(
        f"== self-emitted metrics decoded from the delivered stream "
        f"({deployment.reporter.emissions} emissions) =="
    )
    print(render_snapshot(scalars_snapshot(round_tripped)))
    return 0 if round_tripped else 1


def _run_picl(args) -> int:
    from repro.picl.format import PiclReader, picl_to_record

    with open(args.path, "r", encoding="ascii") as stream:
        records = [
            picl_to_record(r)
            for r in PiclReader(stream, tolerate_torn_tail=True)
        ]
    scalars = snapshot_from_records(records, event_id=args.event_id)
    if not scalars:
        print(
            f"no metric records (event id {args.event_id}) in {args.path}",
            file=sys.stderr,
        )
        return 1
    print(render_snapshot(scalars_snapshot(scalars)))
    return 0


def _run_shm(args) -> int:
    from repro.runtime.shm_consumer import SharedMemoryReader

    reader = SharedMemoryReader(args.name)
    try:
        records = reader.drain()
    finally:
        reader.close()
    scalars = snapshot_from_records(records, event_id=args.event_id)
    if not scalars:
        print(
            f"no metric records (event id {args.event_id}) in segment "
            f"{args.name}",
            file=sys.stderr,
        )
        return 1
    print(render_snapshot(scalars_snapshot(scalars)))
    return 0


def _run_shards(args) -> int:
    import json

    from repro.obs.render import render_shard_breakdown

    with open(args.path, "r", encoding="ascii") as stream:
        dump = json.load(stream)
    shard_scalars = dump.get("shards", {})
    dispatcher_scalars = dump.get("dispatcher", {})
    if not shard_scalars and not dispatcher_scalars:
        print(f"no stats in {args.path}", file=sys.stderr)
        return 1
    snapshots = [
        (shard_id, scalars_snapshot(values))
        for shard_id, values in sorted(
            shard_scalars.items(), key=lambda kv: int(kv[0])
        )
    ]
    dispatcher = (
        None
        if args.no_dispatcher or not dispatcher_scalars
        else scalars_snapshot(dispatcher_scalars)
    )
    print(render_shard_breakdown(snapshots, dispatcher))
    return 0


def _run_relay(args) -> int:
    import json

    any_stats = False
    for path in args.paths:
        with open(path, "r", encoding="ascii") as stream:
            dump = json.load(stream)
        counters = dump.get("counters", {})
        if not counters:
            print(f"no relay stats in {path}", file=sys.stderr)
            continue
        any_stats = True
        scalars = {f"relay.{name}": value for name, value in counters.items()}
        scalars["relay.sources"] = dump.get("sources", 0)
        scalars["relay.held_envelopes"] = dump.get("held_envelopes", 0)
        scalars["relay.unacked_frames"] = dump.get("unacked_frames", 0)
        header = (
            f"== relay {dump.get('relay_id', '?')} "
            f"({dump.get('downstream_connections', 0)} downstream conn(s), "
            f"upstream {'up' if dump.get('upstream_connected') else 'down'}) =="
        )
        print(header)
        print(render_snapshot(scalars_snapshot(scalars)))
        batches = counters.get("batches_in", 0)
        frames = counters.get("frames_out", 0)
        if frames:
            print(f"coalesce ratio: {batches / frames:.1f} batches/frame")
    return 0 if any_stats else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.mode == "sim":
            return _run_sim(args)
        if args.mode == "picl":
            return _run_picl(args)
        if args.mode == "shards":
            return _run_shards(args)
        if args.mode == "relay":
            return _run_relay(args)
        return _run_shm(args)
    except BrokenPipeError:
        # Output piped into a pager/head that quit early: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
