"""``brisk-trace-stats``: summarize a PICL trace from the shell.

Example::

    brisk-trace-stats /tmp/run.picl --rates --causal
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.causality import build_causal_graph, find_causal_violations
from repro.analysis.statistics import gap_statistics, node_activity, rate_series
from repro.analysis.trace import Trace
from repro.core.catalog import EventCatalog


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-trace-stats",
        description="Summarize a BRISK PICL trace (UTC timestamp mode).",
    )
    parser.add_argument("trace", help="PICL trace file")
    parser.add_argument("--rates", action="store_true", help="print a rate timeline")
    parser.add_argument(
        "--bin-ms", type=float, default=1000.0, help="rate bin width, ms"
    )
    parser.add_argument("--causal", action="store_true", help="causal structure report")
    parser.add_argument(
        "--events", action="store_true",
        help="per-event-type counts (named via in-band catalog definitions)",
    )
    parser.add_argument(
        "--timeline", action="store_true",
        help="render per-event ASCII timelines and a node heatmap",
    )
    parser.add_argument(
        "--anomalies", action="store_true",
        help="flag rate spikes/droughts and per-node silence gaps",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that quit early: not an error.
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.trace) as stream:
        trace = Trace.from_picl(stream)

    summary = trace.summary()
    print(f"records:       {summary.get('records', 0)}")
    if not trace:
        return 0
    print(f"nodes:         {summary['nodes']} {list(trace.node_ids)}")
    print(f"event types:   {summary['event_types']}")
    print(f"duration:      {summary['duration_s']:.3f} s")
    print(f"causal marks:  {summary['causal_records']}")
    print(f"inversions:    {trace.count_inversions()}")

    gaps = gap_statistics(trace)
    if gaps.count:
        print(
            f"gaps:          mean {gaps.mean:.1f} us, "
            f"min {gaps.minimum:.0f}, max {gaps.maximum:.0f}"
        )

    print("\nper-node activity:")
    for node_id, info in node_activity(trace).items():
        print(
            f"  node {node_id}: {info['count']:>8} records "
            f"({info['share'] * 100:5.1f}%), {info['rate_hz']:,.1f} ev/s"
        )

    if args.rates:
        series = rate_series(trace, round(args.bin_ms * 1000))
        top = series.peak_hz or 1.0
        print("\nrate timeline:")
        for start, rate in zip(series.bin_starts_us, series.rates_hz):
            bar = "#" * round(40 * rate / top)
            offset_s = (start - trace.start_us) / 1e6
            print(f"  t+{offset_s:7.1f}s {bar:<40} {rate:10.1f} ev/s")

    if args.events:
        catalog = EventCatalog.from_trace(trace)
        print("\nper-event-type counts:")
        for event_id in trace.event_ids:
            count = len(trace.events(event_id))
            print(f"  {catalog.name_of(event_id):<32} {count:>8}")

    if args.timeline:
        from repro.analysis.timeline import (
            render_event_timeline,
            render_rate_heatmap,
        )

        print("\nevent timelines:")
        print(render_event_timeline(trace))
        print("\nnode heatmap:")
        print(render_rate_heatmap(trace))

    if args.anomalies:
        from repro.analysis.anomaly import rate_anomalies, silence_gaps

        anomalies = rate_anomalies(trace)
        gaps = silence_gaps(trace, min_gap_us=max(1, trace.duration_us // 10))
        print("\nanomalies:")
        if not anomalies and not gaps:
            print("  none detected")
        for a in anomalies:
            offset_s = (a.start_us - trace.start_us) / 1e6
            print(
                f"  {a.kind:<8} t+{offset_s:8.1f}s  {a.rate_hz:10,.1f} ev/s  "
                f"(z={a.zscore:+.1f})"
            )
        for gap in gaps:
            print(
                f"  silence  node {gap.node_id}: "
                f"t+{(gap.start_us - trace.start_us) / 1e6:.1f}s "
                f"for {gap.duration_us / 1e6:.1f}s"
            )

    if args.causal:
        graph = build_causal_graph(trace)
        violations = find_causal_violations(trace)
        print("\ncausal structure:")
        print(f"  edges:                {graph.n_edges}")
        print(f"  unmatched reasons:    {len(graph.unmatched_reason_ids)}")
        print(f"  unmatched conseqs:    {len(graph.unmatched_conseq_ids)}")
        print(f"  ordering violations:  {len(violations)}")
        lags = graph.edge_lag_stats()
        if lags.count:
            print(
                f"  reason->conseq lag:   mean {lags.mean:.1f} us, "
                f"max {lags.maximum:.0f} us"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
