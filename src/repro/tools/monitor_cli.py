"""``brisk-monitor``: run a Python script under transparent monitoring.

The §2 promise made executable: the user names a script and what to
monitor; nothing in the script changes::

    brisk-monitor --include mysolver --picl run.picl  myscript.py arg1
    brisk-monitor --include mysolver --ism 127.0.0.1:7315  myscript.py

While the script runs, a :class:`~repro.instrument.tracer.FunctionTracer`
emits call/return events for every function whose module matches an
``--include`` prefix, into an in-process ring buffer.  Afterwards the
records are shipped — to a PICL trace file, or through a real external
sensor to a live ISM.
"""

from __future__ import annotations

import argparse
import runpy
import sys

from repro.clocksync.clocks import CorrectedClock
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer
from repro.core.sensor import Sensor
from repro.instrument.tracer import FunctionTracer
from repro.picl.format import PiclWriter
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import connect


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-monitor",
        description="Run a Python script under transparent BRISK monitoring.",
    )
    parser.add_argument("script", help="Python script to run")
    parser.add_argument(
        "script_args", nargs=argparse.REMAINDER, help="arguments for the script"
    )
    parser.add_argument(
        "--include", action="append", default=[],
        help="module prefix to trace (repeatable); default: the script itself",
    )
    parser.add_argument(
        "--max-depth", type=int, default=16, help="call-depth trace limit"
    )
    parser.add_argument("--node-id", type=int, default=1)
    parser.add_argument("--picl", help="write the trace to this PICL file")
    parser.add_argument(
        "--ism", metavar="HOST:PORT", help="ship the trace to a running ISM"
    )
    parser.add_argument(
        "--ring-mb", type=int, default=64, help="in-process ring capacity"
    )
    parser.add_argument(
        "--system-metrics", type=float, metavar="SECONDS", default=None,
        help="also sample system metrics (loadavg/memory/CPU/RSS) on this "
             "period while the script runs",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if not args.picl and not args.ism:
        args.picl = args.script + ".picl"

    ring = RingBuffer(
        bytearray(HEADER_SIZE + args.ring_mb * (1 << 20)),
        OverflowPolicy.DROP_NEW,
    )
    sensor = Sensor(ring, node_id=args.node_id)
    include = tuple(args.include) or ("__main__",)
    tracer = FunctionTracer(
        sensor, include=include, max_depth=args.max_depth
    )

    metrics_stop = None
    if args.system_metrics:
        import threading

        from repro.core.system_sensor import SystemMetricsSensor

        metrics = SystemMetricsSensor(sensor)
        metrics_stop = threading.Event()

        def metrics_loop() -> None:
            while not metrics_stop.wait(args.system_metrics):
                metrics.sample()

        metrics.sample()  # one sample at start, then the periodic loop
        threading.Thread(target=metrics_loop, daemon=True).start()

    saved_argv = sys.argv
    sys.argv = [args.script] + list(args.script_args)
    exit_code = 0
    try:
        with tracer:
            runpy.run_path(args.script, run_name="__main__")
    except SystemExit as exc:  # the script's own exit is not our failure
        exit_code = int(exc.code or 0)
    finally:
        sys.argv = saved_argv
        if metrics_stop is not None:
            metrics_stop.set()

    print(
        f"brisk-monitor: traced {tracer.calls_traced} calls "
        f"({tracer.calls_skipped} beyond depth {args.max_depth}, "
        f"{sensor.dropped} dropped by the ring)",
        file=sys.stderr,
    )

    if args.picl:
        with open(args.picl, "w") as stream:
            writer = PiclWriter(stream)
            writer.write_all(ring.drain())
        print(f"brisk-monitor: wrote {args.picl}", file=sys.stderr)
    elif args.ism:
        host, _, port_text = args.ism.rpartition(":")
        exs = ExternalSensor(
            exs_id=args.node_id,
            node_id=args.node_id,
            ring=ring,
            clock=CorrectedClock(now_micros),
            config=ExsConfig(batch_max_records=512),
        )
        conn = connect(host or "127.0.0.1", int(port_text))
        try:
            conn.send(exs.hello())
            shipped = 0
            for payload in exs.flush():
                conn.send_raw(payload)
                shipped += 1
            conn.send(protocol.Bye(reason="brisk-monitor done"))
            print(
                f"brisk-monitor: shipped {exs.stats.records_shipped} records "
                f"in {shipped} batches to {args.ism}",
                file=sys.stderr,
            )
        finally:
            conn.close()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
