"""``brisk-ism``: run an instrumentation system manager from the shell.

Example::

    brisk-ism --port 7315 --picl /tmp/run.picl --sync-period 5 \
              --duration 600

External sensors connect with :func:`repro.wire.tcp.connect` /
:func:`repro.runtime.exs_proc.exs_process_main`.
"""

from __future__ import annotations

import argparse
import sys

from repro.clocksync.brisk_sync import BriskSyncConfig
from repro.core.consumers import PiclFileConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sorting import SorterConfig
from repro.picl.format import TimestampMode
from repro.runtime.ism_proc import IsmServer
from repro.util.timebase import now_micros
from repro.wire.tcp import MessageListener


def build_parser() -> argparse.ArgumentParser:
    """Build the tool's argument parser."""
    parser = argparse.ArgumentParser(
        prog="brisk-ism",
        description="Run a BRISK instrumentation system manager.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    parser.add_argument("--picl", help="write the merged trace to this PICL file")
    parser.add_argument(
        "--relative-timestamps",
        action="store_true",
        help="PICL timestamps as seconds since ISM start instead of UTC us",
    )
    parser.add_argument(
        "--sync-period", type=float, default=5.0,
        help="clock-sync polling period in seconds (0 disables sync)",
    )
    parser.add_argument(
        "--time-frame-ms", type=float, default=10.0,
        help="initial on-line sorting time frame, milliseconds",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: run until interrupted)",
    )
    parser.add_argument(
        "--until-records", type=int, default=None,
        help="stop once this many records have been received",
    )
    parser.add_argument(
        "--shm-out", metavar="NAME",
        help="also write records to a shared-memory output segment "
             "(read it live with brisk-tail NAME)",
    )
    parser.add_argument(
        "--shm-out-mb", type=int, default=4,
        help="shared output segment capacity in MiB",
    )
    parser.add_argument(
        "--throttle-rate", type=float, default=None,
        help="enable auto-throttling toward this aggregate events/second",
    )
    parser.add_argument(
        "--stats-interval", type=float, default=None,
        help="print a self-observability metrics table every N seconds",
    )
    parser.add_argument(
        "--monitor-spec", metavar="PATH",
        help="attach a runtime monitor: JSON rule spec evaluated against "
             "the delivered stream (see docs/monitor-spec.md)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="sharded ISM worker count (1 = classic single process)",
    )
    parser.add_argument(
        "--partition-by", choices=("node", "exs"), default="node",
        help="sharded mode: route each EXS by its node id or its EXS id",
    )
    parser.add_argument(
        "--no-ordered-merge", action="store_true",
        help="sharded mode: skip the k-way ordered merge stage",
    )
    parser.add_argument(
        "--stats-json", metavar="PATH",
        help="write final per-shard stats as JSON (brisk-stats shards PATH)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    consumers = []
    shm_out = None
    if args.shm_out:
        from repro.runtime.shm_consumer import SharedMemoryConsumer

        shm_out = SharedMemoryConsumer(
            capacity_bytes=args.shm_out_mb << 20, name=args.shm_out
        )
        consumers.append(shm_out)
        print(f"brisk-ism shared output segment: {shm_out.name}", flush=True)
    if args.picl:
        mode = (
            TimestampMode.RELATIVE_SECONDS
            if args.relative_timestamps
            else TimestampMode.UTC_MICROS
        )
        stream = open(args.picl, "w")
        consumers.append(
            PiclFileConsumer(
                stream, mode, epoch_us=now_micros(), close_stream=True
            )
        )

    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    ism_config = IsmConfig(
        sorter=SorterConfig(initial_frame_us=round(args.time_frame_ms * 1000))
    )
    listener = MessageListener(args.host, args.port)
    host, port = listener.address
    print(f"brisk-ism listening on {host}:{port}", flush=True)

    if args.shards > 1:
        return _serve_sharded(args, ism_config, consumers, listener)

    manager = InstrumentationManager(ism_config, consumers)
    sync_config = (
        BriskSyncConfig() if args.sync_period > 0 else None
    )
    server = IsmServer(
        manager, listener, sync_config, sync_period_s=args.sync_period or 5.0,
        stats_interval_s=args.stats_interval,
    )
    if args.throttle_rate:
        from repro.runtime.throttle import AutoThrottle, ThrottleConfig

        server.throttle = AutoThrottle(
            server.set_filter,
            ThrottleConfig(target_rate_hz=args.throttle_rate),
        )
    if args.monitor_spec:
        _attach_monitor(server, args.monitor_spec)
    try:
        server.serve(duration_s=args.duration, until_records=args.until_records)
    except KeyboardInterrupt:
        pass
    finally:
        listener.close()
        manager.close()
    if args.stats_json:
        _write_stats_json(
            args.stats_json,
            {"dispatcher": dict(server.metrics_snapshot().scalars()), "shards": {}},
        )
    stats = manager.stats
    print(
        f"received {stats.records_received} records in "
        f"{stats.batches_received} batches from {len(manager.sources)} EXS; "
        f"delivered {stats.records_delivered}; "
        f"sync rounds {int(server.sync_rounds_completed)}",
        flush=True,
    )
    return 0


def _serve_sharded(args, ism_config, consumers, listener) -> int:
    """Run the dispatcher + shard-worker fleet behind the same flags."""
    from repro.runtime.ism_proc import ShardedIsmServer

    if args.throttle_rate:
        print(
            "--throttle-rate is not supported with --shards > 1",
            file=sys.stderr,
        )
        return 2
    if args.sync_period > 0:
        print(
            "note: clock sync is unavailable in sharded mode; "
            "sources ship uncorrected timestamps",
            flush=True,
        )
    server = ShardedIsmServer(
        consumers,
        listener,
        shards=args.shards,
        partition_by=args.partition_by,
        ism_config=ism_config,
        ordered_merge=not args.no_ordered_merge,
        stats_interval_s=args.stats_interval,
    )
    if args.monitor_spec:
        _attach_monitor(server, args.monitor_spec)
    try:
        server.serve(duration_s=args.duration, until_records=args.until_records)
    except KeyboardInterrupt:
        pass
    if args.stats_json:
        _write_stats_json(args.stats_json, server.stats_dump())
    snapshot = server.metrics_snapshot()
    server.close()
    listener.close()
    for consumer in consumers:
        consumer.close()
    print(
        f"received {int(snapshot.get('ism.records_received', 0) or 0)} records "
        f"across {args.shards} shards; "
        f"delivered {int(snapshot.get('dispatch.records_delivered', 0) or 0)}; "
        f"shard restarts {int(snapshot.get('dispatch.shard_restarts', 0) or 0)}",
        flush=True,
    )
    return 0


def _attach_monitor(server, path: str) -> None:
    """Load a JSON monitor spec and attach its engine to *server*."""
    from repro.monitor import MonitorSpec

    spec = MonitorSpec.load(path)
    server.attach_monitor(spec)
    print(
        f"brisk-ism monitor attached: {len(spec.rules)} rule(s) from {path}",
        flush=True,
    )


def _write_stats_json(path: str, dump: dict) -> None:
    import json

    with open(path, "w", encoding="ascii") as stream:
        json.dump(dump, stream, indent=2, sort_keys=True)
    print(f"brisk-ism stats written to {path}", flush=True)


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
