"""Discrete-event simulation engine.

A minimal, fast event calendar: time is integer microseconds (the same unit
as every BRISK timestamp), events are ``(time, sequence, callback)`` heap
entries, and all stochastic behaviour draws from one seeded
``random.Random`` so a simulation is a pure function of its seed.

The engine is intentionally synchronous-friendly: the clock-synchronization
master is a *blocking* poller in BRISK, so experiment drivers interleave
``run_until`` segments with synchronous probe exchanges (see
:class:`repro.sim.deployment.SimSyncSlave`), instead of contorting the
master into callback form.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable


class SimError(RuntimeError):
    """Misuse of the simulator (time moving backwards, etc.)."""


class _Event:
    """A scheduled callback; cancellation leaves a tombstone in the heap."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event calendar with integer-microsecond virtual time."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0
        self._seq = 0
        self._heap: list[_Event] = []
        #: The single source of randomness for the whole simulation.
        self.rng = random.Random(seed)
        #: Events executed so far (debugging/reporting aid).
        self.events_run = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    def time_fn(self) -> Callable[[], int]:
        """A zero-argument callable reading virtual time — what the clock
        models take as their ``true_time`` source."""
        return lambda: self._now

    # ------------------------------------------------------------------
    def schedule(self, delay_us: int, fn: Callable, *args: Any) -> _Event:
        """Schedule ``fn(*args)`` *delay_us* from now; returns a handle
        whose :meth:`~_Event.cancel` unschedules it."""
        if delay_us < 0:
            raise SimError(f"cannot schedule {delay_us}us in the past")
        return self.schedule_at(self._now + delay_us, fn, *args)

    def schedule_at(self, time_us: int, fn: Callable, *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at absolute virtual time *time_us*."""
        if time_us < self._now:
            raise SimError(
                f"cannot schedule at {time_us} before now ({self._now})"
            )
        self._seq += 1
        event = _Event(time_us, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_every(
        self,
        interval_us: int,
        fn: Callable,
        *args: Any,
        start_delay_us: int | None = None,
        jitter_us: int = 0,
    ) -> Callable[[], None]:
        """Schedule ``fn(*args)`` periodically; returns a stop function.

        ``jitter_us`` adds uniform ±jitter to each period, which breaks the
        lockstep artifacts that perfectly periodic pollers produce.
        """
        if interval_us <= 0:
            raise SimError("interval must be positive")
        stopped = False

        def _fire() -> None:
            if stopped:
                return
            fn(*args)
            delay = interval_us
            if jitter_us:
                delay += self.rng.randint(-jitter_us, jitter_us)
            self.schedule(max(1, delay), _fire)

        def _stop() -> None:
            nonlocal stopped
            stopped = True

        first = interval_us if start_delay_us is None else start_delay_us
        self.schedule(max(0, first), _fire)
        return _stop

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event; False when the calendar is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_run += 1
            event.fn(*event.args)
            return True
        return False

    def run_until(self, time_us: int) -> None:
        """Run every event up to and including *time_us*, then set the
        clock there (even if the calendar empties earlier).

        Re-entrant: an event callback may itself call ``run_until`` with a
        nearer horizon (the blocking clock-sync master does exactly that
        while waiting for a probe reply); the outer call simply resumes
        from the advanced clock.
        """
        if time_us < self._now:
            raise SimError(f"run_until({time_us}) is in the past")
        while self._heap and self._heap[0].time <= time_us:
            self.step()
        if time_us > self._now:
            self._now = time_us

    def run_for(self, duration_us: int) -> None:
        """Advance virtual time by *duration_us*, running due events."""
        self.run_until(self._now + duration_us)

    def run_all(self, limit: int = 10_000_000) -> None:
        """Run until the calendar empties (bounded by *limit* events)."""
        for _ in range(limit):
            if not self.step():
                return
        raise SimError(f"exceeded {limit} events; runaway schedule?")
