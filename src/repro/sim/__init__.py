"""Deterministic discrete-event simulation substrate.

The paper's distributed experiments ran on eight Sun Ultra-1 workstations
with free-running clocks on a 155 Mbps ATM LAN.  Neither non-synchronized
hardware clocks nor LAN disturbance patterns can be re-created faithfully
inside one host, so the distributed evaluations (E5 scaling, E6 clock-sync
quality, E7 on-line sorting, A3–A5) run on this substrate instead: a
seeded discrete-event simulator with

* drifting per-node clocks (:mod:`repro.clocksync.clocks`),
* latency/jitter/disturbance link models (:mod:`repro.sim.network`),
* workload generators (:mod:`repro.sim.workload`), and
* a full BRISK deployment — sensors, ring buffers, external sensors, ISM,
  clock-sync master — wired over simulated links
  (:mod:`repro.sim.deployment`).

Everything observable by the algorithms (clock reads, message arrival
times) flows through the same code paths as the real runtime; only the
transport and the passage of time are simulated.  All randomness comes from
one seeded generator, so every experiment is exactly reproducible.
"""

from repro.sim.engine import Simulator, SimError
from repro.sim.network import (
    LinkModel,
    DisturbanceModel,
    FaultInjector,
    FaultWindow,
)
from repro.sim.workload import (
    PeriodicWorkload,
    PoissonWorkload,
    BurstyWorkload,
    DelayedStream,
    make_delayed_streams,
)
from repro.sim.deployment import SimDeployment, SimNode, DeploymentConfig

__all__ = [
    "Simulator",
    "SimError",
    "LinkModel",
    "DisturbanceModel",
    "FaultInjector",
    "FaultWindow",
    "PeriodicWorkload",
    "PoissonWorkload",
    "BurstyWorkload",
    "DelayedStream",
    "make_delayed_streams",
    "SimDeployment",
    "SimNode",
    "DeploymentConfig",
]
