"""A complete simulated BRISK deployment.

Wires every real component — sensors, ring buffers, external sensors, the
ISM with its sorter/CRE pipeline, and the clock-synchronization master —
over simulated clocks and links.  Only time and transport are simulated;
the records flowing through are produced, XDR-encoded, shipped, decoded and
sorted by exactly the production code paths.

Time domains
------------
Three clocks coexist, as in the real system:

* **true time** — the simulator's virtual clock (no component reads it),
* **node-local time** — each node's :class:`DriftingClock`, read raw by
  internal sensors and through a :class:`CorrectedClock` by the EXS,
* **ISM time** — the manager's own (possibly drifting) clock, used as the
  sorter's ``now`` and as the sync algorithm's reference point.

Ground-truth metrics (true skew spread, end-to-end latency) are computed by
the deployment from the simulator's clock; no algorithm ever sees them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
from repro.clocksync.clocks import CorrectedClock, DriftingClock
from repro.clocksync.cristian import CristianMaster
from repro.clocksync.probes import ProbeSample
from repro.core.consumers import Consumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import FilterSpec
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer
from repro.core.sensor import Sensor
from repro.monitor.engine import MonitorEngine
from repro.monitor.spec import MonitorSpec
from repro.obs.collect import wire_exs, wire_manager, wire_monitor, wire_sensor
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.reporter import MetricsReporter
from repro.sim.engine import Simulator
from repro.sim.network import LinkModel, LinkModelConfig
from repro.util.timebase import micros_to_seconds
from repro.wire import protocol


@dataclass(frozen=True, slots=True)
class DeploymentConfig:
    """Deployment-wide knobs.

    The defaults mirror the paper's setup: EXS poll period bounded by the
    40 ms select wait, a 5 s clock-sync polling period, and ISM ticks fast
    enough that the sorter's release granularity is not the bottleneck.
    """

    exs_poll_interval_us: int = 40_000
    ism_tick_interval_us: int = 5_000
    sync_period_us: int = 5_000_000
    warmup_sync_rounds: int = 1
    exs: ExsConfig = ExsConfig()
    ism: IsmConfig = IsmConfig()
    sync: BriskSyncConfig = BriskSyncConfig()
    link: LinkModelConfig = LinkModelConfig()
    ring_bytes: int = 1 << 20
    track_latency: bool = False
    #: Per-round slew bound for the Cristian baseline (None = instant step).
    cristian_max_step_us: int | None = None
    #: Modelled ISM CPU cost per received record (µs of virtual time).
    #: Zero (default) = infinitely fast manager; positive values make the
    #: ISM a finite server so saturation/overload studies (the paper's E5
    #: bottleneck observation) can run in simulation.
    ism_service_time_us: float = 0.0
    #: Modelled sharded-ISM worker count.  Each shard is its own finite
    #: server: a batch queues behind the busy period of the shard its EXS
    #: partitions onto (``exs_id % ism_shards``), so the knob reproduces
    #: the sharded runtime's E5b scaling curve in virtual time.  1
    #: (default) is the single-process ISM.  Only meaningful together
    #: with ``ism_service_time_us``.
    ism_shards: int = 1
    #: Self-observability reporting period (virtual µs); 0 disables.
    #: When on, a registry is wired over the manager and every node, and
    #: node 1's sensor emits the snapshots as BRISK event records through
    #: the normal ring→EXS→ISM path (the IS monitoring itself).
    metrics_interval_us: int = 0
    #: Relay aggregation tier fan-in (0 = no relay tier, the default).
    #: When positive, each group of ``relay_fanin`` nodes ships through
    #: one first-level relay; ``relay_levels`` stacks further tiers on
    #: top (each ``relay_fanin`` relays feed one parent), and the last
    #: tier holds the only senders the ISM ever sees.
    relay_fanin: int = 0
    relay_levels: int = 1
    #: Relay coalesce window (virtual µs): batches buffered per relay are
    #: shipped upward as ONE frame every interval — the in-flight
    #: aggregation that turns per-node frame rates into per-relay rates.
    relay_flush_interval_us: int = 5_000
    #: Modelled relay CPU cost per batch forwarded (µs); each relay is
    #: its own finite server.  Zero = infinitely fast relays.
    relay_service_time_us: float = 0.0
    #: Serial dispatcher cost per frame arriving at the ISM (µs) — the
    #: fan-in ceiling the relay tier exists to break.  The cost scales
    #: with *frames*, not records, so coalescing many small batches into
    #: one frame buys the dispatcher back.  Zero (default) keeps the
    #: pre-relay behaviour byte-identical.
    ism_frame_overhead_us: float = 0.0
    #: Runtime monitor spec (None = no monitor).  When set, a
    #: :class:`~repro.monitor.engine.MonitorEngine` observes the delivered
    #: stream at the ISM and steers the deployment: filter pushdowns ride
    #: the simulated downlinks to each node's EXS, extra clock-sync
    #: rounds go through the normal master, and alert records are
    #: injected into the delivered stream like any other record.
    monitor: MonitorSpec | None = None
    #: Monitor evaluation period (virtual µs).
    monitor_interval_us: int = 100_000

    def __post_init__(self) -> None:
        if self.exs_poll_interval_us < 1 or self.ism_tick_interval_us < 1:
            raise ValueError("poll/tick intervals must be positive")
        if self.sync_period_us < 1:
            raise ValueError("sync_period_us must be positive")
        if self.ring_bytes < HEADER_SIZE + 64:
            raise ValueError("ring_bytes too small")
        if self.metrics_interval_us < 0:
            raise ValueError("metrics_interval_us must be non-negative")
        if self.ism_shards < 1:
            raise ValueError("ism_shards must be >= 1")
        if self.relay_fanin < 0:
            raise ValueError("relay_fanin must be non-negative")
        if self.relay_levels < 1:
            raise ValueError("relay_levels must be >= 1")
        if self.relay_flush_interval_us < 1:
            raise ValueError("relay_flush_interval_us must be positive")
        if self.monitor_interval_us < 1:
            raise ValueError("monitor_interval_us must be positive")


class SimNode:
    """One LIS: hardware clock, ring buffer, sensor, external sensor."""

    def __init__(
        self,
        deployment: "SimDeployment",
        node_id: int,
        offset_us: int,
        drift_ppm: float,
        link: LinkModelConfig | None = None,
    ) -> None:
        cfg = deployment.config
        sim = deployment.sim
        link_config = link if link is not None else cfg.link
        self.deployment = deployment
        self.node_id = node_id
        self.hw_clock = DriftingClock(sim.time_fn(), offset_us, drift_ppm)
        self.corrected = CorrectedClock(self.hw_clock)
        self.ring = RingBuffer(
            bytearray(cfg.ring_bytes), OverflowPolicy.DROP_NEW
        )
        # Internal sensors stamp raw local time; the EXS corrects later.
        self.sensor = Sensor(self.ring, node_id=node_id, clock=self.hw_clock.read)
        self.exs = ExternalSensor(
            exs_id=node_id,
            node_id=node_id,
            ring=self.ring,
            clock=self.corrected,
            config=cfg.exs,
        )
        self.uplink = LinkModel(link_config, sim.rng)
        self.downlink = LinkModel(link_config, sim.rng)
        self.workloads: list = []

    # ------------------------------------------------------------------
    def emit(self, seq: int, event_id: int = 1, n_fields: int = 6) -> None:
        """The looping application's event: *n_fields* integer fields, the
        first carrying the sequence number."""
        values = (seq % 2**31,) + tuple(range(1, n_fields))
        self.sensor.notice_ints(event_id, *values)
        if self.deployment.config.track_latency:
            self.deployment._emit_times[(self.node_id, event_id, values[0])] = (
                self.deployment.sim.now
            )

    def true_clock_error(self, true_now: int) -> float:
        """Ground truth: corrected-clock error vs true time (µs)."""
        return self.corrected.read_at(true_now) - true_now


class SimSyncSlave:
    """Clock-sync slave endpoint over simulated links.

    ``probe()`` performs a blocking request/reply: the reply's arrival is
    simulated by advancing the engine (other traffic keeps flowing), after
    which the master-side sample is computed exactly as the real master
    would from its own clock readings.
    """

    __slots__ = ("deployment", "node", "slave_id", "_probe_seq")

    def __init__(self, deployment: "SimDeployment", node: SimNode) -> None:
        self.deployment = deployment
        self.node = node
        self.slave_id = node.node_id
        self._probe_seq = 0

    def probe(self) -> ProbeSample:
        """One blocking Cristian probe over the simulated links."""
        sim = self.deployment.sim
        master = self.deployment.ism_clock
        send = sim.now
        t0 = master.read_at(send)
        d1 = self.node.downlink.sample_delay(send)
        # The slave answers from its corrected clock (§3.2: probes see the
        # same clock that stamps records).
        slave_time = self.node.corrected.read_at(send + d1)
        d2 = self.node.uplink.sample_delay(send + d1)
        arrival = send + d1 + d2
        sim.run_until(arrival)  # master blocks; the rest of the world runs
        t1 = master.read_at(arrival)
        rtt = t1 - t0
        skew = slave_time + rtt / 2 - t1
        self._probe_seq += 1
        return ProbeSample(skew_us=skew, rtt_us=rtt)

    def adjust(self, correction_us: int) -> None:
        """Deliver an advance-only correction after the link delay."""
        sim = self.deployment.sim
        delay = self.node.downlink.sample_delay(sim.now)
        sim.schedule(
            delay,
            self.node.exs.on_adjust,
            protocol.Adjust(correction=correction_us),
        )


class _SignedSimSyncSlave(SimSyncSlave):
    """Slave variant for the Cristian baseline: signed corrections applied
    with :meth:`CorrectedClock.step` (clocks may move backwards)."""

    def adjust(self, correction_us: int) -> None:
        """Deliver a signed Cristian correction after the link delay."""
        sim = self.deployment.sim
        delay = self.node.downlink.sample_delay(sim.now)
        sim.schedule(delay, self.node.corrected.step, correction_us)


@dataclass
class DeploymentMetrics:
    """Ground-truth observations collected while the deployment runs."""

    #: (true_time_us, max-min corrected clock error across nodes).
    skew_spread_samples: list[tuple[int, float]] = field(default_factory=list)
    #: End-to-end event latency samples (µs), when ``track_latency``.
    latency_us: list[int] = field(default_factory=list)
    #: Records delivered to consumers.
    delivered: int = 0
    sync_rounds: int = 0
    extra_sync_rounds: int = 0
    #: Virtual CPU time the modelled ISM spent serving batches (µs).
    ism_busy_us: int = 0
    #: Batches a fault injector swallowed on the simulated wire.
    batches_dropped: int = 0
    #: Batch arrivals summed across every relay level.
    relay_batches_in: int = 0
    #: Coalesced frames the relay tier shipped upward.
    relay_frames_out: int = 0
    #: Frames that reached the ISM dispatcher (counted only while the
    #: per-frame overhead model is on).
    ism_frames_in: int = 0
    #: Serial dispatcher time consumed by per-frame overhead (µs).
    dispatcher_busy_us: int = 0


class SimRelay:
    """One modelled relay node: batches in, coalesced frames out.

    Holds the coalesce buffer and the finite-server busy horizon; the
    deployment owns routing, flushing, and costing (see
    :meth:`SimDeployment._flush_relay`).
    """

    __slots__ = ("index", "level", "buffer", "uplink", "busy_until")

    def __init__(self, index: int, level: int, uplink: LinkModel) -> None:
        self.index = index
        self.level = level
        self.buffer: list[bytes] = []
        self.uplink = uplink
        self.busy_until = 0


class SimDeployment:
    """N LIS nodes + one ISM + clock sync, running on a simulator."""

    def __init__(
        self,
        sim: Simulator,
        config: DeploymentConfig = DeploymentConfig(),
        consumers: list[Consumer] | None = None,
        ism_clock: DriftingClock | None = None,
        sync_algorithm: str = "brisk",
        chaos: "FaultInjector | None" = None,
    ) -> None:
        if sync_algorithm not in ("brisk", "cristian", "none"):
            raise ValueError(f"unknown sync algorithm {sync_algorithm!r}")
        self.sim = sim
        self.config = config
        self.nodes: list[SimNode] = []
        self.ism_clock = ism_clock or DriftingClock(sim.time_fn())
        self.metrics = DeploymentMetrics()
        self.sync_algorithm = sync_algorithm
        self.sync_master: BriskSyncMaster | CristianMaster | None = None
        self._emit_times: dict[tuple[int, int, int], int] = {}
        self._started = False
        self._stops: list[Callable[[], None]] = []
        self._ism_busy_until = [0] * config.ism_shards
        self._dispatcher_busy_until = 0
        #: Relay tiers, built in :meth:`start` (level 0 fronts the nodes,
        #: the last level fronts the ISM).  Empty = flat topology.
        self.relays: list[list[SimRelay]] = []
        self._dead_nodes: set[int] = set()
        self._node_poll_stops: dict[int, Callable[[], None]] = {}
        #: Optional :class:`~repro.sim.network.FaultInjector` applied to
        #: every shipped batch; assign before (or during) the run.
        self.chaos = chaos
        #: Self-observability registry (wired in :meth:`start` when the
        #: config asks for it, or lazily by :meth:`metrics_snapshot`).
        self.obs: MetricsRegistry | None = None
        #: The dogfooding reporter, when metrics_interval_us > 0.
        self.reporter: MetricsReporter | None = None
        #: The runtime monitor, when the config carries a spec.
        self.monitor: MonitorEngine | None = None
        #: Monotone epoch stamped on monitor-pushed SetFilters so a spec
        #: reordered on the simulated downlink can never clobber a newer
        #: one (same discipline as the socket runtime).
        self._filter_epoch = 0

        sinks: list[Consumer] = list(consumers or [])
        self.ism = InstrumentationManager(config.ism, sinks)
        if config.track_latency:
            from repro.core.consumers import CallbackConsumer

            self.ism.consumers.append(CallbackConsumer(self._on_delivery))

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_node(
        self,
        offset_us: int = 0,
        drift_ppm: float = 0.0,
        link: LinkModelConfig | None = None,
    ) -> SimNode:
        """Create one LIS node with the given clock imperfections.

        *link* overrides the deployment-wide link model for this node —
        heterogeneous topologies (one distant/congested node among local
        ones) are a routine monitoring scenario.
        """
        if self._started:
            raise RuntimeError("cannot add nodes after start()")
        node = SimNode(self, len(self.nodes) + 1, offset_us, drift_ppm, link)
        self.nodes.append(node)
        return node

    def add_nodes(
        self,
        count: int,
        max_offset_us: int = 50_000,
        max_drift_ppm: float = 50.0,
    ) -> list[SimNode]:
        """Create *count* nodes with random clock offsets/drifts."""
        rng = self.sim.rng
        return [
            self.add_node(
                offset_us=rng.randint(-max_offset_us, max_offset_us),
                drift_ppm=rng.uniform(-max_drift_ppm, max_drift_ppm),
            )
            for _ in range(count)
        ]

    def attach_workload(self, node: SimNode, workload, event_id: int = 1) -> None:
        """Drive *node*'s sensor with *workload* once the deployment runs."""
        if self._started:
            # Workloads are started inside start(); attaching afterwards
            # would register one that silently never runs.
            raise RuntimeError("cannot attach workloads after start()")
        node.workloads.append((workload, event_id))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register sources, wire sync, and schedule all periodic loops."""
        if self._started:
            raise RuntimeError("already started")
        self._started = True
        cfg = self.config

        for node in self.nodes:
            self.ism.register_source(node.exs.exs_id, node.node_id)
            stop_poll = self.sim.schedule_every(
                cfg.exs_poll_interval_us,
                self._poll_node,
                node,
                jitter_us=max(1, cfg.exs_poll_interval_us // 20),
            )
            self._stops.append(stop_poll)
            self._node_poll_stops[node.node_id] = stop_poll
            for workload, event_id in node.workloads:
                workload.start(
                    self.sim,
                    lambda seq, n=node, e=event_id: n.emit(seq, e),
                )

        if cfg.relay_fanin > 0 and self.nodes:
            count = len(self.nodes)
            for level in range(cfg.relay_levels):
                count = max(1, -(-count // cfg.relay_fanin))  # ceil
                tier = [
                    SimRelay(i, level, LinkModel(cfg.link, self.sim.rng))
                    for i in range(count)
                ]
                self.relays.append(tier)
                for relay in tier:
                    self._stops.append(
                        self.sim.schedule_every(
                            cfg.relay_flush_interval_us,
                            self._flush_relay,
                            relay,
                            jitter_us=max(1, cfg.relay_flush_interval_us // 20),
                        )
                    )

        if self.sync_algorithm != "none" and self.nodes:
            if self.sync_algorithm == "brisk":
                slaves = [SimSyncSlave(self, n) for n in self.nodes]
                self.sync_master = BriskSyncMaster(slaves, cfg.sync)
            else:
                slaves = [_SignedSimSyncSlave(self, n) for n in self.nodes]
                self.sync_master = CristianMaster(
                    slaves,
                    probes_per_round=cfg.sync.probes_per_round,
                    max_step_us=cfg.cristian_max_step_us,
                )
            self.ism.sync_master = self.sync_master
            for _ in range(cfg.warmup_sync_rounds):
                self.run_sync_round()
            self._stops.append(
                self.sim.schedule_every(cfg.sync_period_us, self.run_sync_round)
            )

        self._stops.append(
            self.sim.schedule_every(cfg.ism_tick_interval_us, self._ism_tick)
        )

        if cfg.monitor is not None:
            self.monitor = MonitorEngine(cfg.monitor, actuator=self)
            self.ism.consumers.append(self.monitor)
            self._stops.append(
                self.sim.schedule_every(
                    cfg.monitor_interval_us, self._monitor_tick
                )
            )

        if cfg.metrics_interval_us > 0 and self.nodes:
            self._wire_observability()
            self.reporter = MetricsReporter(
                self.obs,
                self.nodes[0].sensor,
                interval_us=cfg.metrics_interval_us,
            )
            self._stops.append(
                self.sim.schedule_every(
                    cfg.metrics_interval_us, self._emit_metrics
                )
            )

    def run(self, duration_s: float) -> None:
        """Start (if needed) and run for *duration_s* simulated seconds."""
        if not self._started:
            self.start()
        self.sim.run_for(round(duration_s * 1_000_000))

    def stop(self) -> None:
        """Stop workloads, cancel periodic loops, and flush the pipeline."""
        for stop in self._stops:
            stop()
        self._stops.clear()
        for node in self.nodes:
            for workload, _ in node.workloads:
                workload.stop()
            for encoded in node.exs.flush():
                self._ship(node, encoded)
        # Let in-flight batches land — sized by the SLOWEST node's link,
        # with generous headroom for jitter and serialization — then
        # flush the ISM.
        worst_delay = max(
            (n.uplink.config.base_delay_us + 10 * n.uplink.config.jitter_mean_us
             for n in self.nodes),
            default=self.config.link.base_delay_us,
        )
        self.sim.run_for(2 * (worst_delay + 10_000) + 50_000)
        # Cascade the relay tiers dry: the periodic flush loops are
        # cancelled, so each level is flushed by hand and its frames
        # given time to land on the next one before that level flushes.
        for tier in self.relays:
            for relay in tier:
                self._flush_relay(relay)
            self.sim.run_for(
                worst_delay + self.config.relay_flush_interval_us + 20_000
            )
        self.ism.flush(self.ism_clock.read())

    # ------------------------------------------------------------------
    # periodic behaviour
    # ------------------------------------------------------------------
    def _poll_node(self, node: SimNode) -> None:
        for encoded in node.exs.poll(node.corrected.read()):
            self._ship(node, encoded)

    def _ship(self, node: SimNode, encoded: bytes) -> None:
        extra = 0
        if self.chaos is not None:
            verdict = self.chaos.apply(self.sim.now)
            if verdict is None:
                # Dropped on the (simulated) wire.  The simulator's
                # transport has no retransmission, so this surfaces at the
                # ISM as a sequence gap — the detection side of the
                # delivery guarantees the socket runtime recovers from.
                self.metrics.batches_dropped += 1
                return
            extra = verdict
        delay = node.uplink.sample_delay(self.sim.now, nbytes=len(encoded))
        if self.relays:
            first = self.relays[0]
            relay = first[(node.node_id - 1) // self.config.relay_fanin % len(first)]
            self.sim.schedule(delay + extra, self._relay_receive, relay, [encoded])
        elif self.config.ism_frame_overhead_us > 0:
            self.sim.schedule(delay + extra, self._frame_arrival, [encoded])
        else:
            self.sim.schedule(delay + extra, self._receive, encoded)

    # -- the relay tier -------------------------------------------------
    def _relay_receive(self, relay: SimRelay, batches: list[bytes]) -> None:
        self.metrics.relay_batches_in += len(batches)
        relay.buffer.extend(batches)

    def _flush_relay(self, relay: SimRelay) -> None:
        """Ship the relay's coalesce buffer upward as one frame."""
        if not relay.buffer:
            return
        frame, relay.buffer = relay.buffer, []
        self.metrics.relay_frames_out += 1
        service = self.config.relay_service_time_us
        start = max(self.sim.now, relay.busy_until)
        done = start + (max(1, round(service * len(frame))) if service > 0 else 0)
        relay.busy_until = done
        delay = (done - self.sim.now) + relay.uplink.sample_delay(
            done, nbytes=sum(len(p) for p in frame)
        )
        if relay.level + 1 < len(self.relays):
            tier = self.relays[relay.level + 1]
            parent = tier[relay.index // self.config.relay_fanin % len(tier)]
            self.sim.schedule(delay, self._relay_receive, parent, frame)
        else:
            self.sim.schedule(delay, self._frame_arrival, frame)

    def _frame_arrival(self, frame: list[bytes]) -> None:
        """One frame hits the ISM dispatcher: pay the serial per-frame
        cost once for the whole (possibly coalesced) group, then dispatch
        every batch inside through the normal receive path."""
        self.metrics.ism_frames_in += 1
        overhead = self.config.ism_frame_overhead_us
        if overhead <= 0:
            for encoded in frame:
                self._receive(encoded)
            return
        start = max(self.sim.now, self._dispatcher_busy_until)
        done = start + max(1, round(overhead))
        self._dispatcher_busy_until = done
        self.metrics.dispatcher_busy_us += done - start
        self.sim.schedule_at(done, self._dispatch_frame, frame)

    def _dispatch_frame(self, frame: list[bytes]) -> None:
        for encoded in frame:
            self._receive(encoded)

    @property
    def ism_side_connections(self) -> int:
        """Senders the ISM fronts directly: the last relay tier's size,
        or every node in a flat topology."""
        return len(self.relays[-1]) if self.relays else len(self.nodes)

    def _receive(self, encoded: bytes) -> None:
        msg = protocol.decode_message(encoded)
        service = self.config.ism_service_time_us
        if service <= 0 or not isinstance(msg, protocol.Batch):
            self.ism.on_message(msg, self.ism_clock.read())
            return
        # Finite-server model: a batch occupies its shard's CPU for
        # service_time × records; arrivals queue behind that shard's busy
        # period.  With ism_shards=1 this is the single-process ISM.
        shard = msg.exs_id % self.config.ism_shards
        start = max(self.sim.now, self._ism_busy_until[shard])
        done = start + max(1, round(service * len(msg.records)))
        self._ism_busy_until[shard] = done
        self.metrics.ism_busy_us += done - start
        self.sim.schedule_at(done, self._deliver_batch, msg)

    def _deliver_batch(self, msg: protocol.Batch) -> None:
        self.ism.on_message(msg, self.ism_clock.read())

    def _ism_tick(self) -> None:
        self.metrics.delivered += self.ism.tick(self.ism_clock.read())
        master = self.sync_master
        if master is not None and isinstance(master, BriskSyncMaster):
            if master.consume_extra_round_request():
                self.metrics.extra_sync_rounds += 1
                self.run_sync_round()

    def run_sync_round(self) -> None:
        """Execute one synchronous clock-sync round (blocking the master)."""
        if self.sync_master is None:
            return
        self.sync_master.run_round()
        self.metrics.sync_rounds += 1

    # ------------------------------------------------------------------
    # runtime steering (the monitor engine's Actuator)
    # ------------------------------------------------------------------
    def _monitor_tick(self) -> None:
        self.monitor.tick(self.ism_clock.read())

    def push_filter(self, exs_id: int, spec: FilterSpec) -> bool:
        """Push *spec* to one EXS over its simulated downlink.

        Mirrors :meth:`SimSyncSlave.adjust`: the control message lands
        after the link delay, stamped with a fresh epoch so reordered
        pushes cannot regress the installed spec.  Returns ``False`` for
        unknown or dead nodes — the engine counts that as a deferred
        push, exactly as the socket runtime does for a disconnected EXS.
        """
        node = next(
            (n for n in self.alive_nodes if n.exs.exs_id == exs_id), None
        )
        if node is None:
            return False
        self._filter_epoch += 1
        msg = protocol.SetFilter.from_spec(
            spec, epoch=self._filter_epoch, target_exs_id=exs_id
        )
        delay = node.downlink.sample_delay(self.sim.now)
        self.sim.schedule(delay, node.exs.on_set_filter, msg)
        return True

    def request_sync_round(self) -> None:
        """Ask for one extra clock-sync round at the next ISM tick."""
        master = self.sync_master
        if isinstance(master, BriskSyncMaster):
            master.request_extra_round()

    def emit_alert(self, record: EventRecord) -> None:
        """Inject a monitor alert straight into the delivered stream."""
        self.ism.inject(record)

    # ------------------------------------------------------------------
    # self-observability
    # ------------------------------------------------------------------
    def _wire_observability(self) -> None:
        if self.obs is not None:
            return
        # Virtual-time clock: registry uptime (and intrusion fractions)
        # must be a function of simulated time, not of how fast the host
        # happens to run the simulation.
        registry = MetricsRegistry(
            time_fn=lambda: micros_to_seconds(self.sim.now)
        )
        wire_manager(registry, self.ism)
        if self.monitor is not None:
            wire_monitor(registry, self.monitor)
        for node in self.nodes:
            prefix = f"node{node.node_id}"
            wire_sensor(registry, node.sensor, prefix=f"{prefix}.sensor")
            wire_exs(registry, node.exs, prefix=f"{prefix}.exs")
        self.obs = registry

    def _emit_metrics(self) -> None:
        self.reporter.emit_now(self.sim.now)

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Current self-observability snapshot (wired lazily, so any
        deployment — metrics interval configured or not — can be
        inspected mid-run)."""
        self._wire_observability()
        return self.obs.snapshot()

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    @property
    def alive_nodes(self) -> list[SimNode]:
        """Nodes not killed by :meth:`kill_node`."""
        return [n for n in self.nodes if n.node_id not in self._dead_nodes]

    def kill_node(self, node: SimNode) -> None:
        """Crash one LIS: workloads stop, its EXS never polls again.

        Batches already in flight still arrive (the network does not know
        the sender died), causal peers of its events eventually time out
        in the matcher, and the clock-sync master stops polling it — the
        failure modes a monitoring system must absorb without wedging.
        """
        if node.node_id in self._dead_nodes:
            return
        self._dead_nodes.add(node.node_id)
        for workload, _ in node.workloads:
            workload.stop()
        stop_poll = self._node_poll_stops.pop(node.node_id, None)
        if stop_poll is not None:
            stop_poll()
        self._rebuild_sync_master_alive()

    def _rebuild_sync_master_alive(self) -> None:
        if self.sync_master is None:
            return
        alive = self.alive_nodes
        if not alive:
            self.sync_master = None
            self.ism.sync_master = None
            return
        if self.sync_algorithm == "brisk":
            slaves = [SimSyncSlave(self, n) for n in alive]
            self.sync_master = BriskSyncMaster(slaves, self.config.sync)
        else:
            slaves = [_SignedSimSyncSlave(self, n) for n in alive]
            self.sync_master = CristianMaster(
                slaves,
                probes_per_round=self.config.sync.probes_per_round,
                max_step_us=self.config.cristian_max_step_us,
            )
        self.ism.sync_master = self.sync_master

    # ------------------------------------------------------------------
    # ground-truth metrics
    # ------------------------------------------------------------------
    def true_skew_spread(self) -> float:
        """Max−min corrected-clock error across live nodes, right now (µs)."""
        now = self.sim.now
        errors = [node.true_clock_error(now) for node in self.alive_nodes]
        return max(errors) - min(errors) if errors else 0.0

    def sample_skew_spread(self) -> None:
        """Record the current spread into the metrics trace."""
        self.metrics.skew_spread_samples.append(
            (self.sim.now, self.true_skew_spread())
        )

    def monitor_skew(self, interval_us: int = 1_000_000) -> Callable[[], None]:
        """Sample the skew spread periodically; returns a stop function."""
        return self.sim.schedule_every(interval_us, self.sample_skew_spread)

    def _on_delivery(self, record: EventRecord) -> None:
        if not record.values or record.field_types[0] is not FieldType.X_INT:
            return
        key = (record.node_id, record.event_id, record.values[0])
        emitted = self._emit_times.pop(key, None)
        if emitted is not None:
            self.metrics.latency_us.append(self.sim.now - emitted)
