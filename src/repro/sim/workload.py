"""Workload generators.

Two families:

* **Sensor drivers** (:class:`PeriodicWorkload`, :class:`PoissonWorkload`,
  :class:`BurstyWorkload`) schedule instrumentation events on a simulated
  node — the paper's "simple looping applications using sensors having six
  fields of type integer", plus arrival patterns the looping app cannot
  produce.
* **Delayed streams** (:class:`DelayedStream`,
  :func:`make_delayed_streams`) reproduce the evaluation's on-line-sorting
  input: "streams of artificially delayed event records" — per-source
  timestamp-ordered records whose *arrival* at the ISM is perturbed by
  configurable delay, jitter, and straggler spikes.  Benchmark E7 sweeps
  these against the sorter's four knobs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.core.records import EventRecord, FieldType
from repro.sim.engine import Simulator

#: An emit hook: the deployment maps it to ``sensor.notice_ints(...)``.
EmitFn = Callable[[int], None]


class _BaseWorkload:
    """Shared start/stop bookkeeping for sensor drivers."""

    def __init__(self, count: int | None = None) -> None:
        self.count = count
        self.emitted = 0
        self._stopped = False

    def stop(self) -> None:
        """Stop generating further events."""
        self._stopped = True

    def _exhausted(self) -> bool:
        return self._stopped or (self.count is not None and self.emitted >= self.count)


class PeriodicWorkload(_BaseWorkload):
    """Fixed-rate event source: one event every ``1/rate_hz`` seconds."""

    def __init__(self, rate_hz: float, count: int | None = None) -> None:
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        super().__init__(count)
        self.interval_us = max(1, round(1_000_000 / rate_hz))

    def start(self, sim: Simulator, emit: EmitFn) -> None:
        """Begin scheduling events on *sim*."""

        def _fire() -> None:
            if self._exhausted():
                return
            emit(self.emitted)
            self.emitted += 1
            sim.schedule(self.interval_us, _fire)

        sim.schedule(self.interval_us, _fire)


class PoissonWorkload(_BaseWorkload):
    """Poisson event source with exponential inter-arrival times."""

    def __init__(self, rate_hz: float, count: int | None = None) -> None:
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        super().__init__(count)
        self.mean_interval_us = 1_000_000 / rate_hz

    def start(self, sim: Simulator, emit: EmitFn) -> None:
        """Begin scheduling events on *sim*."""

        def _fire() -> None:
            if self._exhausted():
                return
            emit(self.emitted)
            self.emitted += 1
            sim.schedule(self._next_gap(sim.rng), _fire)

        sim.schedule(self._next_gap(sim.rng), _fire)

    def _next_gap(self, rng: random.Random) -> int:
        return max(1, round(rng.expovariate(1.0 / self.mean_interval_us)))


class BurstyWorkload(_BaseWorkload):
    """On/off source: bursts at ``burst_rate_hz`` separated by quiet gaps.

    Stress input for the EXS batching knobs (A6) — a burst fills batches
    instantly while the quiet phase exercises the latency-control flush.
    """

    def __init__(
        self,
        burst_rate_hz: float,
        burst_len: int,
        gap_us: int,
        count: int | None = None,
    ) -> None:
        if burst_rate_hz <= 0 or burst_len < 1 or gap_us < 0:
            raise ValueError("invalid bursty workload parameters")
        super().__init__(count)
        self.intra_us = max(1, round(1_000_000 / burst_rate_hz))
        self.burst_len = burst_len
        self.gap_us = gap_us

    def start(self, sim: Simulator, emit: EmitFn) -> None:
        """Begin scheduling events on *sim*."""
        position = 0

        def _fire() -> None:
            nonlocal position
            if self._exhausted():
                return
            emit(self.emitted)
            self.emitted += 1
            position += 1
            if position < self.burst_len:
                sim.schedule(self.intra_us, _fire)
            else:
                position = 0
                sim.schedule(self.gap_us + self.intra_us, _fire)

        sim.schedule(self.intra_us, _fire)


# ----------------------------------------------------------------------
# delayed streams (E7 input)
# ----------------------------------------------------------------------

@dataclass
class DelayedStream:
    """One source's records with their perturbed ISM arrival times.

    ``items`` holds ``(record, arrival_us)`` with record timestamps
    strictly increasing (the per-source in-order guarantee) while arrivals
    carry the artificial delays.
    """

    source_id: int
    items: list[tuple[EventRecord, int]] = field(default_factory=list)

    @property
    def max_lateness_us(self) -> int:
        """Largest ``arrival − timestamp`` in the stream (the "latest late
        event's lateness" the paper keys its recommended strategy on)."""
        return max((arr - rec.timestamp for rec, arr in self.items), default=0)


def make_delayed_streams(
    rng: random.Random,
    n_sources: int = 4,
    rate_hz: float = 1_000.0,
    duration_s: float = 2.0,
    base_delay_us: int = 500,
    jitter_mean_us: int = 200,
    straggler_prob: float = 0.01,
    straggler_extra_us: int = 20_000,
    n_fields: int = 6,
) -> list[DelayedStream]:
    """Generate artificially delayed per-source event streams.

    Per source, events are Poisson at *rate_hz* over *duration_s*; each
    arrival is ``ts + base + Exp(jitter)`` with probability
    *straggler_prob* of an extra ``Exp(straggler_extra)`` spike.  The knobs
    map onto the paper's qualitative parameters: delay magnitude, delay
    variance, straggler frequency, straggler magnitude.
    """
    if n_sources < 1:
        raise ValueError("need at least one source")
    horizon_us = round(duration_s * 1_000_000)
    mean_gap = 1_000_000 / rate_hz
    streams: list[DelayedStream] = []
    for source in range(n_sources):
        stream = DelayedStream(source_id=source)
        ts = 0
        seq = 0
        last_arrival = 0
        while True:
            ts += max(1, round(rng.expovariate(1.0 / mean_gap)))
            if ts >= horizon_us:
                break
            delay = base_delay_us
            if jitter_mean_us:
                delay += round(rng.expovariate(1.0 / jitter_mean_us))
            if straggler_prob and rng.random() < straggler_prob:
                delay += round(rng.expovariate(1.0 / straggler_extra_us))
            record = EventRecord(
                event_id=source,
                timestamp=ts,
                field_types=(FieldType.X_INT,) * n_fields,
                values=tuple(range(seq, seq + n_fields)),
                node_id=source,
            )
            # A stream socket preserves per-source FIFO: a delayed record
            # holds everything behind it back (head-of-line blocking), it
            # is never overtaken.
            last_arrival = max(last_arrival, ts + delay)
            stream.items.append((record, last_arrival))
            seq += 1
        streams.append(stream)
    return streams


class TraceWorkload(_BaseWorkload):
    """Replay a recorded trace's arrival pattern as a workload.

    Takes the inter-event gaps (and optionally event ids) from a recorded
    trace — typically one node's slice of a production capture — and
    re-drives a sensor with the same temporal pattern.  This is how
    tuning studies (batching, sorting, throttling) run against *your*
    workload instead of a synthetic one.
    """

    def __init__(self, records, count: int | None = None, replay_event_ids: bool = True):
        super().__init__(count)
        items = sorted(records, key=lambda r: r.timestamp)
        if not items:
            raise ValueError("cannot replay an empty trace")
        base = items[0].timestamp
        #: (offset_us, event_id) schedule relative to the first record.
        self.schedule_ = [
            (r.timestamp - base, r.event_id if replay_event_ids else 1)
            for r in items
        ]

    def start(self, sim: Simulator, emit: EmitFn) -> None:
        """Schedule the replayed events on *sim* (offsets from now)."""

        def fire(seq: int, event_id: int) -> None:
            if self._exhausted():
                return
            emit(seq)
            self.emitted += 1

        for seq, (offset, event_id) in enumerate(self.schedule_):
            if self.count is not None and seq >= self.count:
                break
            sim.schedule(offset, fire, seq, event_id)


def merge_by_arrival(
    streams: list[DelayedStream],
) -> list[tuple[int, EventRecord, int]]:
    """Flatten streams into one arrival-ordered list of
    ``(source_id, record, arrival_us)`` — the order the ISM would see."""
    merged = [
        (stream.source_id, record, arrival)
        for stream in streams
        for record, arrival in stream.items
    ]
    merged.sort(key=lambda item: (item[2], item[0], item[1].timestamp))
    return merged
