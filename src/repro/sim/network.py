"""Network link models.

What the clock-synchronization experiments need from the network is its
*delay behaviour*: a base propagation+stack latency, random jitter, and
occasional **disturbances** — the paper observed that the EXS clocks stayed
within tens of microseconds "under light working conditions, and most of
the time under 200 microseconds at times when disturbances of various
sources in the LAN interfered".  :class:`DisturbanceModel` reproduces those
interference episodes as randomly recurring bursts during which delays are
inflated and asymmetric.

Delays are sampled, never traced: a link is a distribution plus burst
state, parameterized to a mid-90s switched LAN by default (~200 µs one-way
base for small packets on 155 Mbps ATM with protocol stack overhead).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DisturbanceModel:
    """Recurring LAN interference bursts.

    While a burst is active, every sample gains ``extra_delay_us`` plus an
    exponential tail of mean ``extra_jitter_us`` — heavy, asymmetric noise
    of the kind that defeats naive skew estimation.

    Attributes
    ----------
    mean_interval_us:
        Mean time between burst starts (exponential).
    mean_duration_us:
        Mean burst length (exponential).
    extra_delay_us / extra_jitter_us:
        Added latency during a burst: fixed part + exponential tail.
    """

    mean_interval_us: int = 60_000_000
    mean_duration_us: int = 2_000_000
    extra_delay_us: int = 300
    extra_jitter_us: int = 500

    def __post_init__(self) -> None:
        if self.mean_interval_us <= 0 or self.mean_duration_us <= 0:
            raise ValueError("disturbance intervals must be positive")
        if self.extra_delay_us < 0 or self.extra_jitter_us < 0:
            raise ValueError("disturbance delays must be non-negative")


@dataclass(frozen=True, slots=True)
class LinkModelConfig:
    """Static description of a link's delay distribution.

    ``bandwidth_bytes_per_us`` adds serialization time for sized messages:
    155 Mbps ATM moves ≈19 payload bytes per microsecond.
    """

    base_delay_us: int = 200
    jitter_mean_us: int = 50
    bandwidth_bytes_per_us: float = 19.0
    disturbance: DisturbanceModel | None = None

    def __post_init__(self) -> None:
        if self.base_delay_us < 1:
            raise ValueError("base_delay_us must be >= 1")
        if self.jitter_mean_us < 0:
            raise ValueError("jitter_mean_us must be >= 0")
        if self.bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth must be positive")


class LinkModel:
    """Stateful delay sampler for one unidirectional link.

    ``sample_delay(now)`` returns a one-way delay in microseconds; burst
    state is advanced lazily from *now*, so the model needs no scheduler
    hooks and stays correct as long as ``now`` is non-decreasing (the
    simulator guarantees that).
    """

    def __init__(
        self,
        config: LinkModelConfig = LinkModelConfig(),
        rng: random.Random | None = None,
    ) -> None:
        self.config = config
        self.rng = rng if rng is not None else random.Random(0)
        self._burst_start: int | None = None
        self._burst_end: int = -1
        self._next_burst: int | None = None
        #: Samples drawn (reporting aid).
        self.samples = 0
        #: Samples drawn while a disturbance burst was active.
        self.disturbed_samples = 0

    # ------------------------------------------------------------------
    def in_burst(self, now: int) -> bool:
        """Whether a disturbance burst covers *now* (advances burst state)."""
        dist = self.config.disturbance
        if dist is None:
            return False
        if self._next_burst is None:
            self._next_burst = now + round(
                self.rng.expovariate(1.0 / dist.mean_interval_us)
            )
        while now >= self._next_burst:
            self._burst_start = self._next_burst
            duration = max(
                1, round(self.rng.expovariate(1.0 / dist.mean_duration_us))
            )
            self._burst_end = self._burst_start + duration
            self._next_burst = self._burst_end + round(
                self.rng.expovariate(1.0 / dist.mean_interval_us)
            )
        return self._burst_start is not None and self._burst_start <= now < self._burst_end

    def sample_delay(self, now: int, nbytes: int = 0) -> int:
        """Draw one one-way delay (µs) for an *nbytes* message entering at
        *now* (``nbytes=0`` models a minimal control packet)."""
        self.samples += 1
        cfg = self.config
        delay = cfg.base_delay_us + round(nbytes / cfg.bandwidth_bytes_per_us)
        if cfg.jitter_mean_us:
            delay += round(self.rng.expovariate(1.0 / cfg.jitter_mean_us))
        if self.in_burst(now):
            self.disturbed_samples += 1
            dist = cfg.disturbance
            assert dist is not None
            delay += dist.extra_delay_us
            if dist.extra_jitter_us:
                delay += round(self.rng.expovariate(1.0 / dist.extra_jitter_us))
        return max(1, delay)


@dataclass(frozen=True, slots=True)
class FaultWindow:
    """One scheduled fault episode on the EXS→ISM path.

    During ``[start_us, end_us)`` every shipped batch is either **dropped**
    (``mode="drop"`` — a partitioned or severed link; the payload never
    arrives and the ISM sees a sequence gap) or **delayed** by an extra
    ``extra_delay_us`` (``mode="delay"`` — congestion or rerouting; the
    payload arrives late, exercising the sorter's stability window).
    """

    start_us: int
    end_us: int
    mode: str = "drop"
    extra_delay_us: int = 0

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError("fault window must have end_us > start_us")
        if self.mode not in ("drop", "delay"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode == "delay" and self.extra_delay_us <= 0:
            raise ValueError("delay windows need extra_delay_us > 0")

    def covers(self, now: int) -> bool:
        return self.start_us <= now < self.end_us


class FaultInjector:
    """Deterministic fault schedule for a simulated deployment.

    The simulator's transport is a function call, so faults are injected
    where the real network would lose or delay them: at ship time.
    ``apply(now)`` returns ``None`` when the batch must be dropped, or the
    extra delay (µs, possibly 0) to add to the link's own sample.
    Windows are checked in order; the first one covering *now* wins.
    """

    def __init__(self, windows: list[FaultWindow] | None = None) -> None:
        self.windows: list[FaultWindow] = list(windows or [])
        #: Batches swallowed by drop windows.
        self.batches_dropped = 0
        #: Batches held back by delay windows.
        self.batches_delayed = 0

    def add_window(self, window: FaultWindow) -> None:
        self.windows.append(window)

    def apply(self, now: int) -> int | None:
        for window in self.windows:
            if window.covers(now):
                if window.mode == "drop":
                    self.batches_dropped += 1
                    return None
                self.batches_delayed += 1
                return window.extra_delay_us
        return 0


def lan_quiet(rng: random.Random) -> LinkModel:
    """A quiet switched LAN: low jitter, no disturbances (E6's "light
    working conditions")."""
    return LinkModel(LinkModelConfig(base_delay_us=200, jitter_mean_us=30), rng)


def lan_disturbed(rng: random.Random) -> LinkModel:
    """A LAN with periodic interference episodes (E6's disturbed phase)."""
    return LinkModel(
        LinkModelConfig(
            base_delay_us=200,
            jitter_mean_us=50,
            disturbance=DisturbanceModel(
                mean_interval_us=30_000_000,
                mean_duration_us=3_000_000,
                extra_delay_us=400,
                extra_jitter_us=800,
            ),
        ),
        rng,
    )
