"""Directory-fsync helpers shared by every crash-safe file path.

POSIX durability has two halves: ``fsync`` on the file makes the *bytes*
durable, but the file's very existence (a create, or an atomic
``os.replace`` rename) lives in the containing directory and is only
durable once the *directory* has been fsynced too.  Forgetting the second
half is the classic bug where a "durable" file vanishes across power
loss even though every byte in it was synced.

Three call sites share these helpers so the invariant lives in one
place: :meth:`repro.core.consumers.PiclFileConsumer.open_durable`'s
close-time rename, the commit log's segment roll
(:mod:`repro.log.commitlog`), and its checkpoint/offset writes.
"""

from __future__ import annotations

import os

__all__ = ["fsync_dir", "durable_replace", "write_file_durable"]


def fsync_dir(path: str) -> None:
    """Fsync the directory *path* so entries created/renamed into it are
    durable.  Best-effort on platforms where directories cannot be opened
    or fsynced (the error is swallowed; there is nothing better to do).
    """
    try:
        dir_fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def durable_replace(src: str, dst: str) -> None:
    """Atomically rename *src* over *dst* and make the rename durable."""
    os.replace(src, dst)
    fsync_dir(os.path.dirname(dst) or ".")


def write_file_durable(path: str, payload: bytes) -> None:
    """Crash-safe whole-file write: tmp + fsync + atomic rename + dir fsync.

    After this returns, *path* holds either its previous contents or the
    full *payload* — never a torn mixture — and the new version survives
    power loss.
    """
    part = path + ".part"
    fd = os.open(part, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    durable_replace(part, path)
