"""Small statistics helpers used by benchmarks and the evaluation harness.

The paper reports ranges ("3.6 to 18.6 microseconds"), bounds ("under 200
microseconds most of the time") and qualitative series.  These helpers give
the benchmark harness a uniform way to compute and print such summaries
without pulling a plotting stack into the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


class RunningStats:
    """Single-pass mean/variance/min/max accumulator (Welford's algorithm).

    Suitable for hot paths: O(1) memory regardless of sample count, no list
    retained.  Used by the EXS utilization bench and the simulator's metric
    probes.
    """

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        """Fold every sample of *xs* into the accumulator."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples seen so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def copy(self) -> "RunningStats":
        """Return an independent accumulator with the same state.

        Snapshots taken by the observability layer must not alias the
        live accumulator a hot path keeps updating.
        """
        dup = RunningStats()
        dup.count = self.count
        dup._mean = self._mean
        dup._m2 = self._m2
        dup.minimum = self.minimum
        dup.maximum = self.maximum
        return dup

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = RunningStats()
        n = self.count + other.count
        if n == 0:
            return merged
        merged.count = n
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / n
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.6g}, "
            f"sd={self.stddev:.6g}, min={self.minimum:.6g}, "
            f"max={self.maximum:.6g})"
        )


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the *q*-th percentile (0..100) using linear interpolation.

    Implemented directly (rather than via numpy) so the core library keeps
    its zero-copy hot paths importable without numpy; benchmarks that already
    hold numpy arrays may prefer ``numpy.percentile``.
    """
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    data = sorted(samples)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(data[lo])
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass
class Histogram:
    """Fixed-bin histogram for latency/skew distributions.

    Bins are half-open ``[edge[i], edge[i+1])``; samples below the first edge
    are counted in ``underflow`` and samples at or above the last edge in
    ``overflow`` so that nothing is silently dropped.
    """

    edges: Sequence[float]
    counts: list[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise ValueError("histogram needs at least two bin edges")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.edges) - 1)
        elif len(self.counts) != len(self.edges) - 1:
            raise ValueError("counts length must be len(edges) - 1")

    def add(self, x: float) -> None:
        """Count one sample."""
        if x < self.edges[0]:
            self.underflow += 1
            return
        if x >= self.edges[-1]:
            self.overflow += 1
            return
        # Binary search for the bin; bin count is small so this is plenty.
        lo, hi = 0, len(self.counts)
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if x < self.edges[mid]:
                hi = mid
            else:
                lo = mid
        self.counts[lo] += 1

    def extend(self, xs: Iterable[float]) -> None:
        """Count every sample of *xs*."""
        for x in xs:
            self.add(x)

    @property
    def total(self) -> int:
        """Total samples seen, including under/overflow."""
        return sum(self.counts) + self.underflow + self.overflow

    def fraction_below(self, threshold: float) -> float:
        """Fraction of all samples strictly below *threshold*.

        *threshold* must be one of the bin edges; the histogram cannot split
        a bin.  Used to report paper-style bounds such as "under 200
        microseconds most of the time".
        """
        if threshold not in self.edges:
            raise ValueError(f"threshold {threshold} is not a bin edge")
        if self.total == 0:
            return 0.0
        idx = list(self.edges).index(threshold)
        below = self.underflow + sum(self.counts[:idx])
        return below / self.total
