"""Microsecond time base.

BRISK represents every timestamp as an eight-byte signed integer holding the
number of microseconds of Universal Coordinated Time (the paper embeds a
``longlong_t`` obtained from ``gettimeofday`` plus an EXS-maintained
correction).  All timestamps in this code base are therefore plain Python
``int`` microsecond counts; this module centralizes the conversions so that
the unit never has to be guessed at a call site.
"""

from __future__ import annotations

import time

#: Number of microseconds per second.
MICROS_PER_SEC: int = 1_000_000

#: Largest value representable in the on-wire eight-byte signed timestamp.
MAX_TIMESTAMP: int = 2**63 - 1

#: Smallest value representable in the on-wire eight-byte signed timestamp.
MIN_TIMESTAMP: int = -(2**63)


def now_micros() -> int:
    """Return the current UTC wall-clock time in integer microseconds.

    This is the reproduction's ``gettimeofday``: real-runtime components
    (sensors, external sensors, the ISM) stamp records with it.  Simulated
    components never call it; they read a :class:`repro.sim.engine.Simulator`
    clock instead.
    """
    return time.time_ns() // 1_000


def monotonic_s() -> float:
    """Sanctioned monotonic-seconds clock for self-timing.

    Components that measure their own elapsed life (metrics registry
    uptime, intrusion fractions) take an injectable time function
    defaulting to this one, so a simulated world can substitute virtual
    time and stay deterministic while real-runtime processes get the OS
    monotonic clock.
    """
    return time.monotonic()


def seconds_to_micros(seconds: float) -> int:
    """Convert a duration in (possibly fractional) seconds to microseconds."""
    return round(seconds * MICROS_PER_SEC)


def micros_to_seconds(micros: int) -> float:
    """Convert an integer microsecond count to floating-point seconds."""
    return micros / MICROS_PER_SEC


def check_timestamp(ts: int) -> int:
    """Validate that *ts* fits the on-wire eight-byte signed representation.

    Returns *ts* unchanged so the call can be used inline.  Raises
    :class:`ValueError` on overflow rather than silently wrapping, because a
    wrapped timestamp would corrupt the ISM's on-line sort order.
    """
    if not MIN_TIMESTAMP <= ts <= MAX_TIMESTAMP:
        raise ValueError(f"timestamp {ts} exceeds 64-bit signed range")
    return ts
