"""Shared utilities for the BRISK reproduction.

The utilities here are substrate-neutral: they are used by the real runtime
(wall-clock microsecond time base) and by the simulation substrate alike.
"""

from repro.util.timebase import (
    MICROS_PER_SEC,
    micros_to_seconds,
    now_micros,
    seconds_to_micros,
)
from repro.util.stats import RunningStats, Histogram, percentile

__all__ = [
    "MICROS_PER_SEC",
    "micros_to_seconds",
    "now_micros",
    "seconds_to_micros",
    "RunningStats",
    "Histogram",
    "percentile",
]
