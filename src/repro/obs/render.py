"""Plain-text rendering of metrics snapshots.

One screenful of aligned tables, grouped by the dotted metric-name
prefix (``ring.*``, ``exs.*``, ``sorter.*`` ...), is what ``brisk-stats``
and the ISM's periodic stats print show.  Deliberately dependency-free:
the output goes to terminals and log files, not dashboards.
"""

from __future__ import annotations

from repro.obs.metrics import HistogramSnapshot, MetricsSnapshot

__all__ = ["render_snapshot", "render_histogram"]


def _fmt(value: float) -> str:
    """Numbers people can read: integers without a trailing .0, small
    fractions with enough digits to be non-zero."""
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    if 0 < abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:,.2f}"


def render_histogram(name: str, snap: HistogramSnapshot, width: int = 30) -> str:
    """One histogram as an ASCII bar chart with its moment summary."""
    lines = [
        f"{name}: n={snap.count} mean={_fmt(snap.mean)} "
        f"min={_fmt(snap.minimum) if snap.count else '-'} "
        f"max={_fmt(snap.maximum) if snap.count else '-'}"
    ]
    peak = max([*snap.counts, snap.underflow, snap.overflow, 1])
    rows: list[tuple[str, int]] = []
    if snap.underflow:
        rows.append((f"< {_fmt(snap.edges[0])}", snap.underflow))
    rows.extend(
        (f"[{_fmt(lo)}, {_fmt(hi)})", count)
        for lo, hi, count in zip(snap.edges, snap.edges[1:], snap.counts)
        if count
    )
    if snap.overflow:
        rows.append((f">= {_fmt(snap.edges[-1])}", snap.overflow))
    label_width = max((len(label) for label, _ in rows), default=0)
    for label, count in rows:
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"  {label:<{label_width}}  {count:>10,}  {bar}")
    return "\n".join(lines)


def render_snapshot(snapshot: MetricsSnapshot, histograms: bool = True) -> str:
    """Render a snapshot as grouped, aligned name/value tables."""
    groups: dict[str, list[tuple[str, float]]] = {}
    for name, value in sorted(snapshot.values.items()):
        prefix = name.split(".", 1)[0]
        groups.setdefault(prefix, []).append((name, value))
    lines: list[str] = []
    if snapshot.uptime_s:
        lines.append(f"uptime: {snapshot.uptime_s:.1f}s")
    for prefix in sorted(groups):
        rows = groups[prefix]
        name_width = max(len(name) for name, _ in rows)
        lines.append(f"-- {prefix} " + "-" * max(1, 40 - len(prefix)))
        lines.extend(
            f"  {name:<{name_width}}  {_fmt(value):>14}" for name, value in rows
        )
    if histograms and snapshot.histograms:
        lines.append("-- distributions " + "-" * 27)
        for name in sorted(snapshot.histograms):
            lines.append(render_histogram(name, snapshot.histograms[name]))
    return "\n".join(lines)
