"""Plain-text rendering of metrics snapshots.

One screenful of aligned tables, grouped by the dotted metric-name
prefix (``ring.*``, ``exs.*``, ``sorter.*`` ...), is what ``brisk-stats``
and the ISM's periodic stats print show.  Deliberately dependency-free:
the output goes to terminals and log files, not dashboards.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import HistogramSnapshot, MetricsSnapshot

__all__ = ["render_snapshot", "render_histogram", "render_shard_breakdown"]


def _fmt(value: float) -> str:
    """Numbers people can read: integers without a trailing .0, small
    fractions with enough digits to be non-zero."""
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    if 0 < abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:,.2f}"


def render_histogram(name: str, snap: HistogramSnapshot, width: int = 30) -> str:
    """One histogram as an ASCII bar chart with its moment summary."""
    lines = [
        f"{name}: n={snap.count} mean={_fmt(snap.mean)} "
        f"min={_fmt(snap.minimum) if snap.count else '-'} "
        f"max={_fmt(snap.maximum) if snap.count else '-'}"
    ]
    peak = max([*snap.counts, snap.underflow, snap.overflow, 1])
    rows: list[tuple[str, int]] = []
    if snap.underflow:
        rows.append((f"< {_fmt(snap.edges[0])}", snap.underflow))
    rows.extend(
        (f"[{_fmt(lo)}, {_fmt(hi)})", count)
        for lo, hi, count in zip(snap.edges, snap.edges[1:], snap.counts)
        if count
    )
    if snap.overflow:
        rows.append((f">= {_fmt(snap.edges[-1])}", snap.overflow))
    label_width = max((len(label) for label, _ in rows), default=0)
    for label, count in rows:
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"  {label:<{label_width}}  {count:>10,}  {bar}")
    return "\n".join(lines)


def render_snapshot(snapshot: MetricsSnapshot, histograms: bool = True) -> str:
    """Render a snapshot as grouped, aligned name/value tables."""
    groups: dict[str, list[tuple[str, float]]] = {}
    for name, value in sorted(snapshot.values.items()):
        prefix = name.split(".", 1)[0]
        groups.setdefault(prefix, []).append((name, value))
    lines: list[str] = []
    if snapshot.uptime_s:
        lines.append(f"uptime: {snapshot.uptime_s:.1f}s")
    for prefix in sorted(groups):
        rows = groups[prefix]
        name_width = max(len(name) for name, _ in rows)
        lines.append(f"-- {prefix} " + "-" * max(1, 40 - len(prefix)))
        lines.extend(
            f"  {name:<{name_width}}  {_fmt(value):>14}" for name, value in rows
        )
    if histograms and snapshot.histograms:
        lines.append("-- distributions " + "-" * 27)
        for name in sorted(snapshot.histograms):
            lines.append(render_histogram(name, snapshot.histograms[name]))
    return "\n".join(lines)


#: Per-shard columns of the breakdown table: (header, metric name).
_SHARD_COLUMNS: tuple[tuple[str, str], ...] = (
    ("received", "ism.records_received"),
    ("delivered", "ism.records_delivered"),
    ("deduped", "ism.records_deduped"),
    ("held", "sorter.held"),
    ("parked", "cre.parked_now"),
    ("commits", "shard.commits"),
    ("frames", "shard.frames_in"),
)


def render_shard_breakdown(
    shard_snapshots: Sequence[tuple[int | str, MetricsSnapshot]],
    dispatcher: MetricsSnapshot | None = None,
) -> str:
    """The sharded-ISM fleet view: merged totals plus a per-shard table.

    *shard_snapshots* is ``(shard_id, snapshot)`` per worker; *dispatcher*
    is the ingest plane's own registry snapshot, merged into the fleet
    totals when given.  Scalar counters add across shards and histogram
    buckets merge (``HistogramSnapshot.merge``), so the totals section is
    exactly what one unsharded ISM doing all the work would have shown.
    """
    if not shard_snapshots:
        merged = dispatcher
    else:
        merged = shard_snapshots[0][1]
        for _, snap in shard_snapshots[1:]:
            merged = merged.merge(snap)
        if dispatcher is not None:
            merged = merged.merge(dispatcher)
    lines: list[str] = []
    if merged is not None:
        lines.append(f"== fleet ({len(shard_snapshots)} shards) " + "=" * 20)
        lines.append(render_snapshot(merged))
    if shard_snapshots:
        headers = ["shard", *(h for h, _ in _SHARD_COLUMNS)]
        rows = [
            [str(shard_id)]
            + [
                _fmt(snap.get(metric, 0.0) or 0.0)
                for _, metric in _SHARD_COLUMNS
            ]
            for shard_id, snap in shard_snapshots
        ]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines.append("== per shard " + "=" * 31)
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
