"""Wire a :class:`~repro.obs.metrics.MetricsRegistry` over live pipeline
objects.

Everything here registers **pull gauges**: closures evaluated only when a
snapshot is taken, so an instrumented pipeline pays nothing per record —
the metric *is* the state the stage already maintains (ring head/tail,
outbox deque length, sorter held count, CRE table sizes).  The functions
are duck-typed on purpose: this module imports no core/runtime classes,
which keeps it importable from any layer without cycles, and lets tests
wire registries over stubs.

Metric namespace (the inventory DESIGN.md §5.6 documents):

========================  ==============================================
``ring.*``                LIS ring occupancy, capacity, drop counts
``sensor.*``              internal-sensor emit/drop counts
``exs.*``                 EXS drain/ship/filter counters, pending batch
``outbox.*``              in-flight (unacked) depth, acks, retransmits
``wire.*``                bytes and frames each way, reconnect counts
``ism.*``                 manager intake/delivery/dedup counters
``sorter.*``              heap depth, adaptive time frame ``T``, disorder
``cre.*``                 table sizes, parked now, tachyons, timeouts
``consumer.*``            queue depth and delivered counts per sink
``relay.*``               relay tier coalesce/compress/fold accounting
``log.*``                 commit-log append/fsync/segment/lag accounting
========================  ==============================================
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "wire_ring",
    "wire_sensor",
    "wire_exs",
    "wire_outbox",
    "wire_connection",
    "wire_manager",
    "wire_sorter",
    "wire_cre",
    "wire_consumers",
    "wire_reconnector",
    "wire_relay",
    "wire_commit_log",
    "wire_monitor",
]


def wire_ring(registry: MetricsRegistry, ring: Any, prefix: str = "ring") -> None:
    """Ring-buffer occupancy and overflow accounting (all O(1) reads)."""
    registry.gauge_fn(f"{prefix}.used_bytes", lambda: ring.used)
    registry.gauge_fn(f"{prefix}.free_bytes", lambda: ring.free)
    registry.gauge_fn(f"{prefix}.capacity_bytes", lambda: ring.capacity)
    registry.gauge_fn(f"{prefix}.dropped", lambda: ring.dropped)
    registry.gauge_fn(f"{prefix}.overwritten", lambda: ring.overwritten)
    registry.gauge_fn(
        f"{prefix}.fill_fraction",
        lambda: ring.used / ring.capacity if ring.capacity else 0.0,
    )


def wire_sensor(registry: MetricsRegistry, sensor: Any, prefix: str = "sensor") -> None:
    """Internal-sensor emit/drop counts."""
    registry.gauge_fn(f"{prefix}.emitted", lambda: sensor.emitted)
    registry.gauge_fn(f"{prefix}.dropped", lambda: sensor.dropped)


def wire_exs(registry: MetricsRegistry, exs: Any, prefix: str = "exs") -> None:
    """External-sensor shipping counters plus its ring(s)."""
    stats = exs.stats
    registry.gauge_fn(f"{prefix}.records_drained", lambda: stats.records_drained)
    registry.gauge_fn(f"{prefix}.records_shipped", lambda: stats.records_shipped)
    registry.gauge_fn(f"{prefix}.records_filtered", lambda: stats.records_filtered)
    registry.gauge_fn(f"{prefix}.batches_shipped", lambda: stats.batches_shipped)
    registry.gauge_fn(f"{prefix}.bytes_shipped", lambda: stats.bytes_shipped)
    registry.gauge_fn(f"{prefix}.timeout_flushes", lambda: stats.timeout_flushes)
    registry.gauge_fn(f"{prefix}.pending_records", lambda: len(exs._pending))
    for i, ring in enumerate(exs.rings):
        suffix = "ring" if len(exs.rings) == 1 else f"ring{i}"
        wire_ring(registry, ring, prefix=f"{prefix}.{suffix}")


def wire_outbox(registry: MetricsRegistry, outbox: Any, prefix: str = "outbox") -> None:
    """In-flight depth and release accounting of an acked-transfer outbox."""
    registry.gauge_fn(f"{prefix}.unacked", lambda: outbox.unacked)
    registry.gauge_fn(f"{prefix}.depth", lambda: outbox.depth)
    registry.gauge_fn(f"{prefix}.acked_batches", lambda: int(outbox.acked_batches))
    registry.gauge_fn(
        f"{prefix}.retransmitted_batches",
        lambda: int(outbox.retransmitted_batches),
    )


def wire_connection(registry: MetricsRegistry, conn: Any, prefix: str = "wire") -> None:
    """Byte and frame counts of one message connection."""
    registry.gauge_fn(f"{prefix}.bytes_sent", lambda: conn.bytes_sent)
    registry.gauge_fn(f"{prefix}.bytes_received", lambda: conn.bytes_received)
    registry.gauge_fn(f"{prefix}.frames_sent", lambda: conn.frames_sent)
    registry.gauge_fn(f"{prefix}.frames_received", lambda: conn.frames_received)


def wire_sorter(registry: MetricsRegistry, sorter: Any, prefix: str = "sorter") -> None:
    """On-line sorter: parked depth, adaptive frame ``T``, disorder stats."""
    stats = sorter.stats
    registry.gauge_fn(f"{prefix}.held", lambda: sorter.held)
    registry.gauge_fn(f"{prefix}.frame_us", lambda: sorter.frame_us)
    registry.gauge_fn(f"{prefix}.pushed", lambda: stats.pushed)
    registry.gauge_fn(f"{prefix}.released", lambda: stats.released)
    registry.gauge_fn(f"{prefix}.out_of_order", lambda: stats.out_of_order)
    registry.gauge_fn(f"{prefix}.forced", lambda: stats.forced)
    registry.gauge_fn(
        f"{prefix}.mean_hold_us", lambda: stats.hold_time_us.mean
    )


def wire_cre(registry: MetricsRegistry, cre: Any, prefix: str = "cre") -> None:
    """Causal matcher: table sizes (O(1)), parked depth, tachyons."""
    stats = cre.stats
    registry.gauge_fn(f"{prefix}.reason_table", lambda: cre.reason_table_size)
    registry.gauge_fn(f"{prefix}.waiting_table", lambda: cre.waiting_table_size)
    registry.gauge_fn(f"{prefix}.parked_now", lambda: cre.parked_now)
    registry.gauge_fn(f"{prefix}.tachyons_fixed", lambda: stats.tachyons_fixed)
    registry.gauge_fn(
        f"{prefix}.timed_out_consequences", lambda: stats.timed_out_consequences
    )
    registry.gauge_fn(
        f"{prefix}.timed_out_reasons", lambda: stats.timed_out_reasons
    )
    registry.gauge_fn(f"{prefix}.sync_requests", lambda: stats.sync_requests)


def wire_consumers(registry: MetricsRegistry, consumers: Any, prefix: str = "consumer") -> None:
    """Per-sink delivered counts; queue depth for queued consumers.

    *consumers* must be the live list (the manager's own), so sinks
    attached or detached later are reflected — the closures index it at
    snapshot time.
    """
    def depth() -> int:
        return sum(
            c.pending_batches()
            for c in consumers
            if hasattr(c, "pending_batches")
        )

    def delivered() -> int:
        return sum(getattr(c, "delivered", 0) for c in consumers)

    registry.gauge_fn(f"{prefix}.count", lambda: len(consumers))
    registry.gauge_fn(f"{prefix}.queued_batches", depth)
    registry.gauge_fn(f"{prefix}.delivered", delivered)


def wire_manager(registry: MetricsRegistry, manager: Any, prefix: str = "ism") -> None:
    """Everything the manager owns: intake counters, sorter, CRE, sinks."""
    stats = manager.stats
    registry.gauge_fn(f"{prefix}.batches_received", lambda: stats.batches_received)
    registry.gauge_fn(f"{prefix}.records_received", lambda: stats.records_received)
    registry.gauge_fn(f"{prefix}.records_delivered", lambda: stats.records_delivered)
    registry.gauge_fn(f"{prefix}.seq_gaps", lambda: stats.seq_gaps)
    registry.gauge_fn(f"{prefix}.duplicate_batches", lambda: stats.duplicate_batches)
    registry.gauge_fn(f"{prefix}.records_deduped", lambda: stats.records_deduped)
    registry.gauge_fn(
        f"{prefix}.unknown_source_records", lambda: stats.unknown_source_records
    )
    registry.gauge_fn(f"{prefix}.consumer_errors", lambda: stats.consumer_errors)
    registry.gauge_fn(
        f"{prefix}.consumers_detached", lambda: stats.consumers_detached
    )
    registry.gauge_fn(f"{prefix}.sources", lambda: len(manager.sources))
    wire_sorter(registry, manager.sorter)
    wire_cre(registry, manager.cre)
    wire_consumers(registry, manager.consumers)


def wire_reconnector(registry: MetricsRegistry, runner: Any, prefix: str = "wire") -> None:
    """Reconnecting-EXS session accounting plus its shared outbox."""
    registry.gauge_fn(f"{prefix}.connections", lambda: int(runner.connections))
    registry.gauge_fn(
        f"{prefix}.failed_attempts", lambda: int(runner.failed_attempts)
    )
    wire_outbox(registry, runner.outbox)


def wire_relay(registry: MetricsRegistry, relay: Any, prefix: str = "relay") -> None:
    """Relay tier: coalesce/compress/fold counters plus live tree state.

    The counters are the relay's own (``relay.*`` names baked in at
    construction); *prefix* only namespaces the pull gauges layered on
    top, so two relays in one process need two registries.
    """
    registry.adopt_counter(relay.batches_in)
    registry.adopt_counter(relay.records_in)
    registry.adopt_counter(relay.frames_out)
    registry.adopt_counter(relay.records_out)
    registry.adopt_counter(relay.batches_coalesced)
    registry.adopt_counter(relay.duplicate_batches)
    registry.adopt_counter(relay.overlap_batches)
    registry.adopt_counter(relay.compressed_frames)
    registry.adopt_counter(relay.compressed_bytes_saved)
    registry.adopt_counter(relay.metrics_records_folded)
    registry.adopt_counter(relay.heartbeats_absorbed)
    registry.adopt_counter(relay.dropped_control)
    registry.adopt_counter(relay.filters_forwarded)
    registry.adopt_counter(relay.filters_held)
    registry.adopt_counter(relay.upstream_reconnects)
    registry.adopt_counter(relay.acks_down_sent)
    registry.adopt_counter(relay.ack_frames_down)
    registry.gauge_fn(f"{prefix}.sources", lambda: len(relay.sources))
    registry.gauge_fn(f"{prefix}.held_envelopes", lambda: relay.held_envelopes)
    registry.gauge_fn(f"{prefix}.unacked_frames", lambda: relay.unacked_frames)
    registry.gauge_fn(
        f"{prefix}.upstream_connected",
        lambda: 1 if relay.upstream is not None else 0,
    )


def wire_commit_log(registry: MetricsRegistry, log: Any, prefix: str = "log") -> None:
    """Commit-log durability accounting: appends, fsyncs, segments, lag.

    The counters and the fsync-latency histogram are the log's own
    (``log.*`` names baked in at construction); *prefix* only namespaces
    the pull gauges layered on top.
    """
    registry.adopt_counter(log.records_appended)
    registry.adopt_counter(log.bytes_appended)
    registry.adopt_counter(log.fsyncs)
    registry.adopt_counter(log.append_errors)
    registry.adopt_counter(log.segments_rolled)
    registry.adopt_counter(log.segments_retired)
    registry.adopt_counter(log.torn_bytes_truncated)
    registry.adopt_counter(log.checkpoint_truncated_records)
    registry.adopt_histogram(log.fsync_hist)
    registry.gauge_fn(f"{prefix}.segments", lambda: log.segment_count)
    registry.gauge_fn(f"{prefix}.start_offset", lambda: log.start_offset)
    registry.gauge_fn(f"{prefix}.end_offset", lambda: log.end_offset)
    registry.gauge_fn(f"{prefix}.durable_offset", lambda: log.durable_offset)
    registry.gauge_fn(f"{prefix}.broken", lambda: 1 if log.broken else 0)
    registry.gauge_fn(f"{prefix}.group_lag_max", log._max_group_lag)


def wire_monitor(
    registry: MetricsRegistry, engine: Any, prefix: str = "monitor"
) -> None:
    """Runtime monitor engine: actuation and alert accounting."""
    registry.gauge_fn(f"{prefix}.actions_fired", lambda: engine.actions_fired)
    registry.gauge_fn(
        f"{prefix}.alerts_emitted", lambda: engine.alerts_emitted
    )
    registry.gauge_fn(
        f"{prefix}.pushes_deferred", lambda: engine.pushes_deferred
    )
    registry.gauge_fn(
        f"{prefix}.active_rules",
        lambda: sum(len(nodes) for nodes in engine.active_rules().values()),
    )
