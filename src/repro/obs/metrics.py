"""Lock-light metric primitives for the IS's self-observability layer.

BRISK's posture is "specify the level of instrumentation, pay only for it"
(§2) — and that must hold for the instrumentation system's *own*
instrumentation.  Three constraints shape this module:

* **lock-light** — every instrument is single-writer (the pipeline stage
  that owns it); readers take snapshots that tolerate torn reads the same
  way the ring buffer's monotonic head/tail counters do.  No instrument
  takes a lock on the hot path.
* **O(1) memory** — histograms have fixed buckets and a Welford
  accumulator; no sample list is ever retained, so a registry's footprint
  is independent of how long the pipeline has run.
* **mergeable snapshots** — per-stage (or per-process) snapshots combine
  with :meth:`MetricsSnapshot.merge`: counters add, histogram buckets add,
  and the moment statistics merge via the parallel Welford combination in
  :meth:`repro.util.stats.RunningStats.merge`, so a fleet view is the same
  O(1)-sized object as a single stage's view.

:class:`Counter` deliberately *behaves like an int* (comparisons,
``int()``, ``+=``) so pipeline components can replace their ad-hoc integer
counters with registered instruments without changing any call site or
test that reads them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence, SupportsInt

from repro.util.stats import RunningStats
from repro.util.timebase import monotonic_s

__all__ = [
    "Counter",
    "Gauge",
    "FixedHistogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "StageTimer",
    "DEFAULT_US_EDGES",
]

#: Default bucket edges for microsecond-scale stage timings: spans the
#: sub-50 µs hot-path costs through the paper's 40 ms select wait.
DEFAULT_US_EDGES: tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 40_000.0, 100_000.0,
)


class Counter:
    """A monotonically increasing counter that reads like an int.

    Single-writer by convention (the owning stage); ``+=`` and
    :meth:`inc` are the write API.  All the integer comparisons are
    implemented so code and tests that previously held a bare ``int``
    attribute keep working unchanged when the attribute becomes a
    registered ``Counter``.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        """Add *n* (negative increments are a bug, not an API)."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n

    # -- int-like surface ------------------------------------------------
    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return self.value == other.value
        return self.value == other

    def __hash__(self) -> int:  # identity: counters are mutable
        return object.__hash__(self)

    def __lt__(self, other: SupportsInt) -> bool:
        return self.value < int(other)

    def __le__(self, other: SupportsInt) -> bool:
        return self.value <= int(other)

    def __gt__(self, other: SupportsInt) -> bool:
        return self.value > int(other)

    def __ge__(self, other: SupportsInt) -> bool:
        return self.value >= int(other)

    def __add__(self, other: SupportsInt) -> int:
        return self.value + int(other)

    __radd__ = __add__

    def __sub__(self, other: SupportsInt) -> int:
        return self.value - int(other)

    def __rsub__(self, other: SupportsInt) -> int:
        return int(other) - self.value

    def __iadd__(self, n: int) -> "Counter":
        self.value += int(n)
        return self

    def __str__(self) -> str:
        return str(self.value)

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time scalar (queue depth, time frame, occupancy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Immutable view of a :class:`FixedHistogram` at one instant.

    Carries the full Welford state (not just the mean) so two snapshots
    merge exactly: ``a.merge(b)`` equals the snapshot a single histogram
    would have produced after seeing both sample streams.
    """

    edges: tuple[float, ...]
    counts: tuple[int, ...]
    underflow: int
    overflow: int
    stats: RunningStats

    @property
    def count(self) -> int:
        """Total samples observed (including under/overflow)."""
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def maximum(self) -> float:
        return self.stats.maximum

    @property
    def minimum(self) -> float:
        return self.stats.minimum

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots of same-shaped histograms."""
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        return HistogramSnapshot(
            edges=self.edges,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            underflow=self.underflow + other.underflow,
            overflow=self.overflow + other.overflow,
            stats=self.stats.merge(other.stats),
        )


class FixedHistogram:
    """Fixed-bucket histogram + Welford moments; O(1) memory forever.

    Buckets are half-open ``[edge[i], edge[i+1])`` with explicit under-
    and overflow counts so no sample is silently dropped.  ``observe`` is
    the single-writer hot-path call: one binary search over a dozen edges
    plus the four Welford updates.
    """

    __slots__ = ("name", "edges", "counts", "underflow", "overflow", "stats")

    def __init__(
        self, name: str, edges: Sequence[float] = DEFAULT_US_EDGES
    ) -> None:
        edges = tuple(float(e) for e in edges)
        if len(edges) < 2:
            raise ValueError("histogram needs at least two bucket edges")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0
        self.stats = RunningStats()

    def observe(self, x: float) -> None:
        """Fold one sample in."""
        self.stats.add(x)
        edges = self.edges
        if x < edges[0]:
            self.underflow += 1
            return
        if x >= edges[-1]:
            self.overflow += 1
            return
        lo, hi = 0, len(edges) - 1
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if x < edges[mid]:
                hi = mid
            else:
                lo = mid
        self.counts[lo] += 1

    @property
    def count(self) -> int:
        """Total samples observed."""
        return self.stats.count

    def snapshot(self) -> HistogramSnapshot:
        """An immutable copy of the current state."""
        return HistogramSnapshot(
            edges=self.edges,
            counts=tuple(self.counts),
            underflow=self.underflow,
            overflow=self.overflow,
            stats=self.stats.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"FixedHistogram({self.name!r}, n={self.stats.count}, "
            f"mean={self.stats.mean:.3g})"
        )


class StageTimer:
    """Self-time accounting for one pipeline stage (intrusion metric).

    The paper's §4 evaluation treats perceived overhead as a first-class
    measurement; this is the same posture applied to our own kernel: each
    instrumented stage records how many nanoseconds it spent doing
    observability-visible work, and the registry turns the total into a
    busy fraction of wall-clock time.

    Usage on a hot path (no context-manager allocation)::

        t0 = timer.start()
        ...stage work...
        timer.stop(t0)
    """

    __slots__ = ("hist", "total_ns")

    def __init__(self, hist: FixedHistogram) -> None:
        self.hist = hist
        self.total_ns = 0

    def start(self) -> int:
        """Begin a measurement; returns the token to pass to :meth:`stop`."""
        return time.perf_counter_ns()

    def stop(self, t0: int) -> None:
        """End a measurement started at *t0*."""
        dt = time.perf_counter_ns() - t0
        self.total_ns += dt
        self.hist.observe(dt / 1_000.0)  # histogram is in microseconds


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """One registry's instruments, frozen at a point in time.

    ``values`` holds counters and gauges; ``histograms`` the distribution
    instruments.  ``scalars()`` flattens everything into (name, float)
    pairs — the form the :class:`~repro.obs.reporter.MetricsReporter`
    ships as BRISK event records.
    """

    values: Mapping[str, float]
    histograms: Mapping[str, HistogramSnapshot]
    #: Wall-clock seconds the registry had been live when snapped.
    uptime_s: float = 0.0

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine with another snapshot (shards, stages, processes).

        Scalars add — the natural combination for counters and for the
        additive gauges (queue depths, bytes, held records) this layer
        uses; same-named histograms merge via parallel Welford.
        """
        values = dict(self.values)
        for name, value in other.values.items():
            values[name] = values.get(name, 0) + value
        hists = dict(self.histograms)
        for name, snap in other.histograms.items():
            mine = hists.get(name)
            hists[name] = snap if mine is None else mine.merge(snap)
        return MetricsSnapshot(
            values=values,
            histograms=hists,
            uptime_s=max(self.uptime_s, other.uptime_s),
        )

    def scalars(self) -> Iterator[tuple[str, float]]:
        """Flatten to (name, value) pairs, histograms as .count/.mean/.max."""
        for name in sorted(self.values):
            yield name, float(self.values[name])
        for name in sorted(self.histograms):
            snap = self.histograms[name]
            yield f"{name}.count", float(snap.count)
            if snap.count:
                yield f"{name}.mean", float(snap.mean)
                yield f"{name}.max", float(snap.maximum)

    def get(self, name: str, default: float | None = None) -> float | None:
        """Scalar lookup by name (counters and gauges only)."""
        value = self.values.get(name, default)
        return value if value is None else float(value)

    def __contains__(self, name: str) -> bool:
        return name in self.values or name in self.histograms


class MetricsRegistry:
    """Name → instrument map for one process (or one simulated world).

    Instruments come in two flavours:

    * **push** — :meth:`counter`, :meth:`gauge`, :meth:`histogram` return
      objects the owning stage updates on its hot path;
    * **pull** — :meth:`gauge_fn` registers a callable evaluated only at
      :meth:`snapshot` time, which is how zero-cost occupancy metrics
      (ring fill, sorter depth, CRE table size) are wired: the pipeline
      pays nothing until somebody actually looks.

    Registration is idempotent by name: asking for an existing name
    returns the existing instrument, so a reconnect that re-wires a stage
    does not shadow the counts accumulated so far.

    *time_fn* is the registry's notion of elapsed seconds, used for
    :attr:`uptime_s` and the intrusion fractions.  It defaults to the
    sanctioned OS monotonic clock; a simulated deployment injects its
    virtual clock instead so that uptime — and everything derived from it
    — is deterministic.
    """

    def __init__(self, time_fn: Callable[[], float] | None = None) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._gauge_fns: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, FixedHistogram] = {}
        self._timers: dict[str, StageTimer] = {}
        self._time_fn = time_fn if time_fn is not None else monotonic_s
        self._started_s = self._time_fn()
        #: Pull gauges whose callable raised at snapshot time; exported
        #: as ``obs.snapshot_gauge_errors`` (only once nonzero) so a dead
        #: gauge is visible instead of silently absent.
        self._gauge_errors = Counter("obs.snapshot_gauge_errors")

    # -- registration ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def adopt_counter(self, counter: Counter) -> Counter:
        """Register an externally created counter under its own name."""
        self._counters[counter.name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the push-style gauge *name*."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a pull-style gauge: *fn* runs only at snapshot time."""
        self._gauge_fns[name] = fn

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_US_EDGES
    ) -> FixedHistogram:
        """Get or create the histogram *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = FixedHistogram(name, edges)
        return hist

    def adopt_histogram(self, hist: FixedHistogram) -> FixedHistogram:
        """Register an externally created histogram under its own name."""
        self._histograms[hist.name] = hist
        return hist

    def timer(
        self, name: str, edges: Sequence[float] = DEFAULT_US_EDGES
    ) -> StageTimer:
        """Get or create a self-time stage timer over histogram *name*."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = StageTimer(self.histogram(name, edges))
        return timer

    # -- reading ---------------------------------------------------------
    @property
    def uptime_s(self) -> float:
        """Seconds since the registry was created, on its own clock."""
        return self._time_fn() - self._started_s

    def intrusion_fractions(self) -> dict[str, float]:
        """Per-stage self-time as a fraction of registry wall-clock life.

        The intrusion inventory of the IS itself: how much of the elapsed
        time each instrumented stage spent on its own work.  Stages that
        have not recorded anything are omitted.
        """
        elapsed_ns = self.uptime_s * 1e9
        if elapsed_ns <= 0:
            return {}
        return {
            name: timer.total_ns / elapsed_ns
            for name, timer in self._timers.items()
            if timer.total_ns
        }

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument (pull gauges are evaluated now).

        A pull gauge whose underlying object has died (closed socket,
        detached ring) is skipped rather than poisoning the whole
        snapshot — observability must never take the pipeline down — but
        each skip increments ``obs.snapshot_gauge_errors`` so the loss
        is visible.
        """
        values: dict[str, float] = {}
        for name, counter in self._counters.items():
            values[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            values[name] = float(gauge.value)
        for name, fn in self._gauge_fns.items():
            try:
                values[name] = float(fn())
            except Exception:
                self._gauge_errors.inc()
        if self._gauge_errors.value:
            values[self._gauge_errors.name] = float(self._gauge_errors.value)
        for name, fraction in self.intrusion_fractions().items():
            values[f"{name}.busy_fraction"] = fraction
        return MetricsSnapshot(
            values=values,
            histograms={
                name: hist.snapshot()
                for name, hist in self._histograms.items()
            },
            uptime_s=self.uptime_s,
        )
