"""Self-observability for the instrumentation system (DESIGN.md §5.6).

The IS watches itself with the same discipline it applies to monitored
applications: lock-light instruments on every pipeline stage
(:mod:`repro.obs.metrics`), pull-gauge wiring over the live objects
(:mod:`repro.obs.collect`), a reporter that dogfoods the snapshots as
BRISK event records through the ring→EXS→ISM path
(:mod:`repro.obs.reporter`), and plain-text table rendering for the
``brisk-stats`` tool and the ISM stats endpoint
(:mod:`repro.obs.render`).
"""

from repro.obs.metrics import (
    Counter,
    FixedHistogram,
    Gauge,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    StageTimer,
)
from repro.obs.reporter import (
    METRICS_EVENT_ID,
    MetricsReporter,
    is_metric_record,
    metric_from_record,
    snapshot_from_records,
)
from repro.obs.render import render_snapshot

__all__ = [
    "Counter",
    "Gauge",
    "FixedHistogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "StageTimer",
    "METRICS_EVENT_ID",
    "MetricsReporter",
    "is_metric_record",
    "metric_from_record",
    "snapshot_from_records",
    "render_snapshot",
]
