"""Dogfooding: the IS's metrics travel as ordinary BRISK event records.

The paper's ISM "may pass instrumentation data to a list of CORBA-enabled
visual objects" — but nothing in the architecture distinguishes *whose*
events those are.  The :class:`MetricsReporter` exploits that: it emits
each metric scalar as a two-field event record (``X_STRING`` name,
``X_DOUBLE`` value) through a normal internal sensor, so the snapshots
ride the very ring→EXS→ISM path they describe, get clock-corrected,
sorted, and CRE-checked like any application event, and land in the PICL
trace where ``brisk-stats --picl`` (or any PICL tool) can read them back.

A monitoring pipeline that cannot carry its own health data is not
trustworthy; one that can proves the full data path end to end on every
reporting interval.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.records import EventRecord, FieldType
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

__all__ = [
    "METRICS_EVENT_ID",
    "MetricsReporter",
    "is_metric_record",
    "metric_from_record",
    "snapshot_from_records",
]

#: Event id carried by self-emitted metric records.  Ordinary application
#: event ids are small; this sits far outside the benchmark workloads'
#: range while remaining a plain u32 any consumer can filter on.
METRICS_EVENT_ID = 0x0B_0B5


class MetricsReporter:
    """Periodically emit a registry's snapshot as BRISK event records.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to snapshot.
    sensor:
        Any object with the internal-sensor ``notice`` signature
        (``notice(event_id, *(ftype, value))`` returning bool) — a real
        :class:`~repro.core.sensor.Sensor` in deployments, a stub in
        tests.
    interval_us:
        Emission period in the caller's time domain (``maybe_emit`` is
        driven with the same ``now`` the rest of the pipeline uses, so
        the simulator gets deterministic reporting for free).
    event_id:
        Event id to stamp; consumers filter metric records on it.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        sensor: Any,
        interval_us: int = 1_000_000,
        event_id: int = METRICS_EVENT_ID,
    ) -> None:
        if interval_us < 1:
            raise ValueError("interval_us must be positive")
        self.registry = registry
        self.sensor = sensor
        self.interval_us = interval_us
        self.event_id = event_id
        #: Snapshots emitted since start.
        self.emissions = 0
        #: Metric records the ring refused (counted, never retried: a
        #: reporter that fights the application for ring space would be
        #: its own intrusion problem).
        self.records_dropped = 0
        self._last_emit: int | None = None

    def maybe_emit(self, now: int) -> bool:
        """Emit a snapshot if the interval has elapsed; returns whether."""
        last = self._last_emit
        if last is not None and now - last < self.interval_us:
            return False
        self.emit_now(now)
        return True

    def emit_now(self, now: int) -> int:
        """Snapshot the registry and emit every scalar; returns records
        written (drops are counted, not raised)."""
        self._last_emit = now
        self.emissions += 1
        written = 0
        notice = self.sensor.notice
        event_id = self.event_id
        for name, value in self.registry.snapshot().scalars():
            if notice(
                event_id,
                (FieldType.X_STRING, name),
                (FieldType.X_DOUBLE, float(value)),
            ):
                written += 1
            else:
                self.records_dropped += 1
        return written


# ----------------------------------------------------------------------
# decoding self-emitted records (the PICL round-trip's read side)
# ----------------------------------------------------------------------

def is_metric_record(
    record: EventRecord, event_id: int = METRICS_EVENT_ID
) -> bool:
    """Whether *record* is a self-emitted metric sample."""
    return (
        record.event_id == event_id
        and len(record.field_types) == 2
        and record.field_types[0] is FieldType.X_STRING
        and record.field_types[1] in (FieldType.X_DOUBLE, FieldType.X_FLOAT)
    )


def metric_from_record(
    record: EventRecord, event_id: int = METRICS_EVENT_ID
) -> tuple[str, float] | None:
    """Decode one metric record to ``(name, value)``; None if it is not
    one."""
    if not is_metric_record(record, event_id):
        return None
    return str(record.values[0]), float(record.values[1])


def snapshot_from_records(
    records: Iterable[EventRecord], event_id: int = METRICS_EVENT_ID
) -> dict[str, float]:
    """Fold a record stream back into a name→value scalar map.

    Later samples win, so feeding a whole trace yields the final reported
    state — the inverse of :meth:`MetricsReporter.emit_now` over the last
    emission.  Histogram-derived scalars come back under their flattened
    names (``foo.count``/``foo.mean``/``foo.max``).
    """
    out: dict[str, float] = {}
    for record in records:
        decoded = metric_from_record(record, event_id)
        if decoded is not None:
            out[decoded[0]] = decoded[1]
    return out


def scalars_snapshot(values: Mapping[str, float]) -> MetricsSnapshot:
    """Wrap a decoded scalar map back into a :class:`MetricsSnapshot`
    so the rendering layer can print round-tripped metrics with the same
    tables it uses for live registries."""
    return MetricsSnapshot(values=dict(values), histograms={})
