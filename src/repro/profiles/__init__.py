"""Profiling-mode monitoring: hybrid-approach emulation (§2).

"BRISK should be able to emulate other methods/techniques (e.g., a hybrid
monitoring approach for tracing or profiling) by a software, event-based
monitoring approach."

Tracing ships one record per event; profiling aggregates *in the LIS* and
ships periodic summaries — trading detail for an order-of-magnitude less
data volume and intrusion.  :class:`ProfilingSensor` implements that
reduction on top of the ordinary internal sensor:

* per-event-id accumulators (count / sum / min / max of a sample value),
* summaries flushed as ordinary BRISK records on an interval or on demand,
* :class:`ProfileDecoder` on the consumer side rebuilds the aggregate view
  from the summary records.

Benchmark A7 quantifies the volume/fidelity trade against full tracing.
"""

from repro.profiles.aggregate import (
    ProfilingSensor,
    ProfileDecoder,
    ProfileSummary,
    PROFILE_EVENT_ID,
)

__all__ = [
    "ProfilingSensor",
    "ProfileDecoder",
    "ProfileSummary",
    "PROFILE_EVENT_ID",
]
