"""In-LIS aggregation: the profiling half of the hybrid emulation.

One :class:`ProfilingSensor` wraps an ordinary :class:`Sensor`.  The
application calls :meth:`ProfilingSensor.sample` exactly where it would
have called ``notice`` — but instead of a record per call, the sensor
folds the sample into a per-event accumulator and only emits a *summary
record* when the flush interval elapses (checked opportunistically on the
sampling path, so no timer thread is needed — the same posture as the
paper's schedulable, predictable components).

Summary record layout (event id :data:`PROFILE_EVENT_ID`)::

    X_UINT    profiled event id
    X_UINT    sample count in the window
    X_DOUBLE  sum of sample values
    X_DOUBLE  minimum
    X_DOUBLE  maximum
    X_TS      window start (corrected microseconds)

Consumers rebuild aggregates with :class:`ProfileDecoder`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.records import EventRecord, FieldType
from repro.core.sensor import Sensor

#: Event id reserved for profile summary records.
PROFILE_EVENT_ID = 0xF0F


@dataclass
class _Accumulator:
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    window_start: int = 0

    def fold(self, value: float) -> None:
        """Accumulate one sample."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value


class ProfilingSensor:
    """Aggregate samples per event id; emit periodic summary records.

    Parameters
    ----------
    sensor:
        The underlying internal sensor summaries are written through.
    flush_interval_us:
        Maximum age of an accumulator before the next sample on the same
        hot path flushes it.
    """

    def __init__(self, sensor: Sensor, flush_interval_us: int = 1_000_000):
        if flush_interval_us < 1:
            raise ValueError("flush_interval_us must be positive")
        self.sensor = sensor
        self.flush_interval_us = flush_interval_us
        self._accumulators: dict[int, _Accumulator] = {}
        #: Samples folded (the events that did NOT become records).
        self.samples = 0
        #: Summary records emitted.
        self.summaries_emitted = 0

    # ------------------------------------------------------------------
    def sample(self, event_id: int, value: float = 1.0) -> None:
        """Fold one observation of *event_id* with *value*.

        With the default ``value=1.0`` the profile is a pure event count;
        passing durations/sizes yields timing/volume profiles.
        """
        now = self.sensor.clock()
        acc = self._accumulators.get(event_id)
        if acc is None:
            acc = _Accumulator(window_start=now)
            self._accumulators[event_id] = acc
        acc.fold(float(value))
        self.samples += 1
        if now - acc.window_start >= self.flush_interval_us:
            self._emit(event_id, acc, now)

    def flush(self) -> int:
        """Emit every non-empty accumulator now; returns summaries sent."""
        now = self.sensor.clock()
        emitted = 0
        for event_id in list(self._accumulators):
            acc = self._accumulators[event_id]
            if acc.count:
                self._emit(event_id, acc, now)
                emitted += 1
        return emitted

    def _emit(self, event_id: int, acc: _Accumulator, now: int) -> None:
        self.sensor.notice(
            PROFILE_EVENT_ID,
            (FieldType.X_UINT, event_id),
            (FieldType.X_UINT, acc.count),
            (FieldType.X_DOUBLE, acc.total),
            (FieldType.X_DOUBLE, acc.minimum),
            (FieldType.X_DOUBLE, acc.maximum),
            (FieldType.X_TS, acc.window_start),
        )
        self.summaries_emitted += 1
        self._accumulators[event_id] = _Accumulator(window_start=now)


@dataclass
class ProfileSummary:
    """Rebuilt aggregate for one (node, event id) pair."""

    node_id: int
    event_id: int
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    windows: int = 0

    @property
    def mean(self) -> float:
        """Mean sample value across all folded windows."""
        return self.total / self.count if self.count else 0.0


class ProfileDecoder:
    """Fold summary records back into per-(node, event) aggregates.

    Usable directly as an ISM consumer: non-summary records pass through
    to ``deliver`` untouched (counted in ``other_records``).
    """

    def __init__(self) -> None:
        self.profiles: dict[tuple[int, int], ProfileSummary] = {}
        self.other_records = 0

    def deliver(self, record: EventRecord) -> None:
        """Consumer-protocol entry point."""
        if record.event_id != PROFILE_EVENT_ID:
            self.other_records += 1
            return
        self.fold(record)

    def close(self) -> None:
        """Nothing to release; present for the consumer protocol."""

    def fold(self, record: EventRecord) -> ProfileSummary:
        """Fold one summary record; returns the updated aggregate."""
        event_id, count, total, minimum, maximum, _start = record.values
        key = (record.node_id, event_id)
        summary = self.profiles.get(key)
        if summary is None:
            summary = ProfileSummary(node_id=record.node_id, event_id=event_id)
            self.profiles[key] = summary
        summary.count += count
        summary.total += total
        summary.minimum = min(summary.minimum, minimum)
        summary.maximum = max(summary.maximum, maximum)
        summary.windows += 1
        return summary
