"""Closed-loop monitoring control: automatic overload throttling.

The §2 trade-off between throughput and completeness has a runtime face:
when applications emit faster than the ISM can absorb, *something* must
give.  BRISK's knobs make that something explicit — and because filters
can be pushed to the source at runtime (:class:`~repro.wire.protocol.
SetFilter`), the ISM can close the loop itself:

:class:`AutoThrottle` watches the aggregate receive rate and adjusts each
external sensor's sampling ratio to hold the rate near a target:

* sustained rate above the target → double ``sample_every`` (halve the
  volume) on the busiest sources;
* rate comfortably below the target with sampling active → halve
  ``sample_every`` (recover detail).

This is monitoring *steering* in the Falcon sense, built purely from the
kernel's own primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.filtering import FilterSpec


@dataclass(frozen=True, slots=True)
class ThrottleConfig:
    """Control-loop parameters.

    ``target_rate_hz`` is the aggregate record rate to hold; the loop acts
    when the observed rate leaves the ``(low_water, high_water)`` band
    around it.  ``max_sample_every`` caps how aggressively a source may be
    thinned (beyond it, you are not monitoring any more).
    """

    target_rate_hz: float = 50_000.0
    high_water: float = 1.2
    low_water: float = 0.5
    max_sample_every: int = 256

    def __post_init__(self) -> None:
        if self.target_rate_hz <= 0:
            raise ValueError("target_rate_hz must be positive")
        if not 0 < self.low_water < 1 <= self.high_water:
            raise ValueError("need 0 < low_water < 1 <= high_water")
        if self.max_sample_every < 1:
            raise ValueError("max_sample_every must be >= 1")


class AutoThrottle:
    """Rate-driven sampling controller for one ISM.

    Transport-agnostic: ``push_filter(exs_id, spec)`` is injected — the
    real server passes :meth:`IsmServer.set_filter`, the simulator applies
    the spec directly, tests record the calls.
    """

    def __init__(
        self,
        push_filter,
        config: ThrottleConfig = ThrottleConfig(),
    ) -> None:
        self.push_filter = push_filter
        self.config = config
        #: exs_id → sampling ratio currently in force.
        self.sample_every: dict[int, int] = {}
        #: (time_us, rate, action) control-decision log.
        self.decisions: list[tuple[int, float, str]] = []
        self._last_counts: dict[int, int] | None = None
        self._last_now: int | None = None

    # ------------------------------------------------------------------
    def observe(self, now_us: int, records_per_source: dict[int, int]) -> str:
        """Feed one observation; returns the action taken.

        ``records_per_source`` is cumulative per-EXS record counts (e.g.
        from :class:`~repro.core.ism.IsmStats`); the controller differences
        consecutive observations itself.
        """
        if self._last_counts is None or self._last_now is None:
            self._last_counts = dict(records_per_source)
            self._last_now = now_us
            return "warmup"
        dt_s = (now_us - self._last_now) / 1_000_000
        if dt_s <= 0:
            return "skipped"
        deltas = {
            exs_id: records_per_source.get(exs_id, 0)
            - self._last_counts.get(exs_id, 0)
            for exs_id in records_per_source
        }
        self._last_counts = dict(records_per_source)
        self._last_now = now_us
        rate = sum(deltas.values()) / dt_s

        cfg = self.config
        if rate > cfg.target_rate_hz * cfg.high_water:
            action = self._tighten(deltas)
        elif rate < cfg.target_rate_hz * cfg.low_water and any(
            v > 1 for v in self.sample_every.values()
        ):
            action = self._relax()
        else:
            action = "hold"
        self.decisions.append((now_us, rate, action))
        return action

    # ------------------------------------------------------------------
    def _tighten(self, deltas: dict[int, int]) -> str:
        busiest = max(deltas, key=lambda k: deltas[k], default=None)
        if busiest is None:
            return "hold"
        current = self.sample_every.get(busiest, 1)
        new = min(self.config.max_sample_every, current * 2)
        if new == current:
            return "saturated"
        self._apply(busiest, new)
        return f"tighten exs {busiest} -> 1/{new}"

    def _relax(self) -> str:
        # Recover detail on the most-thinned source first.
        most_thinned = max(self.sample_every, key=lambda k: self.sample_every[k])
        current = self.sample_every[most_thinned]
        new = max(1, current // 2)
        self._apply(most_thinned, new)
        return f"relax exs {most_thinned} -> 1/{new}"

    def _apply(self, exs_id: int, sample_every: int) -> None:
        self.sample_every[exs_id] = sample_every
        self.push_filter(exs_id, FilterSpec(sample_every=sample_every))
        if sample_every == 1:
            del self.sample_every[exs_id]
