"""Relay aggregation tier: many thin streams in, few fat streams out.

The ISM's remaining ingest ceiling is topological: one accept/route plane
touching every small frame from every node.  A relay breaks the fan-in by
speaking the EXS wire protocol on both sides — downstream it accepts many
EXS (or child-relay) connections; upstream it presents itself as a single
high-volume peer to the ISM or a parent relay — and acting as a
throughput multiplier on the way through:

* **Frame coalescing** — consecutive downstream batches from one source
  are re-emitted as one large frame near ``batch_max_bytes``, re-encoded
  through the fastcodec batch path (never field-by-field).  The coalesced
  frame preserves the *original* sequence numbers (``first_seq..seq``),
  so acks, dedup, and resume keep their end-to-end meaning.
* **In-flight pre-sorting** — decoded batch envelopes ride a
  :class:`~repro.core.merge.OrderedMerger` keyed by each batch's first
  record, so the upstream receiver's sorter sees mostly-ordered input.
  The coalesce window, not watermarks, bounds the sort horizon: an idle
  sensor must never stall the tree, so the merger is flushed (full k-way
  heap order over everything held) once per window rather than gated.
* **Optional compression** — coalesced payloads at or above
  ``compress_min_bytes`` travel as ``MsgType.COMPRESSED`` envelopes once
  the upstream peer has advertised :data:`~repro.wire.protocol.
  CAP_COMPRESS`.  Control frames are never compressed.
* **Metrics reduction** — self-observability snapshot records (event
  ``0xB0B5``) are cumulative: within one coalesced frame, a later record
  for the same ``(node, name)`` supersedes an earlier one (exactly the
  ``snapshot_from_records`` later-wins rule, the degenerate form of the
  associative ``HistogramSnapshot.merge``), so superseded snapshots are
  folded away instead of forwarded.

Delivery guarantees chain hop by hop.  Per source the relay keeps an
:class:`~repro.runtime.exs_proc.ExsOutbox` of coalesced upstream frames
and an *admitted* watermark seeded from the upstream ``HelloReply`` and
advanced by upstream acks; downstream acks quote only that watermark, so
a relay crash loses nothing an EXS was told is safe — the EXS retransmits
and the relay (or the ISM behind it) dedups.  A downstream ``Hello`` is
answered only after the relay's forwarded ``Hello`` got its upstream
reply, so resume points are always upstream-committed.

Clock sync terminates at the relay: it answers upstream ``TimeRequest``
probes with its own corrected clock and drops ``Adjust`` rather than
fanning it out (relay-domain sync is a ROADMAP item, not silently wrong
behaviour — the drop is counted).  Steering passes *through*: an
upstream ``SetFilter`` is routed to the downstream source named by its
``target_exs_id`` (every source when 0), remembered per source, and
re-applied when that source reconnects — so runtime filter pushes keep
their exactly-once re-apply semantics across relay hops.
"""

from __future__ import annotations

import select
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.core.merge import OrderedMerger
from repro.core.records import EventRecord
from repro.obs.metrics import Counter
from repro.obs.reporter import METRICS_EVENT_ID
from repro.runtime.exs_proc import _PEER_LOST, ExsOutbox
from repro.util.timebase import monotonic_s, now_micros
from repro.wire import protocol
from repro.wire.tcp import MessageConnection, MessageListener, connect
from repro.xdr import XdrEncoder

#: Capabilities the relay can *receive*: bundled acks from upstream, and
#: compressed/coalesced traffic from downstream child relays.
RELAY_CAPS = (
    protocol.CAP_COMPRESS
    | protocol.CAP_ACK_BUNDLE
    | protocol.CAP_SEQ_RANGE
    | protocol.CAP_STEERING
)


@dataclass(frozen=True, slots=True)
class RelayConfig:
    """Tuning knobs for one relay node."""

    #: Upstream peer (the ISM or a parent relay).
    upstream_host: str = "127.0.0.1"
    upstream_port: int = 0
    #: Downstream listening endpoint (port 0 = kernel-chosen).
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    #: Identity stamped on upstream heartbeats (diagnostic only).
    relay_id: int = 0
    #: The paper's 40 ms select bound, shared with the EXS/ISM loops.
    select_timeout_s: float = 0.040
    #: Coalesce window: how long downstream batches may accumulate before
    #: a forced upstream flush.  Smaller = lower added latency; larger =
    #: fatter frames and better sorting.
    flush_interval_s: float = 0.005
    #: Target upper bound for one coalesced frame's payload bytes.
    batch_max_bytes: int = 256 * 1024
    #: Per-source bound on coalesced-but-unacked upstream frames (soft,
    #: like :class:`~repro.runtime.exs_proc.ExsOutbox`).
    outbox_depth: int = 256
    #: Per-source bound on decoded envelopes awaiting flush; beyond it the
    #: source's socket is excluded from select (read backpressure).
    pending_limit: int = 256
    #: Compress coalesced payloads at or above this many bytes (None =
    #: never).  Takes effect only after upstream advertises CAP_COMPRESS.
    compress_min_bytes: int | None = None
    #: Fold superseded 0xB0B5 metric snapshots inside coalesced frames.
    reduce_metrics: bool = False
    #: Idle upstream heartbeat cadence (None disables).
    heartbeat_interval_s: float | None = 1.0
    #: Upstream reconnect backoff (deterministic doubling, capped).
    reconnect_backoff_s: float = 0.05
    max_backoff_s: float = 1.0
    #: One upstream connect attempt's timeout.
    connect_timeout_s: float = 0.5

    def __post_init__(self) -> None:
        if self.flush_interval_s <= 0:
            raise ValueError("flush_interval_s must be positive")
        if self.batch_max_bytes < 4096:
            raise ValueError("batch_max_bytes must be >= 4096")
        if self.pending_limit < 1:
            raise ValueError("pending_limit must be >= 1")


class _Envelope:
    """One decoded downstream batch, ready to merge and coalesce.

    ``raw`` keeps the original encoded payload so a run of one batch can
    be forwarded without re-encoding; it is dropped (None) for payloads
    that arrived compressed, forcing the re-encode path.
    """

    __slots__ = ("exs_id", "first", "last", "records", "raw", "wire_bytes", "_key")

    def __init__(
        self,
        exs_id: int,
        first: int,
        last: int,
        records: tuple[EventRecord, ...],
        raw: bytes | None,
        wire_bytes: int,
    ) -> None:
        self.exs_id = exs_id
        self.first = first
        self.last = last
        self.records = records
        self.raw = raw
        self.wire_bytes = wire_bytes
        # Empty (fully folded) batches sort first: they carry only a seq
        # advance and may leave immediately.
        self._key = records[0].sort_key() if records else (0, 0, 0)

    def sort_key(self) -> tuple[int, int, int]:
        return self._key


@dataclass
class _Source:
    """Per-downstream-source relay state (keyed by exs id)."""

    exs_id: int
    node_id: int
    conn: MessageConnection | None
    hello: protocol.Hello
    #: Whether the downstream peer consumes acks/replies.
    down_wants_ack: bool = False
    #: Capability bits the downstream peer advertised.
    down_caps: int = 0
    #: Upstream-committed watermark (from upstream HelloReply + acks);
    #: the only value ever quoted downstream.
    admitted: int = -1
    #: Highest original seq accepted into the merge/outbox this upstream
    #: session: the relay owns delivery for seqs at or below it, so
    #: downstream retransmits of them are dropped (the outbox retransmits
    #: on upstream reconnect instead).
    enqueued: int = -1
    #: Highest watermark already quoted downstream (suppress no-op acks).
    acked_down: int = -1
    #: Upstream handshake state: envelopes flush only once True.
    ready: bool = False
    #: Last upstream ``SetFilter`` aimed at this source — re-applied on
    #: downstream reconnect (epoch-idempotent at the EXS).
    desired_filter: protocol.SetFilter | None = None
    #: Decoded batches awaiting the upstream HelloReply.
    prequeue: deque[_Envelope] = field(default_factory=deque)
    #: Envelopes currently held in the merger (backpressure accounting).
    queued: int = 0
    outbox: ExsOutbox = field(default_factory=ExsOutbox)


class RelayServer:
    """One relay node: accept downstream, multiply throughput upstream."""

    def __init__(
        self,
        config: RelayConfig,
        *,
        listener: MessageListener | None = None,
    ) -> None:
        self.config = config
        self.listener = listener if listener is not None else MessageListener(
            config.listen_host, config.listen_port
        )
        self.upstream: MessageConnection | None = None
        self.sources: dict[int, _Source] = {}
        #: Downstream conn → exs ids heard on it (a child relay is many).
        self._conn_sources: dict[MessageConnection, set[int]] = {}
        self.merger: OrderedMerger[_Envelope] = OrderedMerger()
        self._enc = XdrEncoder()
        self._stop = threading.Event()
        self._upstream_caps = 0
        self._last_flush = monotonic_s()
        self._last_upstream_send = monotonic_s()
        self._next_connect_at = 0.0
        self._backoff_s = config.reconnect_backoff_s
        #: Downstream acks to quote this cycle: exs id → watermark.
        self._cycle_acks: dict[int, int] = {}

        # -- counters (exported by repro.obs.collect.wire_relay) --------
        self.batches_in = Counter("relay.batches_in")
        self.records_in = Counter("relay.records_in")
        self.frames_out = Counter("relay.frames_out")
        self.records_out = Counter("relay.records_out")
        self.batches_coalesced = Counter("relay.batches_coalesced")
        self.duplicate_batches = Counter("relay.duplicate_batches")
        self.overlap_batches = Counter("relay.overlap_batches")
        self.compressed_frames = Counter("relay.compressed_frames")
        self.compressed_bytes_saved = Counter("relay.compressed_bytes_saved")
        self.metrics_records_folded = Counter("relay.metrics_records_folded")
        self.heartbeats_absorbed = Counter("relay.heartbeats_absorbed")
        self.dropped_control = Counter("relay.dropped_control")
        self.filters_forwarded = Counter("relay.filters_forwarded")
        self.filters_held = Counter("relay.filters_held")
        self.upstream_reconnects = Counter("relay.upstream_reconnects")
        self.acks_down_sent = Counter("relay.acks_down_sent")
        self.ack_frames_down = Counter("relay.ack_frames_down")

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The downstream listening (host, port)."""
        return self.listener.address

    def stop(self) -> None:
        """Ask the serve loop to exit after the current cycle."""
        self._stop.set()

    def serve(self, duration_s: float | None = None) -> None:
        """Run the relay loop until stopped (or *duration_s* elapses)."""
        deadline = None if duration_s is None else monotonic_s() + duration_s
        try:
            while not self._stop.is_set():
                if deadline is not None and monotonic_s() >= deadline:
                    break
                self._pump_once()
        finally:
            self._shutdown()

    # -- the pump ------------------------------------------------------
    def _pump_once(self) -> None:
        if self.upstream is None:
            self._maybe_connect_upstream()
        readers: list[MessageListener | MessageConnection] = [self.listener]
        for conn, exs_ids in self._conn_sources.items():
            if any(self._backpressured(e) for e in exs_ids):
                continue  # stop reading until acks free outbox room
            readers.append(conn)
        if self.upstream is not None:
            readers.append(self.upstream)
        now = monotonic_s()
        until_flush = self.config.flush_interval_s - (now - self._last_flush)
        timeout = max(0.0, min(self.config.select_timeout_s, until_flush))
        try:
            ready, _, _ = select.select(readers, [], [], timeout)
        except (OSError, ValueError):
            self._evict_dead()
            return
        for sock in ready:
            if sock is self.listener:
                accepted = self.listener.accept(timeout=0.0)
                if accepted is not None:
                    self._conn_sources.setdefault(accepted, set())
            elif sock is self.upstream:
                self._drain_upstream()
            else:
                self._drain_downstream(sock)
        if monotonic_s() - self._last_flush >= self.config.flush_interval_s:
            self._flush_upstream()
            self._last_flush = monotonic_s()
        self._flush_downstream_acks()
        self._maybe_heartbeat()

    def _backpressured(self, exs_id: int) -> bool:
        src = self.sources.get(exs_id)
        if src is None:
            return False
        return (
            src.outbox.full
            or src.queued + len(src.prequeue) >= self.config.pending_limit
        )

    def _evict_dead(self) -> None:
        """Drop downstream connections whose fd went away mid-select."""
        for conn in list(self._conn_sources):
            try:
                valid = conn.fileno() >= 0
            except (OSError, ValueError):
                valid = False
            if not valid:
                self._drop_downstream(conn)
        if self.upstream is not None:
            try:
                valid = self.upstream.fileno() >= 0
            except (OSError, ValueError):
                valid = False
            if not valid:
                self._lose_upstream()

    # -- downstream ----------------------------------------------------
    def _drain_downstream(self, conn: MessageConnection) -> None:
        try:
            payloads = conn.recv_frames(timeout=0.0, assume_ready=True)
        except _PEER_LOST:
            self._drop_downstream(conn)
            return
        for payload in payloads:
            try:
                self._on_downstream_frame(conn, payload)
            except protocol.ProtocolError:
                self._drop_downstream(conn)
                return

    def _on_downstream_frame(
        self, conn: MessageConnection, payload: bytes
    ) -> None:
        # No node pre-stamp hint: the wire carries no node identity, the
        # fold key is per-run (single node) anyway, and the receiver
        # re-stamps every record from its own Hello registry.
        msg = protocol.decode_message(payload)
        if isinstance(msg, protocol.Batch):
            self._on_downstream_batch(conn, msg, payload)
        elif isinstance(msg, protocol.Hello):
            self._on_downstream_hello(conn, msg)
        elif isinstance(msg, protocol.Heartbeat):
            self.heartbeats_absorbed += 1
        elif isinstance(msg, protocol.Bye):
            self._drop_downstream(conn)
        else:
            # Acks/replies/sync have no downstream-to-upstream meaning.
            self.dropped_control += 1

    def _on_downstream_hello(
        self, conn: MessageConnection, msg: protocol.Hello
    ) -> None:
        src = self.sources.get(msg.exs_id)
        if src is None:
            src = _Source(
                exs_id=msg.exs_id,
                node_id=msg.node_id,
                conn=conn,
                hello=msg,
                outbox=ExsOutbox(self.config.outbox_depth),
            )
            self.sources[msg.exs_id] = src
            self.merger.add_shard(msg.exs_id)
        else:
            if src.conn is not None and src.conn is not conn:
                # Stale binding from a dropped socket: forget it.
                old = self._conn_sources.get(src.conn)
                if old is not None:
                    old.discard(msg.exs_id)
            src.conn = conn
            src.node_id = msg.node_id
            src.hello = msg
        src.down_wants_ack = msg.wants_ack
        src.down_caps = msg.capabilities
        src.ready = False
        self._conn_sources.setdefault(conn, set()).add(msg.exs_id)
        self._forward_hello(src)
        # Re-apply held steering state to the (re)connected source.
        if src.desired_filter is not None:
            self._send_filter_down(src)

    def _forward_hello(self, src: _Source) -> None:
        if self.upstream is None:
            return  # re-sent for every source on upstream (re)connect
        up_hello = protocol.Hello(
            exs_id=src.exs_id,
            node_id=src.node_id,
            advertised_rate=src.hello.advertised_rate,
            wants_ack=True,
            capabilities=RELAY_CAPS,
        )
        try:
            self.upstream.send(up_hello)
            self._last_upstream_send = monotonic_s()
        except _PEER_LOST:
            self._lose_upstream()

    def _on_downstream_batch(
        self, conn: MessageConnection, msg: protocol.Batch, payload: bytes
    ) -> None:
        src = self.sources.get(msg.exs_id)
        if src is None or src.conn is not conn:
            # Batch before Hello: protocol violation downstream.
            self._drop_downstream(conn)
            return
        first = msg.seq if msg.first_seq is None else msg.first_seq
        compressed_in = (
            len(payload) >= 8
            and int.from_bytes(payload[4:8], "big") == protocol.MsgType.COMPRESSED
        )
        env = _Envelope(
            exs_id=msg.exs_id,
            first=first,
            last=msg.seq,
            records=msg.records,
            raw=None if compressed_in else payload,
            wire_bytes=len(payload),
        )
        self.batches_in += 1
        self.records_in += len(msg.records)
        if src.ready:
            self._admit_envelope(src, env)
        else:
            src.prequeue.append(env)

    def _admit_envelope(self, src: _Source, env: _Envelope) -> None:
        floor = src.admitted if src.admitted > src.enqueued else src.enqueued
        if env.last <= floor:
            # A retransmit of something the relay already owns: the
            # outbox (or the upstream commit) will cover it; ack when the
            # upstream watermark does.
            self.duplicate_batches += 1
            if env.last <= src.admitted and src.down_wants_ack:
                self._queue_down_ack(src)
            return
        if env.first <= floor:
            # Partial overlap: a downstream peer re-batched across our
            # watermark (no conforming sender does).  Forward whole and
            # count it; the upstream dedup stays whole-frame best-effort.
            self.overlap_batches += 1
        src.enqueued = env.last
        src.queued += 1
        self.merger.push(src.exs_id, (env,))

    def _drop_downstream(self, conn: MessageConnection) -> None:
        exs_ids = self._conn_sources.pop(conn, set())
        for exs_id in exs_ids:
            src = self.sources.get(exs_id)
            if src is not None and src.conn is conn:
                src.conn = None
        conn.close()

    # -- upstream ------------------------------------------------------
    def _maybe_connect_upstream(self) -> None:
        now = monotonic_s()
        if now < self._next_connect_at:
            return
        try:
            conn = connect(
                self.config.upstream_host,
                self.config.upstream_port,
                timeout=self.config.connect_timeout_s,
            )
        except OSError:
            self._next_connect_at = now + self._backoff_s
            self._backoff_s = min(
                self.config.max_backoff_s, self._backoff_s * 2
            )
            return
        self._backoff_s = self.config.reconnect_backoff_s
        self.upstream = conn
        self._upstream_caps = 0
        self._last_upstream_send = monotonic_s()
        # Chained resume: every known source re-handshakes; envelopes and
        # outbox retransmits wait for the per-source HelloReply.
        for src in self.sources.values():
            src.ready = False
            self._forward_hello(src)
            if self.upstream is None:
                return  # lost again mid-handshake; next cycle retries

    def _lose_upstream(self) -> None:
        if self.upstream is None:
            return
        self.upstream.close()
        self.upstream = None
        self.upstream_reconnects += 1
        self._next_connect_at = monotonic_s() + self._backoff_s
        for src in self.sources.values():
            src.ready = False

    def _drain_upstream(self) -> None:
        conn = self.upstream
        if conn is None:
            return
        try:
            for msg in conn.recv_available():
                self._on_upstream_message(msg)
                if self.upstream is not conn:
                    # A handler lost the upstream mid-drain (e.g. a
                    # failed retransmit): the socket under the iterator
                    # is already closed, so stop consuming it.
                    return
        except (ValueError, *_PEER_LOST):
            # ValueError: the fd was closed between select readiness
            # and the read (closed sockets select as fd -1).
            self._lose_upstream()

    def _on_upstream_message(self, msg: protocol.Message) -> None:
        if isinstance(msg, protocol.Ack):
            self._on_upstream_ack(msg.exs_id, msg.up_to_seq)
        elif isinstance(msg, protocol.AckBundle):
            for exs_id, up_to_seq in msg.acks:
                self._on_upstream_ack(exs_id, up_to_seq)
        elif isinstance(msg, protocol.HelloReply):
            self._on_upstream_hello_reply(msg)
        elif isinstance(msg, protocol.TimeRequest):
            # Sync terminates here: answer with the relay's own clock.
            if self.upstream is not None:
                try:
                    self.upstream.send(
                        protocol.TimeReply(
                            probe_id=msg.probe_id, slave_time=now_micros()
                        )
                    )
                    self._last_upstream_send = monotonic_s()
                except _PEER_LOST:
                    self._lose_upstream()
        elif isinstance(msg, protocol.SetFilter):
            self._on_upstream_set_filter(msg)
        elif isinstance(msg, protocol.Bye):
            self._lose_upstream()
        else:
            self.dropped_control += 1

    def _on_upstream_set_filter(self, msg: protocol.SetFilter) -> None:
        """Route a steering push to the downstream source it names.

        ``target_exs_id=0`` (a legacy or broadcast frame) fans out to
        every known source.  Each targeted source remembers the frame so
        a reconnecting EXS gets it re-applied — the upstream epoch rides
        through unchanged, keeping duplicate applies no-ops end to end.
        """
        if msg.target_exs_id:
            targets = [self.sources.get(msg.target_exs_id)]
        else:
            targets = list(self.sources.values())
        for src in targets:
            if src is None:
                self.dropped_control += 1
                continue
            src.desired_filter = msg
            self._send_filter_down(src)

    def _send_filter_down(self, src: _Source) -> None:
        msg = src.desired_filter
        if msg is None:
            return
        if src.conn is None:
            # Source is between connections: held, re-applied on Hello.
            self.filters_held += 1
            return
        if not src.down_caps & protocol.CAP_STEERING:
            msg = msg.downgraded()
        try:
            src.conn.send(msg)
            self.filters_forwarded += 1
        except _PEER_LOST:
            self._drop_downstream(src.conn)

    def _on_upstream_ack(self, exs_id: int, up_to_seq: int) -> None:
        src = self.sources.get(exs_id)
        if src is None:
            return
        src.outbox.ack(up_to_seq)
        if up_to_seq > src.admitted:
            src.admitted = up_to_seq
            if src.down_wants_ack:
                self._queue_down_ack(src)

    def _on_upstream_hello_reply(self, msg: protocol.HelloReply) -> None:
        src = self.sources.get(msg.exs_id)
        if src is None:
            return
        self._upstream_caps |= msg.capabilities
        if msg.last_seq > src.admitted:
            src.admitted = msg.last_seq
        src.outbox.ack(src.admitted)
        if src.enqueued < src.admitted:
            src.enqueued = src.admitted
        # Within-session state survives a pure reconnect: frames still in
        # the outbox were coalesced once and retransmit byte-identically.
        pending = src.outbox.pending_payloads()
        if pending and self.upstream is not None:
            try:
                self.upstream.send_many(pending)
                self._last_upstream_send = monotonic_s()
                src.outbox.retransmitted_batches += len(pending)
            except _PEER_LOST:
                self._lose_upstream()
                return
        src.ready = True
        while src.prequeue:
            self._admit_envelope(src, src.prequeue.popleft())
        if src.down_wants_ack and src.conn is not None:
            reply = protocol.HelloReply(
                exs_id=src.exs_id,
                last_seq=src.admitted,
                capabilities=RELAY_CAPS if src.down_caps else 0,
            )
            try:
                src.conn.send(reply)
                src.acked_down = src.admitted
            except _PEER_LOST:
                self._drop_downstream(src.conn)

    # -- the multiplier: coalesce, reduce, compress, ship --------------
    def _flush_upstream(self) -> None:
        if self.upstream is None:
            return
        held = self.merger.flush()
        if not held:
            return
        payloads: list[bytes] = []
        run: list[_Envelope] = []
        run_bytes = 0

        def close_run() -> None:
            nonlocal run, run_bytes
            if not run:
                return
            src = self.sources[run[0].exs_id]
            payload = self._emit_run(run)
            src.outbox.append(run[-1].last, payload)
            payloads.append(payload)
            run = []
            run_bytes = 0

        for env in held:
            src = self.sources.get(env.exs_id)
            if src is None:
                continue
            src.queued -= 1
            if run and (
                env.exs_id != run[-1].exs_id
                or env.first != run[-1].last + 1
                or run_bytes + env.wire_bytes > self.config.batch_max_bytes
            ):
                close_run()
            run.append(env)
            run_bytes += env.wire_bytes
        close_run()
        try:
            self.upstream.send_many(payloads)
            self._last_upstream_send = monotonic_s()
        except _PEER_LOST:
            # Already parked in the outboxes; the reconnect handshake
            # retransmits them, so a failed send loses nothing.
            self._lose_upstream()
        self.frames_out += len(payloads)

    def _emit_run(self, run: list[_Envelope]) -> bytes:
        """Encode one contiguous per-source run as a single upstream frame."""
        coalesce_ok = bool(self._upstream_caps & protocol.CAP_SEQ_RANGE)
        reduce_on = self.config.reduce_metrics
        if len(run) == 1 and not reduce_on and run[0].raw is not None:
            if run[0].first == run[0].last or coalesce_ok:
                # Verbatim fast path: the original encoded bytes.
                self.records_out += len(run[0].records)
                return self._maybe_compress(run[0].raw)
        if len(run) > 1:
            self.batches_coalesced += len(run)
        records: list[EventRecord] = [
            rec for env in run for rec in env.records
        ]
        if reduce_on:
            records = self._fold_metrics(records)
        first = run[0].first
        last = run[-1].last
        # FLAG_SEQ_RANGE may only go to peers that negotiated
        # CAP_SEQ_RANGE; toward a legacy upstream the coalesced run ships
        # as a plain batch at `last` (safe: runs are contiguous and start
        # past the outbox tail, so the peer's cumulative admitted
        # watermark either covers all of it or none of it).
        payload = protocol.encode_batch_records(
            run[0].exs_id,
            last,
            records,
            enc=self._enc,
            first_seq=first if coalesce_ok and first != last else None,
        )
        self.records_out += len(records)
        return self._maybe_compress(payload)

    def _maybe_compress(self, payload: bytes) -> bytes:
        threshold = self.config.compress_min_bytes
        if (
            threshold is None
            or not self._upstream_caps & protocol.CAP_COMPRESS
            or len(payload) < threshold
        ):
            return payload
        wrapped = protocol.compress_frame(payload)
        if len(wrapped) >= len(payload):
            return payload  # incompressible; ship the original
        self.compressed_frames += 1
        self.compressed_bytes_saved += len(payload) - len(wrapped)
        return wrapped

    def _fold_metrics(self, records: list[EventRecord]) -> list[EventRecord]:
        """Later-wins fold of 0xB0B5 snapshot records per (node, name).

        Snapshots are cumulative, so the latest record for a key is the
        (degenerate, associative — see ``HistogramSnapshot.merge``) merge
        of every earlier one; forwarding the earlier ones adds bytes, not
        information.  Mirrors ``reporter.snapshot_from_records``.
        """
        seen: set[tuple[int, object]] = set()
        kept_rev: list[EventRecord] = []
        folded = 0
        for rec in reversed(records):
            if rec.event_id == METRICS_EVENT_ID and rec.values:
                key = (rec.node_id, rec.values[0])
                if key in seen:
                    folded += 1
                    continue
                seen.add(key)
            kept_rev.append(rec)
        if not folded:
            return records
        self.metrics_records_folded += folded
        kept_rev.reverse()
        return kept_rev

    # -- downstream acks -----------------------------------------------
    def _queue_down_ack(self, src: _Source) -> None:
        if src.admitted > src.acked_down:
            self._cycle_acks[src.exs_id] = src.admitted

    def _flush_downstream_acks(self) -> None:
        """Quote upstream-committed watermarks downstream, one control
        frame per connection per cycle (bundle or vectored singles)."""
        if not self._cycle_acks:
            return
        by_conn: dict[MessageConnection, list[tuple[int, int]]] = {}
        for exs_id, seq in self._cycle_acks.items():
            src = self.sources.get(exs_id)
            if src is None or src.conn is None:
                continue
            by_conn.setdefault(src.conn, []).append((exs_id, seq))
        self._cycle_acks.clear()
        for conn, pairs in by_conn.items():
            bundle_ok = all(
                self.sources[e].down_caps & protocol.CAP_ACK_BUNDLE
                for e, _ in pairs
            )
            try:
                if bundle_ok and len(pairs) > 1:
                    conn.send(protocol.AckBundle(acks=tuple(pairs)))
                    self.ack_frames_down += 1
                else:
                    conn.send_many(
                        [
                            protocol.encode_message(protocol.Ack(e, s))
                            for e, s in pairs
                        ]
                    )
                    self.ack_frames_down += len(pairs)
            except _PEER_LOST:
                self._drop_downstream(conn)
                continue
            for exs_id, seq in pairs:
                src = self.sources.get(exs_id)
                if src is not None and seq > src.acked_down:
                    src.acked_down = seq
                    self.acks_down_sent += 1

    def _maybe_heartbeat(self) -> None:
        interval = self.config.heartbeat_interval_s
        if interval is None or self.upstream is None:
            return
        now = monotonic_s()
        if now - self._last_upstream_send >= interval:
            try:
                self.upstream.send(
                    protocol.Heartbeat(exs_id=self.config.relay_id)
                )
                self._last_upstream_send = now
            except _PEER_LOST:
                self._lose_upstream()

    # -- lifecycle / introspection --------------------------------------
    def _shutdown(self) -> None:
        try:
            self._flush_upstream()
        except _PEER_LOST:
            pass
        if self.upstream is not None:
            try:
                self.upstream.send(protocol.Bye(reason="relay stop"))
            except _PEER_LOST:
                pass
            self.upstream.close()
            self.upstream = None
        for conn in list(self._conn_sources):
            self._drop_downstream(conn)
        self.listener.close()

    @property
    def unacked_frames(self) -> int:
        """Coalesced frames awaiting an upstream ack, over all sources."""
        return sum(src.outbox.unacked for src in self.sources.values())

    @property
    def held_envelopes(self) -> int:
        """Envelopes parked in the merge (pre-flush), over all sources."""
        return self.merger.held + sum(
            len(src.prequeue) for src in self.sources.values()
        )

    def stats_dump(self) -> dict[str, object]:
        """JSON-friendly counters for ``brisk-stats relay``."""
        return {
            "relay_id": self.config.relay_id,
            "sources": len(self.sources),
            "downstream_connections": len(self._conn_sources),
            "upstream_connected": self.upstream is not None,
            "held_envelopes": self.held_envelopes,
            "unacked_frames": self.unacked_frames,
            "counters": {
                "batches_in": int(self.batches_in),
                "records_in": int(self.records_in),
                "frames_out": int(self.frames_out),
                "records_out": int(self.records_out),
                "batches_coalesced": int(self.batches_coalesced),
                "duplicate_batches": int(self.duplicate_batches),
                "overlap_batches": int(self.overlap_batches),
                "compressed_frames": int(self.compressed_frames),
                "compressed_bytes_saved": int(self.compressed_bytes_saved),
                "metrics_records_folded": int(self.metrics_records_folded),
                "heartbeats_absorbed": int(self.heartbeats_absorbed),
                "dropped_control": int(self.dropped_control),
                "filters_forwarded": int(self.filters_forwarded),
                "filters_held": int(self.filters_held),
                "upstream_reconnects": int(self.upstream_reconnects),
                "acks_down_sent": int(self.acks_down_sent),
                "ack_frames_down": int(self.ack_frames_down),
            },
        }


def relay_process_main(
    listen_port: int,
    upstream_host: str,
    upstream_port: int,
    relay_id: int = 0,
    *,
    flush_interval_s: float = 0.005,
    batch_max_bytes: int = 256 * 1024,
    compress_min_bytes: int | None = None,
    reduce_metrics: bool = False,
    duration_s: float | None = None,
    stats_json: str | None = None,
) -> None:
    """``multiprocessing.Process`` target: run one relay node.

    *listen_port* is parent-chosen (and fixed) so a chaos harness can
    SIGKILL the relay and respawn it on the same address — downstream
    reconnecting senders and the chained resume handshake then prove
    exactly-once delivery through the tree.

    *stats_json*, when set, receives :meth:`RelayServer.stats_dump` as
    JSON on clean exit — the input of ``brisk-stats relay``.
    """
    config = RelayConfig(
        upstream_host=upstream_host,
        upstream_port=upstream_port,
        listen_port=listen_port,
        relay_id=relay_id,
        flush_interval_s=flush_interval_s,
        batch_max_bytes=batch_max_bytes,
        compress_min_bytes=compress_min_bytes,
        reduce_metrics=reduce_metrics,
    )
    server = RelayServer(config)
    try:
        server.serve(duration_s=duration_s)
    finally:
        if stats_json is not None:
            import json

            with open(stats_json, "w", encoding="ascii") as stream:
                json.dump(server.stats_dump(), stream, indent=2, sort_keys=True)
