"""One ISM shard: a worker process running its own sort/match/deliver chain.

The sharded ISM splits the single-process manager into a thin **dispatcher**
(:class:`repro.runtime.ism_proc.ShardedIsmServer`) that owns the sockets and
N **shard workers** (this module) that own the CPU-heavy stages.  Per shard:

* an *input ring* (:mod:`repro.runtime.shm`) carries raw, undecoded wire
  frames from the dispatcher — decode happens here, in parallel across
  shards, not on the ingest plane;
* a full :class:`~repro.core.ism.InstrumentationManager` (sorter + causal
  matcher + delivery) processes the shard's sources exactly as the
  single-process ISM would;
* an *output ring* carries released records back, interleaved with
  **control records** (acks, hello-replies, commits) that let the
  dispatcher keep PR 3's end-to-end delivery guarantees per shard.

Exactly-once across a shard crash hinges on the **commit protocol**: the
dispatcher *stages* everything it drains from the output ring and releases
a staged prefix downstream only when a COMMIT control record arrives (ring
pushes are atomic and FIFO, so a commit covers every item before it).  A
shard killed between pushing data and pushing its commit therefore leaves
only an *uncommitted tail* that the dispatcher discards — and because the
shard advances its ack watermark under the same commit, the EXS was never
acked for that tail and retransmits it to the replacement worker.

Ack watermarks are deliberately lazier than admission watermarks: a batch
is acked only once every one of its records has *left* the sorter and the
causal matcher (nothing parked), i.e. once the records are physically on
the output ring.  Acking at admission would let the EXS drop its outbox
copy of records still parked in a shard that might die.
"""

from __future__ import annotations

import select
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Sequence

from repro.core import native
from repro.core.ackgate import AckGate
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import RingBuffer
from repro.obs.metrics import MetricsRegistry
from repro.runtime.shm import attach_shared_ring
from repro.util.timebase import now_micros
from repro.wire import protocol

# ----------------------------------------------------------------------
# output-ring framing
# ----------------------------------------------------------------------
# Every item the shard pushes onto its output ring starts with a one-byte
# tag so the dispatcher never has to guess whether bytes are payload or
# protocol (an application is free to use any event id, including ours).
TAG_DATA = b"\x00"     #: native-packed records, back to back
TAG_CONTROL = b"\x01"  #: exactly one native-packed control record

# Control records are ordinary EventRecords (native layout) with reserved
# event ids; ``node_id`` carries the shard id.
CTRL_COMMIT = 0xB0C0       #: ts = watermark; values = (received, delivered)
CTRL_ACK = 0xB0C1          #: values = (exs_id, acked seq)
CTRL_HELLO_REPLY = 0xB0C2  #: values = (exs_id, last acked seq or -1)

_COMMIT_FIELDS = (FieldType.X_UHYPER, FieldType.X_UHYPER)
_ACK_FIELDS = (FieldType.X_UINT, FieldType.X_UINT)
_HELLO_REPLY_FIELDS = (FieldType.X_UINT, FieldType.X_INT)

#: Control-RPC verbs on the dispatcher↔shard pipe.
RPC_SNAPSHOT = "snapshot"
RPC_STOP = "stop"


def commit_record(
    shard_id: int, watermark_ts: int, received: int, delivered: int
) -> bytes:
    """Pack a COMMIT control record (tagged, ready to push)."""
    rec = EventRecord.from_wire(
        CTRL_COMMIT, watermark_ts, _COMMIT_FIELDS, (received, delivered), shard_id
    )
    return TAG_CONTROL + native.pack_record(rec)


def ack_record(shard_id: int, exs_id: int, seq: int) -> bytes:
    """Pack an ACK control record (tagged, ready to push)."""
    rec = EventRecord.from_wire(
        CTRL_ACK, 0, _ACK_FIELDS, (exs_id, seq), shard_id
    )
    return TAG_CONTROL + native.pack_record(rec)


def hello_reply_record(shard_id: int, exs_id: int, last_seq: int) -> bytes:
    """Pack a HELLO_REPLY control record (tagged, ready to push)."""
    rec = EventRecord.from_wire(
        CTRL_HELLO_REPLY, 0, _HELLO_REPLY_FIELDS, (exs_id, last_seq), shard_id
    )
    return TAG_CONTROL + native.pack_record(rec)


@dataclass(frozen=True)
class ShardConfig:
    """Everything one worker needs, picklable for the spawn context.

    ``resume_state`` seeds both the admission watermarks (dedup) and the
    ack watermarks — on a respawn the dispatcher passes the committed ack
    state of the dead incarnation, so retransmits of acked batches are
    dropped while retransmits of unacked (possibly lost) ones re-admit.
    """

    shard_id: int
    input_ring: str
    output_ring: str
    ism: IsmConfig = IsmConfig()
    resume_state: dict[int, int] = field(default_factory=dict)
    #: Frames drained from the input ring per loop iteration.
    drain_limit: int = 512
    #: Select timeout while idle (seconds) — the loop's only sleep.
    idle_timeout_s: float = 0.002
    #: Idle-commit cadence (seconds): how often an idle shard refreshes
    #: its merge watermark so silent shards never stall the ordered merge.
    commit_interval_s: float = 0.05
    #: Records packed per output-ring item on the data path.
    push_chunk_records: int = 256
    #: How long a full output ring may stall a push before the worker
    #: gives up (the dispatcher is gone or wedged).
    push_deadline_s: float = 10.0


class _RingDelivery:
    """The shard-local consumer: packs released records onto the output ring.

    Unlike :class:`~repro.runtime.shm_consumer.SharedMemoryConsumer` this
    must never drop — a dropped record would break exactly-once — so a full
    ring blocks the worker (bounded; see ``push_deadline_s``) instead.
    """

    def __init__(self, worker: "ShardWorker", chunk: int) -> None:
        self._worker = worker
        self._chunk = chunk
        self.delivered = 0

    def deliver(self, record: EventRecord) -> None:
        self.deliver_many([record])

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        chunk = self._chunk
        worker = self._worker
        for start in range(0, len(records), chunk):
            piece = records[start : start + chunk]
            worker._push_with_retry(
                TAG_DATA + b"".join(map(native.pack_record, piece))
            )
            last_key = piece[-1].sort_key()
            if worker._high_water is None or last_key > worker._high_water:
                worker._high_water = last_key
        self.delivered += len(records)

    def close(self) -> None:
        """Nothing to release; the worker owns the ring."""


class ShardWorker:
    """The worker loop object (separable from the process for tests)."""

    def __init__(
        self,
        config: ShardConfig,
        input_ring: RingBuffer,
        output_ring: RingBuffer,
        control: Connection,
    ) -> None:
        self.config = config
        self.input_ring = input_ring
        self.output_ring = output_ring
        self.control = control
        self.metrics = MetricsRegistry()
        self._delivery = _RingDelivery(self, config.push_chunk_records)
        self.manager = InstrumentationManager(
            config.ism, [self._delivery], metrics=self.metrics
        )
        self.manager.load_resume_state(config.resume_state)
        # exs_id → node_id hint for decode-time stamping (from Hello).
        self._nodes: dict[int, int] = {}
        # Ack bookkeeping lives in the shared AckGate: acked watermarks
        # advance only once every record of a batch has left the pipeline,
        # and HelloReplies quote the *committed* watermark (an ack staged
        # at the dispatcher but not yet covered by a commit is discarded
        # if this worker dies, so telling the EXS about it would let the
        # outbox drop batches that could still need retransmission).
        self._ack_gate = AckGate(config.resume_state)
        self._ack_enabled: set[int] = set()
        # Merge-watermark high water: the max sort key pushed downstream.
        self._high_water: tuple[int, int, int] | None = None
        self._pushed_since_commit = False
        self._last_commit_mono = time.monotonic()
        self._stop = False
        # Shard-local counters (merged into the fleet view by the
        # dispatcher; names are shard-relative, not prefixed).
        self.frames_in = self.metrics.counter("shard.frames_in")
        self.bad_frames = self.metrics.counter("shard.bad_frames")
        self.unsupported_msgs = self.metrics.counter("shard.unsupported_msgs")
        self.commits = self.metrics.counter("shard.commits")
        self.push_stalls = self.metrics.counter("shard.push_stalls")
        self.metrics.gauge_fn("shard.sorter_held", lambda: self.manager.sorter.held)
        self.metrics.gauge_fn("shard.cre_parked", lambda: self.manager.cre.parked_now)

    # ------------------------------------------------------------------
    # output-ring push (never drops; bounded stall)
    # ------------------------------------------------------------------
    def _push_with_retry(self, payload: bytes) -> None:
        ring = self.output_ring
        if ring.push_bytes(payload):
            return
        self.push_stalls += 1
        deadline = time.monotonic() + self.config.push_deadline_s
        while not ring.push_bytes(payload):
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard {self.config.shard_id}: output ring full for "
                    f"{self.config.push_deadline_s}s; dispatcher gone?"
                )
            time.sleep(0.0005)

    # ------------------------------------------------------------------
    # control pipe
    # ------------------------------------------------------------------
    def _poll_control(self, timeout: float) -> None:
        """Wait on the dispatcher pipe (this select is also the idle
        sleep) and service any RPCs that arrived."""
        pipe = self.control
        while True:
            ready, _, _ = select.select([pipe], [], [], timeout)
            if not ready:
                return
            timeout = 0.0
            try:
                verb = pipe.recv()
            except (EOFError, OSError):
                # Dispatcher died; there is nobody left to commit to.
                self._stop = True
                return
            if verb == RPC_SNAPSHOT:
                pipe.send(self.metrics.snapshot())
            elif verb == RPC_STOP:
                self._stop = True
                return

    # ------------------------------------------------------------------
    # frame handling
    # ------------------------------------------------------------------
    def _handle_frame(self, payload: bytes, now: int) -> None:
        try:
            msg = protocol.decode_message(payload)
        except Exception:
            self.bad_frames += 1
            return
        self.frames_in += 1
        if isinstance(msg, protocol.Batch):
            self._on_batch(msg, now)
        elif isinstance(msg, protocol.Hello):
            self._on_hello(msg)
        elif isinstance(msg, (protocol.Heartbeat, protocol.Bye)):
            pass  # liveness/teardown are dispatcher concerns
        else:
            # Clock-sync traffic never reaches a shard (the dispatcher
            # owns the sockets); anything else is a routing bug upstream.
            self.unsupported_msgs += 1

    def _on_hello(self, msg: protocol.Hello) -> None:
        self._nodes[msg.exs_id] = msg.node_id
        self.manager.register_source(msg.exs_id, msg.node_id)
        if msg.wants_ack:
            self._ack_enabled.add(msg.exs_id)
            last = self._ack_gate.committed(msg.exs_id)
            # The reply carries the *committed* ack watermark, not the
            # admission watermark: batches admitted but still parked in
            # this shard (or acked but uncommitted) must stay in the EXS
            # outbox, because a crash right now would lose them.  Their
            # retransmits dedup cleanly.
            self._push_with_retry(
                hello_reply_record(
                    self.config.shard_id,
                    msg.exs_id,
                    last if last is not None else -1,
                )
            )
            self._pushed_since_commit = True

    def _on_batch(self, msg: protocol.Batch, now: int) -> None:
        exs_id = msg.exs_id
        admitted = self.manager.admitted_seq(exs_id)
        duplicate = admitted is not None and msg.seq <= admitted
        self.manager.on_batch(msg, now)
        if duplicate:
            # Re-ack the current watermark so a resumed EXS retransmitting
            # acked batches converges instead of waiting for new data.
            if exs_id in self._ack_enabled:
                self._ack_gate.mark_dirty(exs_id)
            return
        self._ack_gate.on_admitted(exs_id, msg.seq, len(msg.records))

    # ------------------------------------------------------------------
    # ack watermark advance
    # ------------------------------------------------------------------
    def _advance_acks(self) -> None:
        """Move ack watermarks over batches whose records all left the
        shard (the AckGate requires the causal matcher to be empty: a
        record parked in the CRE has left the sorter without reaching
        the output ring)."""
        self._ack_gate.advance(
            self.manager.sorter.released_by_source, self.manager.cre.parked_now
        )

    def _flush_acks(self) -> None:
        for exs_id in self._ack_gate.take_dirty():
            if exs_id not in self._ack_enabled:
                continue
            seq = self._ack_gate.acked(exs_id)
            if seq is not None:
                self._push_with_retry(
                    ack_record(self.config.shard_id, exs_id, seq)
                )
                self._pushed_since_commit = True

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------
    def _watermark(self) -> int:
        high = self._high_water[0] if self._high_water is not None else 0
        if self.manager.sorter.held == 0 and self.manager.cre.parked_now == 0:
            # Idle pipeline: promise (best-effort, like the sorter's own
            # time frame) that nothing older than now − T will ever be
            # released, so a silent shard cannot stall the ordered merge.
            idle_mark = now_micros() - int(self.manager.sorter.frame_us)
            return max(high, idle_mark)
        return high

    def _maybe_commit(self, force: bool = False) -> None:
        mono = time.monotonic()
        due = mono - self._last_commit_mono >= self.config.commit_interval_s
        if not (self._pushed_since_commit or force or due):
            return
        stats = self.manager.stats
        self._push_with_retry(
            commit_record(
                self.config.shard_id,
                self._watermark(),
                stats.records_received,
                stats.records_delivered,
            )
        )
        self.commits += 1
        self._ack_gate.commit()
        self._pushed_since_commit = False
        self._last_commit_mono = mono

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Drain → decode → sort/match/deliver → ack → commit, forever."""
        drain_limit = self.config.drain_limit
        while not self._stop:
            frames = self.input_ring.drain_bytes(drain_limit)
            now = now_micros()
            for payload in frames:
                self._handle_frame(payload, now)
            self.manager.tick(now)
            self._advance_acks()
            # brisk-lint: disable=BRK601 (_push_with_retry: bounded 0.5ms x3 backpressure wait)
            self._flush_acks()
            self._maybe_commit()
            busy = len(frames) >= drain_limit
            self._poll_control(0.0 if busy else self.config.idle_timeout_s)
        self._shutdown()

    def _shutdown(self) -> None:
        """Flush everything, ack the tail, and commit one last time."""
        final = now_micros()
        # One last input drain: frames the dispatcher forwarded before
        # sending the stop RPC must not be stranded in shared memory.
        for payload in self.input_ring.drain_bytes():
            self._handle_frame(payload, final)
        self.manager.flush(final)
        self._advance_acks()
        self._flush_acks()
        self._maybe_commit(force=True)


def shard_worker_main(config: ShardConfig, control: Connection) -> None:
    """``multiprocessing.Process`` target: attach the rings and run."""
    shared_in = attach_shared_ring(config.input_ring)
    shared_out = attach_shared_ring(config.output_ring)
    try:
        worker = ShardWorker(config, shared_in.ring, shared_out.ring, control)
        worker.run()
    finally:
        shared_in.close()
        shared_out.close()
