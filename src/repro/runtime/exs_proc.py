"""The external-sensor process.

One EXS per node: attaches the node's shared ring, connects to the ISM,
and loops — drain/batch/ship on the data path, answer ``TimeRequest`` and
apply ``Adjust`` on the control path.  The loop structure mirrors the
paper's EXS: a ``select`` wait bounded at 40 ms is both the idle sleep and
the control-message poll, which is exactly why the paper's worst-case
record latency bottoms out at the select timeout (benchmark E4).

On top of the paper's transport the runtime adds end-to-end delivery
guarantees: every encoded batch is parked in a bounded in-flight
:class:`ExsOutbox` until the ISM's cumulative :class:`~repro.wire.
protocol.Ack` covers it, a reconnect replays the ``Hello`` →
``HelloReply`` resume handshake and retransmits everything still unacked,
and a stalled acknowledgment stream (``ack_timeout_s``) forces a
reconnect instead of letting a hung peer strand the outbox.  The ring
buffer remains the durability layer behind the outbox: while the outbox
is full the EXS simply stops draining, so un-shipped records wait in
shared memory rather than in unbounded process heap.

``exs_process_main`` is the ``multiprocessing.Process`` target used by the
examples and the real-socket benchmarks; :class:`ExsProcess` is the same
loop as an object for in-process use (threads, tests).

**Connect-via-relay:** a relay (:mod:`repro.runtime.relay_proc`) speaks
this exact protocol on its downstream side, so pointing *host*/*port* at
a relay instead of the ISM needs no EXS-side changes — acks and resume
points quoted by the relay are upstream-committed, so the delivery
guarantees hold through the tree.  The optional extras are negotiated:
*compress_min_bytes* turns on zlib frame compression once the receiving
peer's ``HelloReply`` advertises ``CAP_COMPRESS``, and a peer that acks
many sources at once may answer with ``AckBundle`` control frames, which
this loop consumes like individual acks.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import replace

from repro.clocksync.clocks import CorrectedClock
from repro.core.exs import ExsConfig, ExternalSensor
from repro.obs.metrics import Counter
from repro.runtime.shm import attach_shared_ring
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import ConnectionClosed, MessageConnection, connect

#: Exceptions that mean "the peer (or the path to it) is gone".
_PEER_LOST = (ConnectionClosed, BrokenPipeError, ConnectionResetError, OSError)


class ExsOutbox:
    """Bounded window of encoded-but-unacknowledged batches.

    Entries are ``(seq, payload)`` in strictly increasing seq order; the
    ISM's acks are cumulative, so :meth:`ack` pops a prefix.  The outbox
    outlives any single connection — :class:`ReconnectingExs` hands the
    same instance to every session so unacked batches survive the socket
    they were first sent on.

    ``depth`` is a soft bound: the pump stops *draining the ring* once the
    outbox is full, but a single poll may overshoot by one poll's worth of
    batches (the ring, not the outbox, is the backpressure buffer).
    """

    def __init__(self, depth: int = 64) -> None:
        if depth < 1:
            raise ValueError("outbox depth must be >= 1")
        self.depth = depth
        self._entries: deque[tuple[int, bytes]] = deque()
        #: Batches released by acks since start (int-like counter).
        self.acked_batches = Counter("outbox.acked_batches")
        #: Payloads re-sent by resume retransmission (int-like counter).
        self.retransmitted_batches = Counter("outbox.retransmitted_batches")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def unacked(self) -> int:
        """Batches currently in flight (sent, not yet acked)."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """Whether the pump should stop draining the ring."""
        return len(self._entries) >= self.depth

    def append(self, seq: int, payload: bytes) -> None:
        """Park one just-sent batch until an ack covers it."""
        if self._entries and seq <= self._entries[-1][0]:
            raise ValueError(
                f"outbox seqs must increase: {seq} after {self._entries[-1][0]}"
            )
        self._entries.append((seq, payload))

    def ack(self, up_to_seq: int) -> int:
        """Release every entry with ``seq <= up_to_seq``; returns count."""
        released = 0
        entries = self._entries
        while entries and entries[0][0] <= up_to_seq:
            entries.popleft()
            released += 1
        self.acked_batches += released
        return released

    def pending_payloads(self) -> list[bytes]:
        """Unacked payloads in seq order (the retransmission set)."""
        return [payload for _, payload in self._entries]

    def pending_seqs(self) -> list[int]:
        """Unacked batch sequence numbers, in order."""
        return [seq for seq, _ in self._entries]


class ExsProcess:
    """Drive one external sensor against a live ISM connection.

    *outbox* holds encoded batches until acked (a fresh one is created
    when not given; pass a shared instance to keep in-flight state across
    reconnects).  *resume* runs the Hello/HelloReply handshake and
    retransmits unacked batches before the main loop.  *ack_timeout_s*
    bounds how long the outbox may sit unacked with no progress before
    the connection is declared hung (None disables).
    *heartbeat_interval_s* keeps an idle connection visibly alive for the
    ISM's idle-deadline sweep (None disables).

    *compress_min_bytes* opts into frame compression: encoded batches at
    or above the threshold are wrapped in ``MsgType.COMPRESSED`` — but
    only after the peer's ``HelloReply`` advertised ``CAP_COMPRESS``
    (legacy peers keep seeing byte-identical traffic).  Compressed
    payloads are parked compressed in the outbox so retransmits are
    byte-exact.
    """

    def __init__(
        self,
        exs: ExternalSensor,
        conn: MessageConnection,
        select_timeout_s: float = 0.040,
        *,
        outbox: ExsOutbox | None = None,
        resume: bool = True,
        ack_timeout_s: float | None = 5.0,
        heartbeat_interval_s: float | None = 1.0,
        hello_reply_timeout_s: float = 2.0,
        compress_min_bytes: int | None = None,
        reporter=None,
    ) -> None:
        if ack_timeout_s is not None and ack_timeout_s <= 0:
            raise ValueError("ack_timeout_s must be positive or None")
        if heartbeat_interval_s is not None and heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive or None")
        self.exs = exs
        self.conn = conn
        self.select_timeout_s = select_timeout_s
        self.outbox = outbox if outbox is not None else ExsOutbox()
        self.resume = resume
        self.ack_timeout_s = ack_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.hello_reply_timeout_s = hello_reply_timeout_s
        self.compress_min_bytes = compress_min_bytes
        #: Capability bits the peer's HelloReply advertised.
        self._server_caps = 0
        #: Optional :class:`repro.obs.reporter.MetricsReporter` whose
        #: sensor writes into this EXS's ring: each loop iteration gives
        #: it a chance to emit, so the node's own health records ride the
        #: same drain→batch→ship path as application events.
        self.reporter = reporter
        if reporter is not None and self.exs.metrics is not None:
            from repro.obs import collect

            collect.wire_outbox(self.exs.metrics, self.outbox)
            collect.wire_connection(self.exs.metrics, conn)
        self._stop = threading.Event()
        self._last_ack_progress = time.monotonic()
        self._last_send = time.monotonic()

    def stop(self) -> None:
        """Ask the loop to flush and exit."""
        self._stop.set()

    def run(self) -> None:
        """The EXS main loop; returns after a stop request or peer close."""
        try:
            # Advertise ack consumption: this loop always drains control
            # traffic, so the ISM may safely write replies and acks back.
            # Steering capability always rides (this loop understands
            # epoch-stamped SetFilter with pushed-down field tests);
            # compression bits only when compression was asked for.
            caps = protocol.CAP_STEERING | (
                protocol.CAP_COMPRESS | protocol.CAP_ACK_BUNDLE
                if self.compress_min_bytes is not None
                else 0
            )
            self.conn.send(
                replace(self.exs.hello(), wants_ack=True, capabilities=caps)
            )
            self._last_send = time.monotonic()
            if self.resume:
                self._resume_session()
            self._last_ack_progress = time.monotonic()
            reporter = self.reporter
            while not self._stop.is_set():
                if reporter is not None:
                    reporter.maybe_emit(now_micros())
                shipped = self._pump_data()
                self._maybe_heartbeat()
                self._check_ack_deadline()
                # Idle or not, poll the control path; when idle this is
                # also the 40 ms select sleep.
                timeout = 0.0 if shipped else self.select_timeout_s
                self._pump_control(timeout)
            self._shutdown_flush()
        except _PEER_LOST:
            pass  # ISM went away; unacked batches stay in the outbox

    # ------------------------------------------------------------------
    def _resume_session(self) -> None:
        """Wait for the HelloReply resume point, then retransmit.

        A legacy ISM that never answers degrades gracefully: after
        ``hello_reply_timeout_s`` every unacked batch is retransmitted
        anyway (at-least-once; the upgraded ISM's dedup restores
        exactly-once).
        """
        deadline = time.monotonic() + self.hello_reply_timeout_s
        reply: protocol.HelloReply | None = None
        while reply is None and not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            msg = self.conn.recv(timeout=min(self.select_timeout_s, remaining))
            if msg is None:
                continue
            if isinstance(msg, protocol.HelloReply):
                reply = msg
            else:
                self._handle_control(msg)
        if reply is not None:
            self._server_caps = reply.capabilities
        if reply is not None and reply.last_seq >= 0:
            self.outbox.ack(reply.last_seq)
            # A restarted EXS adopts the ISM's watermark so fresh batches
            # are not mistaken for retransmits of delivered ones.
            self.exs.resume_from(reply.last_seq + 1)
        pending = self.outbox.pending_payloads()
        if pending:
            self.conn.send_many(pending)
            self.outbox.retransmitted_batches += len(pending)
            self._last_send = time.monotonic()

    def _pump_data(self) -> bool:
        if self.outbox.full:
            # Backpressure: leave records in the ring until acks free a
            # slot.  Still return False so the control pump sleeps and
            # gives the ack a chance to arrive.
            return False
        batches = self.exs.poll()
        if batches:
            batches = self._prepare_payloads(batches)
            first_seq = self.exs.next_seq - len(batches)
            for i, payload in enumerate(batches):
                self.outbox.append(first_seq + i, payload)
            # All of this poll's batches leave in one vectored send.
            self.conn.send_many(batches)
            self._last_send = time.monotonic()
        return bool(batches)

    def _prepare_payloads(self, batches: list[bytes]) -> list[bytes]:
        """Apply negotiated frame compression to outgoing batch payloads."""
        threshold = self.compress_min_bytes
        if threshold is None or not self._server_caps & protocol.CAP_COMPRESS:
            return batches
        out: list[bytes] = []
        for payload in batches:
            if len(payload) >= threshold:
                wrapped = protocol.compress_frame(payload)
                if len(wrapped) < len(payload):
                    payload = wrapped
            out.append(payload)
        return out

    def _pump_control(self, timeout: float) -> None:
        msg = self.conn.recv(timeout=timeout)
        while msg is not None:
            self._handle_control(msg)
            if self._stop.is_set():
                return
            msg = self.conn.recv(timeout=0.0)

    def _handle_control(self, msg: protocol.Message) -> None:
        if isinstance(msg, protocol.Ack):
            if self.outbox.ack(msg.up_to_seq):
                self._last_ack_progress = time.monotonic()
        elif isinstance(msg, protocol.AckBundle):
            # A multiplexing peer acks per cycle, not per source; only
            # this sensor's entry applies here.
            for exs_id, up_to_seq in msg.acks:
                if exs_id == self.exs.exs_id and self.outbox.ack(up_to_seq):
                    self._last_ack_progress = time.monotonic()
        elif isinstance(msg, protocol.TimeRequest):
            self.conn.send(self.exs.on_time_request(msg))
            self._last_send = time.monotonic()
        elif isinstance(msg, protocol.Adjust):
            self.exs.on_adjust(msg)
        elif isinstance(msg, protocol.SetFilter):
            self.exs.on_set_filter(msg)
        elif isinstance(msg, protocol.HelloReply):
            # Late duplicate; the resume handshake already ran.  Still
            # adopt the capability bits in case the reply raced past it.
            self._server_caps = msg.capabilities
        elif isinstance(msg, protocol.Bye):
            self._stop.set()

    def _maybe_heartbeat(self) -> None:
        interval = self.heartbeat_interval_s
        if interval is None:
            return
        now = time.monotonic()
        if now - self._last_send >= interval:
            self.conn.send(protocol.Heartbeat(exs_id=self.exs.exs_id))
            self._last_send = now

    def _check_ack_deadline(self) -> None:
        if self.ack_timeout_s is None or not self.outbox.unacked:
            self._last_ack_progress = time.monotonic()
            return
        if time.monotonic() - self._last_ack_progress > self.ack_timeout_s:
            # The peer is reachable enough to keep the socket open but has
            # stopped admitting: treat it as hung and force a reconnect.
            raise ConnectionClosed(
                f"no ack progress in {self.ack_timeout_s}s with "
                f"{self.outbox.unacked} batches in flight"
            )

    def _shutdown_flush(self) -> None:
        """Flush the ring, wait (bounded) for the acks, then say Bye."""
        payloads = self.exs.flush()
        if payloads:
            first_seq = self.exs.next_seq - len(payloads)
            for i, payload in enumerate(payloads):
                self.outbox.append(first_seq + i, payload)
            self.conn.send_many(payloads)
        # Confirmed shutdown: give the ISM one ack window to cover the
        # tail so a clean stop is loss-free end to end.  A peer that never
        # acks (legacy, or already gone) just costs the timeout.
        if self.outbox.unacked and self.ack_timeout_s is not None:
            deadline = time.monotonic() + self.ack_timeout_s
            while self.outbox.unacked and time.monotonic() < deadline:
                msg = self.conn.recv(timeout=self.select_timeout_s)
                while msg is not None:
                    self._handle_control(msg)
                    msg = self.conn.recv(timeout=0.0)
        self.conn.send(protocol.Bye(reason="exs stop"))


class ReconnectingExs:
    """Run an EXS with automatic reconnection and resumable delivery.

    The ring buffer is the durability layer for unpolled records: while
    the ISM is unreachable the application keeps writing (until the ring
    fills and drops, counted), and on reconnect the EXS resumes draining.
    The shared :class:`ExsOutbox` is the durability layer for records
    already drained: batches the old socket never got acked are
    retransmitted on the new one after the ``HelloReply`` resume
    handshake, so a connection drop mid-flight loses nothing.

    Reconnect backoff uses *decorrelated jitter* (each delay drawn
    uniformly from ``[backoff_s, 3 × previous]``, capped) so N sensors
    orphaned by one ISM restart do not hammer it back in lockstep.
    """

    def __init__(
        self,
        exs: ExternalSensor,
        host: str,
        port: int,
        select_timeout_s: float = 0.040,
        max_attempts: int = 10,
        backoff_s: float = 0.2,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 5.0,
        *,
        outbox_depth: int = 64,
        ack_timeout_s: float | None = 5.0,
        heartbeat_interval_s: float | None = 1.0,
        jitter_rng: random.Random | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.exs = exs
        self.host = host
        self.port = port
        self.select_timeout_s = select_timeout_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self.ack_timeout_s = ack_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        #: In-flight batches shared across every session this runner opens.
        self.outbox = ExsOutbox(outbox_depth)
        self._rng = jitter_rng if jitter_rng is not None else random.Random()
        self._stop = threading.Event()
        #: Successful connections established (int-like counter).
        self.connections = Counter("wire.connections_established")
        #: Failed connection attempts (int-like counter).
        self.failed_attempts = Counter("wire.failed_attempts")

    def stop(self) -> None:
        """Stop after the current session (and stop retrying)."""
        self._stop.set()

    def _next_backoff(self, delay: float) -> float:
        """Decorrelated jitter (AWS style): uniform in [base, 3·prev]."""
        return min(
            self.max_backoff_s,
            self._rng.uniform(self.backoff_s, max(self.backoff_s, delay * 3)),
        )

    def run(self) -> None:
        """Connect-run-reconnect until stopped or attempts exhausted."""
        delay = self.backoff_s
        attempts = 0
        while not self._stop.is_set() and attempts < self.max_attempts:
            try:
                conn = connect(self.host, self.port)
            except OSError:
                attempts += 1
                self.failed_attempts += 1
                # brisk-lint: disable=BRK601 (reconnect backoff: no peer, nothing to pump)
                time.sleep(min(delay, self.max_backoff_s))
                delay = self._next_backoff(delay)
                continue
            self.connections += 1
            session_start = time.monotonic()
            proc = ExsProcess(
                self.exs,
                conn,
                self.select_timeout_s,
                outbox=self.outbox,
                resume=True,
                ack_timeout_s=self.ack_timeout_s,
                heartbeat_interval_s=self.heartbeat_interval_s,
            )
            # Share the stop flag so an outer stop() ends the inner loop.
            proc._stop = self._stop  # noqa: SLF001 - deliberate wiring
            try:
                proc.run()
            finally:
                conn.close()
            # proc.run() returns on stop or on peer loss.  A session that
            # died faster than one backoff period counts as a failed
            # attempt — a proxy or half-up peer that accepts and instantly
            # drops would otherwise drive a zero-delay reconnect spin.
            if time.monotonic() - session_start < self.backoff_s:
                attempts += 1
                if not self._stop.is_set():
                    # brisk-lint: disable=BRK601 (post-session backoff: conn closed)
                    time.sleep(min(delay, self.max_backoff_s))
                delay = self._next_backoff(delay)
            else:
                attempts = 0
                delay = self.backoff_s


def exs_process_main(
    ring_name: str,
    host: str,
    port: int,
    exs_id: int,
    node_id: int,
    stop_when_drained_records: int | None = None,
    config: ExsConfig = ExsConfig(),
    select_timeout_s: float = 0.040,
) -> None:
    """``multiprocessing.Process`` target: run an EXS until told to stop.

    When *stop_when_drained_records* is given, the loop exits after having
    shipped that many records (benchmark harness use); otherwise it runs
    until the ISM closes the connection.
    """
    shared = attach_shared_ring(ring_name)
    try:
        clock = CorrectedClock(now_micros)
        exs = ExternalSensor(exs_id, node_id, shared.ring, clock, config)
        conn = connect(host, port)
        proc = ExsProcess(exs, conn, select_timeout_s)
        if stop_when_drained_records is None:
            proc.run()
        else:
            threading.Thread(
                target=_stop_after,
                args=(proc, exs, stop_when_drained_records),
                daemon=True,
            ).start()
            proc.run()
        conn.close()
    finally:
        shared.close()


def resilient_exs_main(
    ring_name: str,
    host: str,
    port: int,
    exs_id: int,
    node_id: int,
    stop_when_acked_records: int | None = None,
    config: ExsConfig = ExsConfig(),
    select_timeout_s: float = 0.040,
    max_attempts: int = 1_000,
    backoff_s: float = 0.02,
    max_backoff_s: float = 0.5,
    outbox_depth: int = 64,
    ack_timeout_s: float = 2.0,
) -> None:
    """``multiprocessing.Process`` target with full delivery guarantees.

    Runs a :class:`ReconnectingExs` (outbox + resume + retransmit) and —
    when *stop_when_acked_records* is given — exits only once that many
    records have been shipped *and every in-flight batch is acked*, so a
    chaos harness can kill connections at will and still assert
    exactly-once delivery of the whole workload.
    """
    shared = attach_shared_ring(ring_name)
    try:
        clock = CorrectedClock(now_micros)
        exs = ExternalSensor(exs_id, node_id, shared.ring, clock, config)
        runner = ReconnectingExs(
            exs,
            host,
            port,
            select_timeout_s=select_timeout_s,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
            max_backoff_s=max_backoff_s,
            outbox_depth=outbox_depth,
            ack_timeout_s=ack_timeout_s,
        )
        if stop_when_acked_records is not None:
            threading.Thread(
                target=_stop_when_acked,
                args=(runner, exs, stop_when_acked_records),
                daemon=True,
            ).start()
        runner.run()
    finally:
        shared.close()


def _stop_after(proc: ExsProcess, exs: ExternalSensor, target: int) -> None:
    while exs.stats.records_shipped < target:
        time.sleep(0.005)
    proc.stop()


def _stop_when_acked(
    runner: ReconnectingExs, exs: ExternalSensor, target: int
) -> None:
    while not (
        exs.stats.records_shipped >= target and runner.outbox.unacked == 0
    ):
        time.sleep(0.005)
    runner.stop()
