"""The external-sensor process.

One EXS per node: attaches the node's shared ring, connects to the ISM,
and loops — drain/batch/ship on the data path, answer ``TimeRequest`` and
apply ``Adjust`` on the control path.  The loop structure mirrors the
paper's EXS: a ``select`` wait bounded at 40 ms is both the idle sleep and
the control-message poll, which is exactly why the paper's worst-case
record latency bottoms out at the select timeout (benchmark E4).

``exs_process_main`` is the ``multiprocessing.Process`` target used by the
examples and the real-socket benchmarks; :class:`ExsProcess` is the same
loop as an object for in-process use (threads, tests).
"""

from __future__ import annotations

import threading
import time

from repro.clocksync.clocks import CorrectedClock
from repro.core.exs import ExsConfig, ExternalSensor
from repro.runtime.shm import attach_shared_ring
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import ConnectionClosed, MessageConnection, connect


class ExsProcess:
    """Drive one external sensor against a live ISM connection."""

    def __init__(
        self,
        exs: ExternalSensor,
        conn: MessageConnection,
        select_timeout_s: float = 0.040,
    ) -> None:
        self.exs = exs
        self.conn = conn
        self.select_timeout_s = select_timeout_s
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to flush and exit."""
        self._stop.set()

    def run(self) -> None:
        """The EXS main loop; returns after a stop request or peer close."""
        self.conn.send(self.exs.hello())
        try:
            while not self._stop.is_set():
                shipped = self._pump_data()
                # Idle or not, poll the control path; when idle this is
                # also the 40 ms select sleep.
                timeout = 0.0 if shipped else self.select_timeout_s
                self._pump_control(timeout)
            self.conn.send_many(self.exs.flush())
            self.conn.send(protocol.Bye(reason="exs stop"))
        except (ConnectionClosed, BrokenPipeError, ConnectionResetError):
            pass  # ISM went away; nothing left to ship to

    # ------------------------------------------------------------------
    def _pump_data(self) -> bool:
        batches = self.exs.poll()
        if batches:
            # All of this poll's batches leave in one vectored send.
            self.conn.send_many(batches)
        return bool(batches)

    def _pump_control(self, timeout: float) -> None:
        msg = self.conn.recv(timeout=timeout)
        while msg is not None:
            if isinstance(msg, protocol.TimeRequest):
                self.conn.send(self.exs.on_time_request(msg))
            elif isinstance(msg, protocol.Adjust):
                self.exs.on_adjust(msg)
            elif isinstance(msg, protocol.SetFilter):
                self.exs.on_set_filter(msg)
            elif isinstance(msg, protocol.Bye):
                self._stop.set()
                return
            msg = self.conn.recv(timeout=0.0)


class ReconnectingExs:
    """Run an EXS with automatic reconnection.

    The ring buffer is the durability layer: while the ISM is unreachable
    the application keeps writing (until the ring fills and drops,
    counted), and on reconnect the EXS resumes draining — records written
    during the outage still ship.  Batch sequence numbers keep increasing
    across connections, so the ISM's gap counter records exactly how many
    batches (if any) died in flight with the old socket.
    """

    def __init__(
        self,
        exs: ExternalSensor,
        host: str,
        port: int,
        select_timeout_s: float = 0.040,
        max_attempts: int = 10,
        backoff_s: float = 0.2,
        backoff_factor: float = 2.0,
        max_backoff_s: float = 5.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.exs = exs
        self.host = host
        self.port = port
        self.select_timeout_s = select_timeout_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.max_backoff_s = max_backoff_s
        self._stop = threading.Event()
        #: Successful connections established.
        self.connections = 0
        #: Failed connection attempts.
        self.failed_attempts = 0

    def stop(self) -> None:
        """Stop after the current session (and stop retrying)."""
        self._stop.set()

    def run(self) -> None:
        """Connect-run-reconnect until stopped or attempts exhausted."""
        delay = self.backoff_s
        attempts = 0
        while not self._stop.is_set() and attempts < self.max_attempts:
            try:
                conn = connect(self.host, self.port)
            except OSError:
                attempts += 1
                self.failed_attempts += 1
                time.sleep(min(delay, self.max_backoff_s))
                delay *= self.backoff_factor
                continue
            attempts = 0
            delay = self.backoff_s
            self.connections += 1
            proc = ExsProcess(self.exs, conn, self.select_timeout_s)
            # Share the stop flag so an outer stop() ends the inner loop.
            proc._stop = self._stop  # noqa: SLF001 - deliberate wiring
            try:
                proc.run()
            finally:
                conn.close()
            # proc.run() returns on stop or on peer loss; loop decides.


def exs_process_main(
    ring_name: str,
    host: str,
    port: int,
    exs_id: int,
    node_id: int,
    stop_when_drained_records: int | None = None,
    config: ExsConfig = ExsConfig(),
    select_timeout_s: float = 0.040,
) -> None:
    """``multiprocessing.Process`` target: run an EXS until told to stop.

    When *stop_when_drained_records* is given, the loop exits after having
    shipped that many records (benchmark harness use); otherwise it runs
    until the ISM closes the connection.
    """
    shared = attach_shared_ring(ring_name)
    try:
        clock = CorrectedClock(now_micros)
        exs = ExternalSensor(exs_id, node_id, shared.ring, clock, config)
        conn = connect(host, port)
        proc = ExsProcess(exs, conn, select_timeout_s)
        if stop_when_drained_records is None:
            proc.run()
        else:
            threading.Thread(
                target=_stop_after,
                args=(proc, exs, stop_when_drained_records),
                daemon=True,
            ).start()
            proc.run()
        conn.close()
    finally:
        shared.close()


def _stop_after(proc: ExsProcess, exs: ExternalSensor, target: int) -> None:
    while exs.stats.records_shipped < target:
        time.sleep(0.005)
    proc.stop()
