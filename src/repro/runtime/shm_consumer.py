"""Shared-memory output: the ISM's default consumer mode, cross-process.

§3.1/§3.5: "The default output mode of the ISM is writing to a memory
buffer, which is then read by instrumentation data consumer tools" — the
consumer tools being *separate processes*.  This module closes that loop:

* :class:`SharedMemoryConsumer` — an ISM consumer writing native-layout
  records into a named shared ring (the same SPSC ring the LIS uses,
  which already provides cross-process semantics and drop accounting);
* :class:`SharedMemoryReader` — the tool side: attach by segment name,
  drain records, optionally block-poll.

The ring's ``DROP_NEW`` policy applies the paper's posture to the output
side too: a stalled tool loses records (counted) rather than stalling the
ISM.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core.records import EventRecord
from repro.runtime.shm import SharedRing, attach_shared_ring, create_shared_ring


class SharedMemoryConsumer:
    """ISM consumer writing records to a named shared-memory ring.

    Create it, hand it to the manager, and tell tools the segment
    :attr:`name`.  Closing destroys the segment (the ISM owns it).
    """

    def __init__(self, capacity_bytes: int = 4 << 20, name: str | None = None):
        self._shared: SharedRing = create_shared_ring(capacity_bytes, name)
        self.delivered = 0
        #: Records the ring could not take (tool too slow / absent).
        self.dropped = 0
        self._closed = False

    @property
    def name(self) -> str:
        """Segment name consumer tools attach to."""
        return self._shared.name

    def deliver(self, record: EventRecord) -> None:
        """Push one record into the shared ring (drops are counted)."""
        if self._closed:
            raise RuntimeError("consumer is closed")
        if self._shared.ring.push(record):
            self.delivered += 1
        else:
            self.dropped += 1

    def close(self) -> None:
        """Destroy the shared segment (the ISM owns it)."""
        if self._closed:
            return
        self._closed = True
        self._shared.close()


class SharedMemoryReader:
    """Consumer-tool side of the shared output buffer."""

    def __init__(self, name: str) -> None:
        self._shared = attach_shared_ring(name)
        self.read_count = 0
        self._closed = False

    def drain(self, limit: int | None = None) -> list[EventRecord]:
        """Read and decode everything currently available."""
        records = self._shared.ring.drain(limit)
        self.read_count += len(records)
        return records

    def poll(
        self, timeout_s: float = 1.0, interval_s: float = 0.001
    ) -> list[EventRecord]:
        """Wait up to *timeout_s* for records; returns what arrived.

        The ring has no cross-process wakeup primitive (neither did SysV
        shared memory — the paper's EXS polls too), so this is a bounded
        spin with a sleep.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            records = self.drain()
            if records or time.monotonic() >= deadline:
                return records
            time.sleep(interval_s)

    def stream(
        self, stop_after: int | None = None, idle_timeout_s: float = 5.0
    ) -> Iterator[EventRecord]:
        """Yield records as they appear until idle for *idle_timeout_s*
        (or *stop_after* records)."""
        yielded = 0
        while stop_after is None or yielded < stop_after:
            batch = self.poll(timeout_s=idle_timeout_s)
            if not batch:
                return
            for record in batch:
                yield record
                yielded += 1
                if stop_after is not None and yielded >= stop_after:
                    return

    def close(self) -> None:
        """Detach from the shared segment."""
        if self._closed:
            return
        self._closed = True
        self._shared.close()

    def __enter__(self) -> "SharedMemoryReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
