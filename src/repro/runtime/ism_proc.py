"""The ISM server process.

A single-threaded ``select`` loop — the paper's ISM is likewise one process
whose CPU demand is the scalability bottleneck (E5).  The loop:

* accepts external-sensor connections on a listening socket,
* drains available messages from every connection into the
  :class:`~repro.core.ism.InstrumentationManager`,
* ticks the manager so sorted records flow to consumers,
* periodically runs the BRISK clock-synchronization round over the same
  connections (:class:`TcpSyncSlave` adapts a connection to the
  :class:`~repro.clocksync.probes.SyncSlave` interface).

Probes are blocking per slave (as in Cristian's algorithm); batches that
arrive while the master waits for a ``TimeReply`` are queued into the
manager rather than dropped or reordered.
"""

from __future__ import annotations

import select
import threading
import time

from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
from repro.clocksync.probes import ProbeSample
from repro.core.ism import InstrumentationManager
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import ConnectionClosed, MessageConnection, MessageListener


class TcpSyncSlave:
    """Clock-sync slave endpoint over a live EXS connection."""

    def __init__(self, server: "IsmServer", conn: MessageConnection, slave_id: int):
        self.server = server
        self.conn = conn
        self.slave_id = slave_id
        self._probe_seq = 0

    def probe(self, timeout_s: float = 1.0) -> ProbeSample:
        """One blocking Cristian probe over the connection."""
        self._probe_seq += 1
        probe_id = self._probe_seq
        t0 = now_micros()
        self.conn.send(protocol.TimeRequest(probe_id=probe_id))
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"probe {probe_id} to EXS {self.slave_id}")
            msg = self.conn.recv(timeout=remaining)
            if msg is None:
                continue
            if isinstance(msg, protocol.TimeReply) and msg.probe_id == probe_id:
                t1 = now_micros()
                rtt = t1 - t0
                skew = msg.slave_time + rtt / 2 - t1
                return ProbeSample(skew_us=skew, rtt_us=rtt)
            # A batch (or stale reply) raced the probe: feed it onward.
            self.server.dispatch(msg)

    def adjust(self, correction_us: int) -> None:
        """Send the correction over the connection."""
        self.conn.send(protocol.Adjust(correction=correction_us))


class IsmServer:
    """Accept EXS connections and pump them into the manager."""

    def __init__(
        self,
        manager: InstrumentationManager,
        listener: MessageListener,
        sync_config: BriskSyncConfig | None = None,
        sync_period_s: float = 5.0,
        throttle=None,
        throttle_period_s: float = 1.0,
    ) -> None:
        self.manager = manager
        self.listener = listener
        self.sync_config = sync_config
        self.sync_period_s = sync_period_s
        #: Optional :class:`repro.runtime.throttle.AutoThrottle`.  When
        #: set, the server feeds it per-source receive counts every
        #: ``throttle_period_s`` and it steers the sources via
        #: :meth:`set_filter`.
        self.throttle = throttle
        self.throttle_period_s = throttle_period_s
        self._next_throttle = time.monotonic() + throttle_period_s
        self._per_source_counts: dict[int, int] = {}
        self.connections: dict[int, MessageConnection] = {}
        self.sync_master: BriskSyncMaster | None = None
        self._conn_exs: dict[MessageConnection, int] = {}
        self._pending: list[MessageConnection] = []
        self._dead: set[MessageConnection] = set()
        self._stop = threading.Event()
        # First round runs as soon as a slave connects (warmup), then on
        # the configured period.
        self._next_sync = time.monotonic()
        #: Connections that closed (normally or not) since start.
        self.closed_connections = 0
        #: Sync rounds completed across all master rebuilds.
        self.sync_rounds_completed = 0

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the serve loop to flush and exit."""
        self._stop.set()

    def dispatch(self, msg: protocol.Message, now: int | None = None) -> None:
        """Feed one decoded message into the manager (clock-sync replies
        are consumed inside probes and never reach here).

        *now* is the arrival timestamp; the pump loop reads the clock once
        per cycle and passes it through rather than per message.
        """
        if isinstance(msg, (protocol.TimeReply,)):
            return  # stale probe reply; drop
        if isinstance(msg, protocol.Hello):
            self.manager.register_source(msg.exs_id, msg.node_id)
            return
        if isinstance(msg, protocol.Batch):
            self._per_source_counts[msg.exs_id] = (
                self._per_source_counts.get(msg.exs_id, 0) + len(msg.records)
            )
        self.manager.on_message(msg, now_micros() if now is None else now)

    # ------------------------------------------------------------------
    def serve(
        self,
        duration_s: float | None = None,
        until_records: int | None = None,
        expected_connections: int | None = None,
    ) -> None:
        """Run the server loop.

        Stops on :meth:`stop`, after *duration_s*, after the manager has
        received *until_records* records, or — when *expected_connections*
        is given — once every expected connection has come and gone.
        """
        deadline = None if duration_s is None else time.monotonic() + duration_s
        seen_connections = 0
        while not self._stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            if (
                until_records is not None
                and self.manager.stats.records_received >= until_records
            ):
                break
            if (
                expected_connections is not None
                and seen_connections >= expected_connections
                and not self.connections
            ):
                break
            seen_connections += self._accept_ready()
            self._pump_connections()
            self.manager.tick(now_micros())
            self._maybe_sync()
            self._maybe_throttle()
        # Drain in-flight data, then flush the pipeline.  Peers are told
        # to stop only on an explicit stop() — a duration/record bound may
        # just be a phase boundary, with serve() called again.
        self._pump_connections()
        if self._stop.is_set():
            for conn in list(self.connections.values()):
                try:
                    conn.send(protocol.Bye(reason="ism shutdown"))
                except OSError:
                    pass  # peer already gone; the sweep handles it
        self.manager.flush(now_micros())

    # ------------------------------------------------------------------
    def _accept_ready(self) -> int:
        accepted = 0
        while True:
            conn = self.listener.accept(timeout=0.0)
            if conn is None:
                return accepted
            # EXS id unknown until its Hello arrives.
            self._pending.append(conn)
            accepted += 1

    def _pump_connections(self) -> None:
        conns = self._pending + list(self.connections.values())
        if not conns:
            time.sleep(0.001)
            return
        try:
            ready, _, _ = select.select(conns, [], [], 0.005)
        except (OSError, ValueError):
            # A connection died between listing and select; sweep it below.
            ready = []
        now = now_micros()
        for conn in ready:
            # Accumulate message by message: when the stream dies mid-read,
            # everything decoded before the EOF must still be delivered.
            msgs: list[protocol.Message] = []
            closed = False
            try:
                for msg in conn.recv_available():
                    msgs.append(msg)
            except (ConnectionClosed, ConnectionResetError, protocol.ProtocolError):
                closed = True
            for msg in msgs:
                self._route(conn, msg, now)
            if closed:
                self._drop(conn)

    def _route(
        self, conn: MessageConnection, msg: protocol.Message, now: int | None = None
    ) -> None:
        if isinstance(msg, protocol.Hello):
            self.manager.register_source(msg.exs_id, msg.node_id)
            if conn in self._pending:
                self._pending.remove(conn)
            self.connections[msg.exs_id] = conn
            self._conn_exs[conn] = msg.exs_id
            self._rebuild_sync_master()
            return
        if isinstance(msg, protocol.Bye):
            self._drop(conn)
            return
        self.dispatch(msg, now)

    def _drop(self, conn: MessageConnection) -> None:
        if conn in self._dead:
            return  # already dropped (e.g. Bye routed, then EOF seen)
        self._dead.add(conn)
        exs_id = self._conn_exs.pop(conn, None)
        if exs_id is not None:
            self.connections.pop(exs_id, None)
            self._rebuild_sync_master()
        if conn in self._pending:
            self._pending.remove(conn)
        self.closed_connections += 1
        conn.close()

    # ------------------------------------------------------------------
    def set_filter(self, exs_id: int, spec) -> bool:
        """Push a source-side :class:`~repro.core.filtering.FilterSpec`
        down to one connected external sensor (§2: the user specifies
        what to monitor; the EXS drops the rest before transfer).

        Returns False when that EXS is not currently connected.
        """
        conn = self.connections.get(exs_id)
        if conn is None:
            return False
        conn.send(protocol.SetFilter.from_spec(spec))
        return True

    # ------------------------------------------------------------------
    def _rebuild_sync_master(self) -> None:
        if self.sync_config is None or not self.connections:
            self.sync_master = None
            self.manager.sync_master = None
            return
        slaves = [
            TcpSyncSlave(self, conn, exs_id)
            for exs_id, conn in self.connections.items()
        ]
        self.sync_master = BriskSyncMaster(slaves, self.sync_config)
        self.manager.sync_master = self.sync_master

    def _maybe_throttle(self) -> None:
        if self.throttle is None:
            return
        if time.monotonic() < self._next_throttle:
            return
        self._next_throttle = time.monotonic() + self.throttle_period_s
        self.throttle.observe(now_micros(), dict(self._per_source_counts))

    def _maybe_sync(self) -> None:
        master = self.sync_master
        if master is None:
            return
        due = time.monotonic() >= self._next_sync
        extra = master.consume_extra_round_request()
        if not due and not extra:
            return
        self._next_sync = time.monotonic() + self.sync_period_s
        try:
            master.run_round()
            self.sync_rounds_completed += 1
        except (TimeoutError, ConnectionClosed, ConnectionResetError):
            pass  # a slave vanished mid-round; the next pump sweeps it
