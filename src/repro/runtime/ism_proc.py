"""The ISM server process.

A ``select`` loop — the paper's ISM is likewise one process whose CPU
demand is the scalability bottleneck (E5).  Receive is staged per cycle:

1. **framing** — one ``select`` over the listener and every connection;
   each readable socket is drained through its reusable ``recv_into``
   buffer and every complete frame payload sliced out
   (:meth:`~repro.wire.tcp.MessageConnection.recv_frames`);
2. **decode** — each connection's payload list is batch-decoded, inline
   by default, or on a small thread pool when ``decode_workers`` is set
   and several connections have data in the same cycle (decode is pure
   CPU over private buffers, so it parallelizes without locks);
3. **route** — decoded messages enter the
   :class:`~repro.core.ism.InstrumentationManager` in arrival order, per
   connection; then the manager ticks so sorted records flow to consumers.

The single-threaded default (``decode_workers=0``) is byte- and
order-identical to the per-message receive loop it replaced.

The loop also periodically runs the BRISK clock-synchronization round over
the same connections (:class:`TcpSyncSlave` adapts a connection to the
:class:`~repro.clocksync.probes.SyncSlave` interface).  Probes are blocking
per slave (as in Cristian's algorithm); batches that arrive while the
master waits for a ``TimeReply`` are queued into the manager rather than
dropped or reordered.
"""

from __future__ import annotations

import multiprocessing as mp
import select
import struct
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
from repro.clocksync.probes import ProbeSample
from repro.core import native
from repro.core.ackgate import AckGate
from repro.core.consumers import Consumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.merge import OrderedMerger
from repro.core.records import EventRecord
from repro.monitor.engine import MonitorEngine
from repro.monitor.spec import MonitorSpec
from repro.obs import collect
from repro.obs.metrics import Counter, MetricsRegistry, MetricsSnapshot
from repro.obs.render import render_shard_breakdown, render_snapshot
from repro.runtime.shard import (
    CTRL_ACK,
    CTRL_COMMIT,
    CTRL_HELLO_REPLY,
    RPC_SNAPSHOT,
    RPC_STOP,
    ShardConfig,
    shard_worker_main,
)
from repro.runtime.shm import create_shared_ring
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import ConnectionClosed, MessageConnection, MessageListener
from repro.xdr import XdrDecodeError

#: Capability bits either server flavor honors on its receive side,
#: advertised in ``HelloReply`` — but only toward peers whose own Hello
#: carried capability bits (legacy peers keep byte-identical replies).
SERVER_CAPS = (
    protocol.CAP_COMPRESS
    | protocol.CAP_ACK_BUNDLE
    | protocol.CAP_SEQ_RANGE
    | protocol.CAP_STEERING
)


class TcpSyncSlave:
    """Clock-sync slave endpoint over a live EXS connection."""

    def __init__(self, server: "IsmServer", conn: MessageConnection, slave_id: int):
        self.server = server
        self.conn = conn
        self.slave_id = slave_id
        self._probe_seq = 0

    def probe(self, timeout_s: float = 1.0) -> ProbeSample:
        """One blocking Cristian probe over the connection."""
        self._probe_seq += 1
        probe_id = self._probe_seq
        t0 = now_micros()
        self.conn.send(protocol.TimeRequest(probe_id=probe_id))
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"probe {probe_id} to EXS {self.slave_id}")
            msg = self.conn.recv(timeout=remaining)
            if msg is None:
                continue
            if isinstance(msg, protocol.TimeReply) and msg.probe_id == probe_id:
                t1 = now_micros()
                rtt = t1 - t0
                skew = msg.slave_time + rtt / 2 - t1
                return ProbeSample(skew_us=skew, rtt_us=rtt)
            # A message raced the probe: give it the full routing
            # treatment, not bare dispatch — on a multiplexed relay
            # connection even a fresh Hello can land mid-probe, and it
            # must still get its ack registration and HelloReply.
            self.server._route(self.conn, msg)

    def adjust(self, correction_us: int) -> None:
        """Send the correction over the connection."""
        self.conn.send(protocol.Adjust(correction=correction_us))


class IsmServer:
    """Accept EXS connections and pump them into the manager."""

    def __init__(
        self,
        manager: InstrumentationManager,
        listener: MessageListener,
        sync_config: BriskSyncConfig | None = None,
        sync_period_s: float = 5.0,
        throttle=None,
        throttle_period_s: float = 1.0,
        decode_workers: int = 0,
        ack_batches: bool = True,
        idle_deadline_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        stats_interval_s: float | None = None,
        stats_sink=None,
        durable_sink=None,
    ) -> None:
        if decode_workers < 0:
            raise ValueError("decode_workers must be >= 0")
        if idle_deadline_s is not None and idle_deadline_s <= 0:
            raise ValueError("idle_deadline_s must be positive or None")
        if stats_interval_s is not None and stats_interval_s <= 0:
            raise ValueError("stats_interval_s must be positive or None")
        self.manager = manager
        self.listener = listener
        self.sync_config = sync_config
        self.sync_period_s = sync_period_s
        #: Decode-stage thread pool size; 0 decodes inline on the pump
        #: thread (the default — byte/order-identical to the seed loop).
        self.decode_workers = decode_workers
        self._executor: ThreadPoolExecutor | None = None
        #: Optional :class:`repro.runtime.throttle.AutoThrottle`.  When
        #: set, the server feeds it per-source receive counts every
        #: ``throttle_period_s`` and it steers the sources via
        #: :meth:`set_filter`.
        self.throttle = throttle
        self.throttle_period_s = throttle_period_s
        #: Acknowledge admitted batches back to each EXS (cumulative
        #: :class:`~repro.wire.protocol.Ack`, one per source per pump
        #: cycle).  Off reproduces the seed's fire-and-forget transport.
        self.ack_batches = ack_batches
        #: Drop a connection whose peer has been silent this long
        #: (heartbeats count as activity).  None disables the sweep.
        self.idle_deadline_s = idle_deadline_s
        #: Sources with new admissions this cycle, awaiting an Ack.
        self._ack_pending: set[int] = set()
        #: Sources whose Hello advertised ``wants_ack`` — the only peers
        #: ever written to outside the clock-sync path.  A fire-and-forget
        #: sender that never reads must never be written to: once it
        #: closes, our write draws an RST that can discard its
        #: still-buffered batches in our own receive queue.
        self._ack_enabled: set[int] = set()
        #: monotonic() of each connection's last inbound traffic.
        self._last_activity: dict[MessageConnection, float] = {}
        #: Connections dropped by the idle-deadline sweep (int-like
        #: :class:`~repro.obs.metrics.Counter`, registered when metrics
        #: are on).
        self.idle_drops = Counter("ism.idle_drops")
        self._next_throttle = time.monotonic() + throttle_period_s
        self._per_source_counts: dict[int, int] = {}
        #: Steering state of record: the last :class:`SetFilter` pushed
        #: per EXS id, re-applied whenever that source (re)connects — a
        #: spec set while a source is down or mid-reconnect is never
        #: lost, and the epoch makes the re-apply idempotent at the EXS.
        self._desired_filters: dict[int, protocol.SetFilter] = {}
        self._filter_epoch = 0
        #: Attached :class:`~repro.monitor.engine.MonitorEngine`; ticked
        #: once per pump cycle (see :meth:`attach_monitor`).
        self.monitor: MonitorEngine | None = None
        self.connections: dict[int, MessageConnection] = {}
        self.sync_master: BriskSyncMaster | None = None
        #: Sources that spoke a Hello on each connection.  Usually one,
        #: but a relay multiplexes every downstream sensor it fronts over
        #: a single upstream socket.
        self._conn_sources: dict[MessageConnection, set[int]] = {}
        #: Capability bits each source's Hello advertised.
        self._peer_caps: dict[int, int] = {}
        #: Node each connection's Hello advertised — handed to the decode
        #: stage so batch records come out pre-stamped with their node
        #: (the manager's stamping pass then finds nothing to rebuild).
        #: Multi-node relay connections reset the hint to 0.
        self._conn_node: dict[MessageConnection, int] = {}
        self._pending: list[MessageConnection] = []
        self._stop = threading.Event()
        # First round runs as soon as a slave connects (warmup), then on
        # the configured period.
        self._next_sync = time.monotonic()
        #: Connections that closed (normally or not) since start.
        self.closed_connections = Counter("wire.closed_connections")
        #: Sync rounds completed across all master rebuilds.
        self.sync_rounds_completed = Counter("sync.rounds_completed")
        #: Wire traffic of connections already closed (live connections
        #: are summed at snapshot time; these keep the totals monotonic).
        self._closed_bytes = 0
        self._closed_frames = 0
        #: Self-observability registry; None until enabled.  Pass one in,
        #: set ``stats_interval_s`` (a registry is then created), or call
        #: :meth:`metrics_snapshot` — the programmatic stats endpoint —
        #: which wires one lazily.
        self.metrics: MetricsRegistry | None = None
        self.stats_interval_s = stats_interval_s
        #: Where the periodic stats table goes (callable taking one
        #: string); default prints to stdout.
        self.stats_sink = stats_sink if stats_sink is not None else print
        self._next_stats = (
            None
            if stats_interval_s is None
            else time.monotonic() + stats_interval_s
        )
        self._pump_hist = None
        #: Durable mode (PR 8): when set — a commit-log sink exposing
        #: ``sync(sources)`` and ``source_watermarks()``, in practice a
        #: :class:`~repro.core.consumers.LogConsumer` that is *also* one
        #: of the manager's consumers — acks are gated on the log instead
        #: of on admission: a batch is acked only after every one of its
        #: records has been released to the consumers AND the log has
        #: fsynced past them (``sync`` checkpoints the acked watermarks in
        #: the same breath).  A SIGKILL'd ISM then never loses an acked
        #: record: recovery truncates the log to the checkpoint and the
        #: EXS outboxes retransmit exactly the unacked tail.
        self.durable_sink = durable_sink
        self._ack_gate: AckGate | None = None
        #: Failed durable sync attempts (log unwritable → acks withheld).
        self.durable_sync_errors = Counter("ism.durable_sync_errors")
        if durable_sink is not None:
            resume = durable_sink.source_watermarks()
            self.manager.load_resume_state(resume)
            self._ack_gate = AckGate(resume)
        if metrics is not None or stats_interval_s is not None:
            self._enable_metrics(metrics or MetricsRegistry())

    # ------------------------------------------------------------------
    # self-observability
    # ------------------------------------------------------------------
    def _enable_metrics(self, registry: MetricsRegistry) -> None:
        self.metrics = registry
        registry.adopt_counter(self.idle_drops)
        registry.adopt_counter(self.closed_connections)
        registry.adopt_counter(self.sync_rounds_completed)
        registry.adopt_counter(self.durable_sync_errors)
        if self.manager.metrics is not registry:
            collect.wire_manager(registry, self.manager)
        registry.gauge_fn("wire.connections", lambda: len(self.connections))
        registry.gauge_fn(
            "wire.pending_connections", lambda: len(self._pending)
        )
        registry.gauge_fn(
            "wire.bytes_received",
            lambda: self._closed_bytes
            + sum(
                c.bytes_received for c in dict.fromkeys(self.connections.values())
            ),
        )
        registry.gauge_fn(
            "wire.frames_received",
            lambda: self._closed_frames
            + sum(
                c.frames_received
                for c in dict.fromkeys(self.connections.values())
            ),
        )
        #: Pump cycle duration includes the (bounded) select wait, so it
        #: is a latency metric, not a busy-time metric — intrusion
        #: accounting uses the manager's per-stage timers instead.
        self._pump_hist = registry.histogram("ism.pump_cycle_us")

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The ISM stats endpoint: a merged snapshot of everything the
        server can see — manager counters, sorter/CRE depth, consumer
        queues, wire traffic.  Wires a registry lazily on first call, so
        any running server can be inspected without prior setup."""
        if self.metrics is None:
            self._enable_metrics(MetricsRegistry())
        return self.metrics.snapshot()

    def _maybe_stats(self) -> None:
        if self._next_stats is None or time.monotonic() < self._next_stats:
            return
        self._next_stats = time.monotonic() + self.stats_interval_s
        self.stats_sink(
            "-- brisk-ism stats " + "-" * 24 + "\n"
            + render_snapshot(self.metrics_snapshot())
        )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the serve loop to flush and exit."""
        self._stop.set()

    def dispatch(self, msg: protocol.Message, now: int | None = None) -> None:
        """Feed one decoded message into the manager (clock-sync replies
        are consumed inside probes and never reach here).

        *now* is the arrival timestamp; the pump loop reads the clock once
        per cycle and passes it through rather than per message.
        """
        if isinstance(msg, (protocol.TimeReply,)):
            return  # stale probe reply; drop
        if isinstance(msg, protocol.Heartbeat):
            return  # liveness only; activity was noted at the socket
        if isinstance(msg, protocol.Hello):
            self.manager.register_source(msg.exs_id, msg.node_id)
            return
        if isinstance(msg, protocol.Batch):
            self._per_source_counts[msg.exs_id] = (
                self._per_source_counts.get(msg.exs_id, 0) + len(msg.records)
            )
            if self._ack_gate is not None:
                # Durable mode: acks go through the gate, not the
                # admission watermark.  The duplicate check must read the
                # admission watermark *before* on_message advances it.
                admitted = self.manager.admitted_seq(msg.exs_id)
                duplicate = admitted is not None and msg.seq <= admitted
                self.manager.on_message(msg, now_micros() if now is None else now)
                if duplicate:
                    # Re-ack the current watermark so a resumed EXS
                    # retransmitting acked batches converges.
                    if msg.exs_id in self._ack_enabled:
                        self._ack_gate.mark_dirty(msg.exs_id)
                else:
                    self._ack_gate.on_admitted(
                        msg.exs_id, msg.seq, len(msg.records)
                    )
                return
            if self.ack_batches and msg.exs_id in self._ack_enabled:
                # Queue the ack *before* admission so a retransmit of an
                # already-admitted batch still re-sends the (evidently
                # lost) ack that would release it from the EXS outbox.
                self._ack_pending.add(msg.exs_id)
        self.manager.on_message(msg, now_micros() if now is None else now)

    # ------------------------------------------------------------------
    def serve(
        self,
        duration_s: float | None = None,
        until_records: int | None = None,
        expected_connections: int | None = None,
    ) -> None:
        """Run the server loop.

        Stops on :meth:`stop`, after *duration_s*, after the manager has
        received *until_records* records, or — when *expected_connections*
        is given — once every expected connection has come and gone.
        """
        deadline = None if duration_s is None else time.monotonic() + duration_s
        seen_connections = 0
        if self.decode_workers > 0 and self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.decode_workers, thread_name_prefix="ism-decode"
            )
        try:
            while not self._stop.is_set():
                if deadline is not None and time.monotonic() >= deadline:
                    break
                if (
                    until_records is not None
                    and self.manager.stats.records_received >= until_records
                ):
                    break
                if (
                    expected_connections is not None
                    and seen_connections >= expected_connections
                    and not self.connections
                    and not self._pending
                ):
                    # "Come and gone" includes accepted connections whose
                    # Hello has not been read yet — they have come.
                    break
                pump_hist = self._pump_hist
                t0 = time.perf_counter_ns() if pump_hist is not None else 0
                seen_connections += self._pump_connections()
                self.manager.tick(now_micros())
                # Durable acks flush *after* tick: only records the tick
                # released can have reached (and been fsynced by) the log.
                self._flush_durable_acks()
                if pump_hist is not None:
                    pump_hist.observe((time.perf_counter_ns() - t0) / 1_000.0)
                self._maybe_sync()
                self._maybe_throttle()
                self._maybe_monitor()
                self._maybe_stats()
            # Drain in-flight data, then flush the pipeline.  Peers are
            # told to stop only on an explicit stop() — a duration/record
            # bound may just be a phase boundary, with serve() called
            # again.
            self._pump_connections()
            if self._stop.is_set():
                for conn in dict.fromkeys(self.connections.values()):
                    try:
                        conn.send(protocol.Bye(reason="ism shutdown"))
                    except OSError:
                        pass  # peer already gone; the sweep handles it
            self.manager.flush(now_micros())
            if self._ack_gate is not None:
                # The flush released everything still sortable; gate the
                # final acks on one last sync so a phase boundary leaves
                # the log checkpoint aligned with what was acked.
                self._flush_durable_acks()
                try:
                    self.durable_sink.sync()
                except OSError:
                    self.durable_sync_errors += 1
        finally:
            executor, self._executor = self._executor, None
            if executor is not None:
                executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _accept_ready(self) -> int:
        accepted = 0
        while True:
            conn = self.listener.accept(timeout=0.0)
            if conn is None:
                return accepted
            # EXS id unknown until its Hello arrives.
            self._pending.append(conn)
            self._last_activity[conn] = time.monotonic()
            accepted += 1

    def _pump_connections(self) -> int:
        """One staged pump cycle; returns connections accepted.

        The listener shares the ``select`` with the connections, so a new
        EXS interrupts the wait instead of queueing behind it.
        """
        # Dedupe by identity: a relay connection is bound once per source
        # it fronts, and a duplicate entry would make the staged read call
        # recv on an already-drained socket — which blocks the whole loop.
        conns = self._pending + list(dict.fromkeys(self.connections.values()))
        try:
            ready, _, _ = select.select([self.listener, *conns], [], [], 0.005)
        except (OSError, ValueError):
            # One bad fd poisons the whole batched select.  Probe each
            # socket individually and evict the broken ones now — waiting
            # for a lucky sweep would starve every healthy connection for
            # as long as the bad fd sticks around.
            ready = self._probe_sockets(conns)
        accepted = 0
        now = now_micros()
        ready_conns: list[MessageConnection] = []
        for sock in ready:
            if sock is self.listener:
                accepted = self._accept_ready()
            else:
                ready_conns.append(sock)
        if accepted:
            # Pump just-accepted connections in the same cycle — their
            # Hello is usually already buffered, and serve()'s
            # expected_connections accounting assumes accept and first
            # read happen together.
            try:
                fresh, _, _ = select.select(self._pending[-accepted:], [], [], 0.0)
                ready_conns.extend(fresh)
            except (OSError, ValueError):
                pass
        # Stage 1 — framing: drain each readable socket through its
        # reusable buffer, slicing out every complete frame payload.
        mono_now = time.monotonic()
        staged: list[list] = []  # [conn, msgs, payloads, closed]
        for sock in ready_conns:
            payloads: list[bytes] = []
            closed = False
            try:
                payloads = sock.recv_frames(timeout=0.0, assume_ready=True)
            except (ConnectionClosed, ConnectionResetError, XdrDecodeError):
                closed = True
            # Messages a blocking probe already decoded come first so the
            # per-connection order is preserved.
            inbox = sock.drain_inbox()
            if payloads or inbox:
                self._last_activity[sock] = mono_now
            staged.append([sock, inbox, payloads, closed])
        # Stage 2 — decode: batch-decode each connection's payloads.  The
        # pool only helps when several connections brought data in the
        # same cycle; otherwise inline decode skips the handoff cost.
        executor = self._executor
        conn_node = self._conn_node
        if executor is not None and sum(1 for s in staged if s[2]) >= 2:
            futures = [
                (s, executor.submit(self._decode_payloads, s[2], conn_node.get(s[0], 0)))
                for s in staged
                if s[2]
            ]
            for s, future in futures:
                msgs, bad = future.result()
                s[1].extend(msgs)
                s[3] = s[3] or bad
        else:
            for s in staged:
                if s[2]:
                    msgs, bad = self._decode_payloads(s[2], conn_node.get(s[0], 0))
                    s[1].extend(msgs)
                    s[3] = s[3] or bad
        # Stage 3 — route in arrival order, then sweep dead connections.
        for conn, msgs, _payloads, closed in staged:
            for msg in msgs:
                self._route(conn, msg, now)
            if closed:
                self._drop(conn)
        # Acks ride once per cycle (not per batch) so the acked path adds
        # O(cycles) sends, invisible next to the batch stream itself.
        self._flush_acks()
        self._sweep_idle(mono_now)
        return accepted

    def _probe_sockets(
        self, conns: list[MessageConnection]
    ) -> list[MessageConnection | MessageListener]:
        """Per-socket 0-timeout probes; evict sockets whose fd is broken."""
        ready: list[MessageConnection | MessageListener] = []
        try:
            r, _, _ = select.select([self.listener], [], [], 0.0)
            ready.extend(r)
        except (OSError, ValueError):
            pass  # listener itself is sick; serve() bounds end the loop
        for conn in conns:
            try:
                r, _, _ = select.select([conn], [], [], 0.0)
            except (OSError, ValueError):
                self._drop(conn)
            else:
                ready.extend(r)
        return ready

    def _flush_acks(self) -> None:
        """Send the cycle's cumulative acks, one control frame per
        connection: an ``AckBundle`` toward a capability-advertising
        multiplexing peer, plain per-source ``Ack`` frames otherwise.

        In durable mode this is a no-op: an admission-time ack would let
        the EXS drop records that are not on disk yet — durable acks go
        through :meth:`_flush_durable_acks` after the tick instead.
        """
        if self._ack_gate is not None:
            return
        if not self._ack_pending:
            return
        pending, self._ack_pending = self._ack_pending, set()
        per_conn: dict[MessageConnection, list[tuple[int, int]]] = {}
        for exs_id in sorted(pending):
            conn = self.connections.get(exs_id)
            if conn is None:
                continue  # source vanished before its ack; resume covers it
            up_to = self.manager.admitted_seq(exs_id)
            if up_to is None:
                continue
            per_conn.setdefault(conn, []).append((exs_id, up_to))
        self._send_ack_pairs(per_conn)

    def _send_ack_pairs(
        self, per_conn: dict[MessageConnection, list[tuple[int, int]]]
    ) -> None:
        caps = self._peer_caps
        for conn, pairs in per_conn.items():
            try:
                if len(pairs) > 1 and all(
                    caps.get(e, 0) & protocol.CAP_ACK_BUNDLE for e, _ in pairs
                ):
                    conn.send(protocol.AckBundle(acks=tuple(pairs)))
                else:
                    conn.send_many(
                        [
                            protocol.encode_message(
                                protocol.Ack(exs_id=e, up_to_seq=s)
                            )
                            for e, s in pairs
                        ]
                    )
            except OSError:
                self._drop(conn)

    def _flush_durable_acks(self) -> None:
        """Durable-mode ack path: advance the gate over fully-released
        batches, fsync + checkpoint the log, and only then put the acked
        watermarks on the wire.

        The order is the whole guarantee: by the time an EXS hears an
        ack, its records have left the sorter, reached the consumers
        (the log among them), and been fsynced past — so dropping them
        from the outbox can no longer lose them.  A failing sync keeps
        the gate dirty and withholds the acks; the EXS outboxes absorb
        the stall and the server keeps serving.
        """
        gate = self._ack_gate
        if gate is None:
            return
        gate.advance(
            self.manager.sorter.released_by_source, self.manager.cre.parked_now
        )
        if not gate.has_dirty:
            return
        try:
            self.durable_sink.sync(gate.acked_watermarks())
        except OSError:
            # Log unwritable: no acks.  The dirty set survives, so the
            # next cycle retries; meanwhile nothing is promised upstream.
            self.durable_sync_errors += 1
            return
        gate.commit()
        per_conn: dict[MessageConnection, list[tuple[int, int]]] = {}
        for exs_id in gate.take_dirty():
            if exs_id not in self._ack_enabled:
                continue
            seq = gate.committed(exs_id)
            if seq is None:
                continue
            conn = self.connections.get(exs_id)
            if conn is None:
                continue
            per_conn.setdefault(conn, []).append((exs_id, seq))
        self._send_ack_pairs(per_conn)

    def _sweep_idle(self, mono_now: float) -> None:
        """Drop connections silent past the idle deadline (hung peers)."""
        if self.idle_deadline_s is None:
            return
        stale = [
            conn
            for conn, last in self._last_activity.items()
            if mono_now - last > self.idle_deadline_s
        ]
        for conn in stale:
            self.idle_drops += 1
            self._drop(conn)

    @staticmethod
    def _decode_payloads(
        payloads: list[bytes], node_id: int = 0
    ) -> tuple[list[protocol.Message], bool]:
        """Decode stage: payloads → messages, in order.

        Stops at the first malformed payload — everything decoded before
        it is still delivered, and the flag tells the route stage to drop
        the connection (the stream past a bad payload is untrustworthy).

        *node_id* is the connection's Hello-advertised node, pre-stamped
        onto decoded batch records (a stale hint is corrected by the
        manager's stamping pass).
        """
        msgs: list[protocol.Message] = []
        append = msgs.append
        try:
            for payload in payloads:
                append(protocol.decode_message(payload, node_id=node_id))
        except XdrDecodeError:
            return msgs, True
        return msgs, False

    def _route(
        self, conn: MessageConnection, msg: protocol.Message, now: int | None = None
    ) -> None:
        if isinstance(msg, protocol.Hello):
            self.manager.register_source(msg.exs_id, msg.node_id)
            if conn in self._pending:
                self._pending.remove(conn)
            stale = self.connections.get(msg.exs_id)
            if stale is not None and stale is not conn:
                # Reconnect raced the EOF of the old socket: retire the
                # stale connection *before* binding the new one, so the
                # drop cannot evict the fresh binding.
                self._drop(stale)
            self.connections[msg.exs_id] = conn
            sources = self._conn_sources.setdefault(conn, set())
            sources.add(msg.exs_id)
            # The decode-time node hint only holds while every source on
            # the connection agrees on it; a relay fronting several nodes
            # clears it and the manager's stamping pass does the work.
            if len(sources) == 1:
                self._conn_node[conn] = msg.node_id
            elif self._conn_node.get(conn) != msg.node_id:
                self._conn_node[conn] = 0
            self._peer_caps[msg.exs_id] = msg.capabilities
            if self.ack_batches and msg.wants_ack:
                self._ack_enabled.add(msg.exs_id)
                # Resume handshake: tell the EXS where this manager's
                # history ends so it can drop acked outbox entries and
                # retransmit the rest.  -1 = no state, the whole outbox
                # is unconfirmed.  Durable mode quotes the *committed*
                # (synced-to-log) watermark, not the admission watermark:
                # admitted-but-unsynced batches die with the process, so
                # the EXS must keep them.
                if self._ack_gate is not None:
                    last = self._ack_gate.committed(msg.exs_id)
                else:
                    last = self.manager.admitted_seq(msg.exs_id)
                try:
                    conn.send(
                        protocol.HelloReply(
                            exs_id=msg.exs_id,
                            last_seq=-1 if last is None else last,
                            capabilities=(
                                SERVER_CAPS if msg.capabilities else 0
                            ),
                        )
                    )
                except OSError:
                    self._drop(conn)
                    return
            # Re-apply the desired steering state: a filter pushed while
            # this source was down (or one it lost to a crash) lands
            # right behind the resume handshake.  The epoch makes a
            # duplicate apply a no-op, sampling counters untouched.
            desired = self._desired_filters.get(msg.exs_id)
            if desired is not None:
                self._send_filter(msg.exs_id, desired)
            self._rebuild_sync_master()
            return
        if isinstance(msg, protocol.Bye):
            self._drop(conn)
            return
        self.dispatch(msg, now)

    def _drop(self, conn: MessageConnection) -> None:
        # Idempotence by membership, not a tombstone set: a connection the
        # server no longer tracks anywhere was already dropped (e.g. Bye
        # routed, then EOF seen in the same cycle).  The old `_dead` set
        # grew one entry per connection for the server's whole lifetime.
        tracked = (
            conn in self._last_activity
            or conn in self._conn_sources
            or conn in self._pending
        )
        if not tracked:
            return
        self._last_activity.pop(conn, None)
        self._conn_node.pop(conn, None)
        sources = self._conn_sources.pop(conn, None)
        if sources:
            for exs_id in sources:
                # Only evict an exs→conn binding if it still points at
                # *this* connection: after a reconnect the id maps to the
                # new socket, and reaping the stale socket must not tear
                # the live one out of the ack/sync sets.
                if self.connections.get(exs_id) is conn:
                    self.connections.pop(exs_id)
                    self._ack_enabled.discard(exs_id)
            self._rebuild_sync_master()
        if conn in self._pending:
            self._pending.remove(conn)
        self.closed_connections += 1
        self._closed_bytes += conn.bytes_received
        self._closed_frames += conn.frames_received
        conn.close()

    # ------------------------------------------------------------------
    def set_filter(self, exs_id: int, spec) -> bool:
        """Push a source-side :class:`~repro.core.filtering.FilterSpec`
        down to one external sensor (§2: the user specifies what to
        monitor; the EXS drops the rest before transfer).

        The spec is recorded as the desired steering state for that
        source and stamped with a server-monotone filter epoch, so a
        disconnected (or reconnecting) EXS receives it the moment its
        next Hello lands — and duplicate applies are no-ops at the EXS.
        Returns False when the spec could not be sent *right now* (it
        will be re-applied on (re)connect).
        """
        self._filter_epoch += 1
        msg = protocol.SetFilter.from_spec(
            spec, epoch=self._filter_epoch, target_exs_id=exs_id
        )
        self._desired_filters[exs_id] = msg
        return self._send_filter(exs_id, msg)

    def _send_filter(self, exs_id: int, msg: protocol.SetFilter) -> bool:
        """Put one SetFilter on the wire, downgrading the frame to its
        legacy form for peers that never advertised ``CAP_STEERING``."""
        conn = self.connections.get(exs_id)
        if conn is None:
            return False
        if not self._peer_caps.get(exs_id, 0) & protocol.CAP_STEERING:
            msg = msg.downgraded()
        try:
            conn.send(msg)
        except OSError:
            self._drop(conn)
            return False
        return True

    # ------------------------------------------------------------------
    # runtime monitor (repro.monitor): engine attachment + actuation
    # ------------------------------------------------------------------
    def attach_monitor(self, spec: MonitorSpec) -> MonitorEngine:
        """Attach a monitor engine evaluating *spec* over the delivered
        stream.  The engine joins the manager's consumers (so it sees
        exactly what every tool sees) and is ticked once per pump cycle;
        its actions actuate through this server's control channel."""
        engine = MonitorEngine(spec, actuator=self)
        self.manager.consumers.append(engine)
        self.monitor = engine
        return engine

    def _maybe_monitor(self) -> None:
        if self.monitor is not None:
            self.monitor.tick(now_micros())

    # -- Actuator protocol (repro.monitor.engine.Actuator) -------------
    def push_filter(self, exs_id: int, spec) -> bool:
        """Actuator hook: same path as user steering."""
        return self.set_filter(exs_id, spec)

    def request_sync_round(self) -> None:
        """Actuator hook: schedule an extra clock-sync round."""
        master = self.sync_master
        if master is not None:
            master.request_extra_round()

    def emit_alert(self, record: EventRecord) -> None:
        """Actuator hook: inject an alert record into the delivery path."""
        self.manager.inject(record)

    # ------------------------------------------------------------------
    def _rebuild_sync_master(self) -> None:
        if self.sync_config is None or not self.connections:
            self.sync_master = None
            self.manager.sync_master = None
            return
        slaves = [
            TcpSyncSlave(self, conn, exs_id)
            for exs_id, conn in self.connections.items()
        ]
        self.sync_master = BriskSyncMaster(slaves, self.sync_config)
        self.manager.sync_master = self.sync_master

    def _maybe_throttle(self) -> None:
        if self.throttle is None:
            return
        if time.monotonic() < self._next_throttle:
            return
        self._next_throttle = time.monotonic() + self.throttle_period_s
        self.throttle.observe(now_micros(), dict(self._per_source_counts))

    def _maybe_sync(self) -> None:
        master = self.sync_master
        if master is None:
            return
        due = time.monotonic() >= self._next_sync
        extra = master.consume_extra_round_request()
        if not due and not extra:
            return
        self._next_sync = time.monotonic() + self.sync_period_s
        try:
            master.run_round()
            self.sync_rounds_completed += 1
        except (TimeoutError, ConnectionClosed, ConnectionResetError):
            pass  # a slave vanished mid-round; the next pump sweeps it


# ----------------------------------------------------------------------
# the sharded ISM: one ingest plane, N sort/deliver workers
# ----------------------------------------------------------------------

#: Peek offsets into an undecoded wire frame (big-endian XDR payload):
#: message type at byte 4, and — for Batch frames — exs_id at byte 12.
_PEEK_U32 = struct.Struct(">I")
_MSG_TYPE_OFFSET = 4
_BATCH_EXS_OFFSET = 12

#: Message-type ints pre-resolved for the frame-routing hot loop (an
#: ``IntEnum`` attribute chain costs two lookups per comparison).
_MT_BATCH = int(protocol.MsgType.BATCH)
_MT_HELLO = int(protocol.MsgType.HELLO)
_MT_BYE = int(protocol.MsgType.BYE)
_MT_HEARTBEAT = int(protocol.MsgType.HEARTBEAT)
_MT_TIME_REPLY = int(protocol.MsgType.TIME_REPLY)
_MT_COMPRESSED = int(protocol.MsgType.COMPRESSED)


class _ShardHandle:
    """Dispatcher-side state for one shard worker process."""

    __slots__ = (
        "index",
        "shared_in",
        "shared_out",
        "process",
        "pipe",
        "staged",
        "overflow",
        "received",
        "delivered",
        "received_base",
        "delivered_base",
        "watermark",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.shared_in = None
        self.shared_out = None
        self.process = None
        self.pipe = None
        #: Drained-but-uncommitted output-ring items, in ring order:
        #: ("d", records) for data chunks, ("a", exs_id, seq) for acks.
        self.staged: list[tuple] = []
        #: Frames routed here that the input ring had no room for.
        self.overflow: deque[bytes] = deque()
        #: Cumulative counters from the latest commit record, plus the
        #: totals carried over from dead incarnations of this shard.
        self.received = 0
        self.delivered = 0
        self.received_base = 0
        self.delivered_base = 0
        self.watermark = 0


class ShardedIsmServer:
    """The sharded ISM: a thin ingest dispatcher over N shard workers.

    The dispatcher owns the listener and every EXS socket, but does *no*
    decode, sort, or causal work: each frame is routed — by the node id
    (``partition_by="node"``, the default) or the EXS id
    (``partition_by="exs"``) its connection's Hello advertised — onto the
    owning shard's shared-memory input ring still encoded.  Shard workers
    (:mod:`repro.runtime.shard`) decode, sort, match, and push released
    records back over per-shard output rings, and the dispatcher fans the
    (optionally k-way merged, see :class:`~repro.core.merge.OrderedMerger`)
    stream out to the consumers.

    Delivery guarantees are per-shard and crash-safe via the commit
    protocol: output-ring items are *staged* here and released downstream
    only when the shard's COMMIT record arrives; ack records are likewise
    applied (resume cache + wire ``Ack``) only at commit.  When a worker
    dies, the uncommitted tail is discarded, the shard's connections are
    closed (forcing EXS resume), and a replacement worker is spawned with
    the committed ack watermarks as its dedup state — so a SIGKILL'd shard
    costs retransmission, never loss or duplication.

    Clock sync and source throttling are not yet supported in sharded
    mode — the single-process :class:`IsmServer` remains the tool for
    deployments that need them.
    """

    def __init__(
        self,
        consumers: list[Consumer],
        listener: MessageListener,
        *,
        shards: int = 2,
        partition_by: str = "node",
        ism_config: IsmConfig | None = None,
        ordered_merge: bool = True,
        ack_batches: bool = True,
        idle_deadline_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        stats_interval_s: float | None = None,
        stats_sink=None,
        input_ring_bytes: int = 4 << 20,
        output_ring_bytes: int = 8 << 20,
        overflow_limit: int = 10_000,
        drain_limit: int = 2_048,
        shard_idle_timeout_s: float = 0.002,
        commit_interval_s: float = 0.05,
        mp_context=None,
        durable_sink=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if partition_by not in ("node", "exs"):
            raise ValueError("partition_by must be 'node' or 'exs'")
        if idle_deadline_s is not None and idle_deadline_s <= 0:
            raise ValueError("idle_deadline_s must be positive or None")
        if stats_interval_s is not None and stats_interval_s <= 0:
            raise ValueError("stats_interval_s must be positive or None")
        self.consumers = list(consumers)
        self.listener = listener
        self.shards = shards
        self.partition_by = partition_by
        self.ism_config = ism_config if ism_config is not None else IsmConfig()
        self.ack_batches = ack_batches
        self.idle_deadline_s = idle_deadline_s
        self.input_ring_bytes = input_ring_bytes
        self.output_ring_bytes = output_ring_bytes
        self.overflow_limit = overflow_limit
        self.drain_limit = drain_limit
        self.shard_idle_timeout_s = shard_idle_timeout_s
        self.commit_interval_s = commit_interval_s
        self._ctx = mp_context if mp_context is not None else mp.get_context("spawn")
        self._merger: OrderedMerger | None = OrderedMerger() if ordered_merge else None
        self._handles: list[_ShardHandle] = [_ShardHandle(i) for i in range(shards)]
        self._workers_running = False
        self._stopping = False
        # Socket-side state (mirrors IsmServer's bookkeeping).
        self.connections: dict[int, MessageConnection] = {}
        #: Sources that spoke a Hello on each connection (a relay
        #: multiplexes many over one socket).
        self._conn_sources: dict[MessageConnection, set[int]] = {}
        #: Cached shard route per connection — present only while every
        #: source on the connection maps to the same shard, so the hot
        #: routing loop can skip the per-frame exs-id peek.
        self._conn_shard: dict[MessageConnection, int] = {}
        self._exs_shard: dict[int, int] = {}
        #: Capability bits each source's Hello advertised.
        self._peer_caps: dict[int, int] = {}
        #: Desired steering state per EXS id (same discipline as
        #: :class:`IsmServer`): re-applied on every (re)connect, epoch-
        #: stamped so duplicate applies are no-ops at the EXS.
        self._desired_filters: dict[int, protocol.SetFilter] = {}
        self._filter_epoch = 0
        #: Attached :class:`~repro.monitor.engine.MonitorEngine`.
        self.monitor: MonitorEngine | None = None
        #: Highest commit-released ack per source this cycle, flushed as
        #: one control frame per connection by :meth:`_flush_cycle_acks`.
        self._cycle_acks: dict[int, int] = {}
        self._ack_enabled: set[int] = set()
        self._last_activity: dict[MessageConnection, float] = {}
        self._pending: list[MessageConnection] = []
        self._stop = threading.Event()
        #: Committed ack watermarks per EXS — the shard-respawn resume
        #: state, and what survives a serve()/serve() phase boundary.
        self._resume: dict[int, int] = {}
        #: Durable mode (PR 8): acks a shard released at COMMIT are
        #: *held* here as ``(commit watermark, exs_id, seq)`` until the
        #: ordered merge has emitted every record at or below that
        #: watermark AND the commit log has fsynced past them — only a
        #: sync composes the shard commit protocol with on-disk
        #: durability.  The sink is the same duck type as
        #: :class:`IsmServer`'s (``sync`` / ``source_watermarks``).
        self.durable_sink = durable_sink
        self._held_acks: list[tuple[int, int, int]] = []
        #: Watermarks actually synced to the log — what a HelloReply may
        #: quote in durable mode (the shard's committed watermark can run
        #: ahead of the disk).
        self._durable_watermarks: dict[int, int] = {}
        self.durable_sync_errors = Counter("dispatch.durable_sync_errors")
        if durable_sink is not None:
            recovered = durable_sink.source_watermarks()
            self._resume.update(recovered)
            self._durable_watermarks.update(recovered)
        #: Shard metrics frozen just before worker shutdown, so the
        #: post-run stats view still has a per-shard breakdown.
        self._final_shard_snaps: list[tuple[int, MetricsSnapshot]] | None = None
        # Counters (int-like; adopted by the registry when metrics are on).
        self.closed_connections = Counter("wire.closed_connections")
        self.idle_drops = Counter("ism.idle_drops")
        self.shard_restarts = Counter("dispatch.shard_restarts")
        self.discarded_records = Counter("dispatch.discarded_records")
        self.frames_forwarded = Counter("dispatch.frames_forwarded")
        self.commits_processed = Counter("dispatch.commits")
        self.acks_forwarded = Counter("dispatch.acks_forwarded")
        self.ack_frames_sent = Counter("dispatch.ack_frames_sent")
        self.unrouted_batches = Counter("dispatch.unrouted_batches")
        self.unsupported_frames = Counter("dispatch.unsupported_frames")
        self.consumer_errors = Counter("dispatch.consumer_errors")
        self.records_delivered = Counter("dispatch.records_delivered")
        self._closed_bytes = 0
        self._closed_frames = 0
        self.metrics: MetricsRegistry | None = None
        self.stats_interval_s = stats_interval_s
        self.stats_sink = stats_sink if stats_sink is not None else print
        self._next_stats = (
            None
            if stats_interval_s is None
            else time.monotonic() + stats_interval_s
        )
        if metrics is not None or stats_interval_s is not None:
            self._enable_metrics(metrics or MetricsRegistry())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _enable_metrics(self, registry: MetricsRegistry) -> None:
        self.metrics = registry
        registry.adopt_counter(self.closed_connections)
        registry.adopt_counter(self.idle_drops)
        registry.adopt_counter(self.shard_restarts)
        registry.adopt_counter(self.discarded_records)
        registry.adopt_counter(self.frames_forwarded)
        registry.adopt_counter(self.commits_processed)
        registry.adopt_counter(self.acks_forwarded)
        registry.adopt_counter(self.ack_frames_sent)
        registry.adopt_counter(self.unrouted_batches)
        registry.adopt_counter(self.unsupported_frames)
        registry.adopt_counter(self.consumer_errors)
        registry.adopt_counter(self.records_delivered)
        registry.adopt_counter(self.durable_sync_errors)
        registry.gauge_fn(
            "dispatch.held_acks", lambda: len(self._held_acks)
        )
        registry.gauge_fn("wire.connections", lambda: len(self.connections))
        registry.gauge_fn("wire.pending_connections", lambda: len(self._pending))
        registry.gauge_fn(
            "wire.bytes_received",
            lambda: self._closed_bytes
            + sum(c.bytes_received for c in self._live_conns()),
        )
        registry.gauge_fn(
            "wire.frames_received",
            lambda: self._closed_frames
            + sum(c.frames_received for c in self._live_conns()),
        )
        registry.gauge_fn(
            "dispatch.overflow_frames",
            lambda: sum(len(h.overflow) for h in self._handles),
        )
        registry.gauge_fn(
            "dispatch.staged_chunks",
            lambda: sum(len(h.staged) for h in self._handles),
        )
        if self._merger is not None:
            merger = self._merger
            registry.gauge_fn("merge.held", lambda: merger.held)
            registry.gauge_fn("merge.emitted", lambda: merger.stats.emitted)
            registry.gauge_fn(
                "merge.regressions", lambda: merger.stats.regressions
            )

    def _live_conns(self) -> list[MessageConnection]:
        # Deduped by identity: a relay conn is bound once per source.
        return self._pending + list(dict.fromkeys(self.connections.values()))

    @property
    def records_received(self) -> int:
        """Records admitted fleet-wide, per the latest shard commits
        (dead incarnations' committed totals included)."""
        return sum(h.received_base + h.received for h in self._handles)

    def shard_snapshots(
        self, timeout_s: float = 2.0
    ) -> list[tuple[int, MetricsSnapshot]]:
        """Fetch one metrics snapshot per live shard over the control
        pipes (the stats RPC the brisk-stats shard view is built on).
        After shutdown, returns the final pre-stop snapshots instead."""
        if not self._workers_running and self._final_shard_snaps is not None:
            return list(self._final_shard_snaps)
        out: list[tuple[int, MetricsSnapshot]] = []
        for h in self._handles:
            proc, pipe = h.process, h.pipe
            if proc is None or pipe is None or not proc.is_alive():
                continue
            try:
                pipe.send(RPC_SNAPSHOT)
                ready, _, _ = select.select([pipe], [], [], timeout_s)
                if not ready:
                    continue
                obj = pipe.recv()
            except (OSError, EOFError, BrokenPipeError):
                continue
            if isinstance(obj, MetricsSnapshot):
                out.append((h.index, obj))
        return out

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Fleet-merged snapshot: dispatcher registry + every shard."""
        if self.metrics is None:
            self._enable_metrics(MetricsRegistry())
        snap = self.metrics.snapshot()
        for _, shard_snap in self.shard_snapshots():
            snap = snap.merge(shard_snap)
        return snap

    def stats_dump(self) -> dict:
        """JSON-able stats: dispatcher scalars plus per-shard scalars —
        what ``brisk-ism --stats-json`` writes and ``brisk-stats shards``
        renders."""
        if self.metrics is None:
            self._enable_metrics(MetricsRegistry())
        return {
            "dispatcher": dict(self.metrics.snapshot().scalars()),
            "shards": {
                str(idx): dict(snap.scalars())
                for idx, snap in self.shard_snapshots()
            },
        }

    def _maybe_stats(self) -> None:
        if self._next_stats is None or time.monotonic() < self._next_stats:
            return
        self._next_stats = time.monotonic() + self.stats_interval_s
        if self.metrics is None:
            self._enable_metrics(MetricsRegistry())
        self.stats_sink(
            "-- brisk-ism (sharded) stats " + "-" * 14 + "\n"
            + render_shard_breakdown(
                self.shard_snapshots(), self.metrics.snapshot()
            )
        )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_shard(self, handle: _ShardHandle) -> None:
        idx = handle.index
        handle.shared_in = create_shared_ring(self.input_ring_bytes)
        handle.shared_out = create_shared_ring(self.output_ring_bytes)
        parent, child = self._ctx.Pipe(duplex=True)
        resume = {
            exs_id: seq
            for exs_id, seq in self._resume.items()
            if self._exs_shard.get(exs_id) == idx
        }
        config = ShardConfig(
            shard_id=idx,
            input_ring=handle.shared_in.name,
            output_ring=handle.shared_out.name,
            ism=self.ism_config,
            resume_state=resume,
            idle_timeout_s=self.shard_idle_timeout_s,
            commit_interval_s=self.commit_interval_s,
        )
        handle.process = self._ctx.Process(
            target=shard_worker_main, args=(config, child), daemon=True
        )
        handle.process.start()
        child.close()
        handle.pipe = parent
        handle.received = 0
        handle.delivered = 0
        handle.staged.clear()
        if self._merger is not None:
            self._merger.reopen_shard(idx)

    def _ensure_workers(self) -> None:
        if self._workers_running:
            return
        self._final_shard_snaps = None
        for handle in self._handles:
            self._spawn_shard(handle)
        self._workers_running = True

    def start_workers(self) -> None:
        """Spawn the shard workers ahead of :meth:`serve` (idempotent).

        Useful when serve-loop latency matters from the first frame —
        benchmarks, and deployments that want the ~1 s/worker spawn cost
        paid before the listener is announced."""
        self._ensure_workers()

    def _teardown_shard(self, handle: _ShardHandle, join_timeout_s: float) -> None:
        if handle.pipe is not None:
            try:
                handle.pipe.close()
            except OSError:
                pass
            handle.pipe = None
        if handle.process is not None:
            handle.process.join(timeout=join_timeout_s)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.process = None
        for shared in (handle.shared_in, handle.shared_out):
            if shared is not None:
                try:
                    shared.close()
                except (OSError, BufferError):
                    pass
        handle.shared_in = None
        handle.shared_out = None

    def _check_shards(self) -> None:
        """Detect dead workers; salvage their committed prefix, drop
        their connections (forcing EXS resume), and respawn."""
        if not self._workers_running or self._stopping:
            return
        for handle in self._handles:
            proc = handle.process
            if proc is None or proc.is_alive():
                continue
            self.shard_restarts += 1
            idx = handle.index
            # Salvage: everything up to the last commit in the old output
            # ring is fully acked state and must be delivered; the
            # uncommitted tail is discarded — its EXSs were never acked
            # for it and will retransmit to the replacement worker.
            try:
                if handle.shared_out is not None:
                    self._ingest_items(
                        handle, handle.shared_out.ring.drain_bytes()
                    )
            except (OSError, ValueError):
                pass
            discarded = sum(
                len(item[1]) for item in handle.staged if item[0] == "d"
            )
            self.discarded_records += discarded
            handle.staged.clear()
            # Frames stranded in the dead worker's input ring (and any
            # overflow queued behind them) are gone with the segment; the
            # forced reconnect below replays them from the EXS outbox.
            handle.overflow.clear()
            if self._merger is not None:
                self._merger.close_shard(idx)
            handle.received_base += handle.received
            handle.delivered_base += handle.delivered
            # Any connection with at least one source on the dead shard
            # is dropped whole (a multiplexed relay re-Hellos every
            # source on reconnect and retransmits from its outbox).
            for conn, sources in list(self._conn_sources.items()):
                if any(self._exs_shard.get(e) == idx for e in sources):
                    self._drop_conn(conn)
            self._teardown_shard(handle, join_timeout_s=1.0)
            self._spawn_shard(handle)

    def _shutdown_workers(self, flush_timeout_s: float = 15.0) -> None:
        """Graceful worker stop: drain overflow in, commits out, merge."""
        if not self._workers_running:
            return
        self._stopping = True
        deadline = time.monotonic() + flush_timeout_s
        while (
            any(h.overflow for h in self._handles)
            and time.monotonic() < deadline
        ):
            self._flush_overflow()
            self._drain_shards()
            # brisk-lint: disable=BRK601 (shutdown drain: 1ms tick, deadline-bounded)
            time.sleep(0.001)
        # Freeze per-shard metrics while the workers still answer RPCs
        # (the post-run stats_dump/brisk-stats view reads this cache).
        self._final_shard_snaps = self.shard_snapshots(timeout_s=1.0)
        for handle in self._handles:
            if handle.pipe is not None:
                try:
                    handle.pipe.send(RPC_STOP)
                except (OSError, BrokenPipeError):
                    pass
        while time.monotonic() < deadline:
            self._drain_shards()
            if all(
                h.process is None or not h.process.is_alive()
                for h in self._handles
            ):
                break
            # brisk-lint: disable=BRK601 (worker-exit poll: 1ms tick, same shutdown deadline)
            time.sleep(0.001)
        # Workers have exited (or timed out): collect the shutdown
        # commits still in the rings, then tear everything down.
        for handle in self._handles:
            try:
                if handle.shared_out is not None:
                    self._ingest_items(
                        handle, handle.shared_out.ring.drain_bytes()
                    )
            except (OSError, ValueError):
                pass
            discarded = sum(
                len(item[1]) for item in handle.staged if item[0] == "d"
            )
            if discarded:
                self.discarded_records += discarded
            handle.staged.clear()
            self._teardown_shard(handle, join_timeout_s=2.0)
        if self.durable_sink is None:
            self._flush_cycle_acks()
            if self._merger is not None:
                self._deliver(self._merger.flush())
        else:
            # Durable order: final merge flush delivers everything still
            # held, then _release_durable_acks syncs the ack watermarks
            # and stages only the acks that sync covered — so they can go
            # on the wire before the trailing full-state sync, whose
            # failure must not gate (or be followed by) any ack release.
            if self._merger is not None:
                self._deliver(self._merger.flush())
            self._release_durable_acks(force=True)
            self._flush_cycle_acks()
            try:
                self.durable_sink.sync()
            except OSError:
                self.durable_sync_errors += 1
        self._workers_running = False
        self._stopping = False

    # ------------------------------------------------------------------
    # serve loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the serve loop to flush and exit."""
        self._stop.set()

    def serve(
        self,
        duration_s: float | None = None,
        until_records: int | None = None,
        expected_connections: int | None = None,
    ) -> None:
        """Run the dispatcher loop (same stop conditions as
        :meth:`IsmServer.serve`).

        Each call spawns the shard workers and winds them down before
        returning: worker shutdown flushes every parked record through
        the commit protocol, so a phase boundary (duration/record bound)
        loses nothing and a later ``serve`` resumes from the committed
        ack watermarks.
        """
        deadline = None if duration_s is None else time.monotonic() + duration_s
        seen_connections = 0
        self._ensure_workers()
        while not self._stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            if (
                until_records is not None
                and self.records_received >= until_records
            ):
                break
            if (
                expected_connections is not None
                and seen_connections >= expected_connections
                and not self.connections
                and not self._pending
            ):
                break
            seen_connections += self._pump_sockets()
            self._flush_overflow()
            self._drain_shards()
            self._check_shards()
            self._maybe_monitor()
            self._maybe_stats()
        self._pump_sockets()
        if self._stop.is_set():
            for conn in dict.fromkeys(self.connections.values()):
                try:
                    conn.send(protocol.Bye(reason="ism shutdown"))
                except OSError:
                    pass
        self._shutdown_workers()

    def close(self) -> None:
        """Tear down workers and rings without flushing (idempotent)."""
        self._stopping = True
        for handle in self._handles:
            self._teardown_shard(handle, join_timeout_s=0.5)
        self._workers_running = False
        self._stopping = False

    # ------------------------------------------------------------------
    # ingest plane: sockets → input rings
    # ------------------------------------------------------------------
    def _accept_ready(self) -> int:
        accepted = 0
        while True:
            conn = self.listener.accept(timeout=0.0)
            if conn is None:
                return accepted
            self._pending.append(conn)
            self._last_activity[conn] = time.monotonic()
            accepted += 1

    def _pump_sockets(self) -> int:
        """One ingest cycle: accept, drain readable sockets, route frames.

        Read-backpressure: connections whose shard's overflow queue is
        past the bound are left out of the ``select`` set, so the kernel
        socket buffer (and ultimately the EXS outbox) absorbs the burst
        instead of dispatcher memory.
        """
        blocked = {
            h.index
            for h in self._handles
            if len(h.overflow) > self.overflow_limit
        }
        conns = [
            conn
            for conn in self._live_conns()
            if self._conn_shard.get(conn) not in blocked
        ]
        try:
            ready, _, _ = select.select([self.listener, *conns], [], [], 0.005)
        except (OSError, ValueError):
            ready = self._probe_sockets(conns)
        accepted = 0
        ready_conns: list[MessageConnection] = []
        for sock in ready:
            if sock is self.listener:
                accepted = self._accept_ready()
            else:
                ready_conns.append(sock)
        if accepted:
            try:
                fresh, _, _ = select.select(self._pending[-accepted:], [], [], 0.0)
                ready_conns.extend(fresh)
            except (OSError, ValueError):
                pass
        mono_now = time.monotonic()
        for conn in ready_conns:
            payloads: list[bytes] = []
            closed = False
            try:
                payloads = conn.recv_frames(timeout=0.0, assume_ready=True)
            except (ConnectionClosed, OSError, XdrDecodeError):
                # OSError covers resets and EBADF: a conn the ack-flush
                # path dropped this cycle may still sit in the ready list.
                closed = True
            if payloads:
                self._last_activity[conn] = mono_now
                self._route_frames(conn, payloads)
            if closed:
                self._drop_conn(conn)
        self._sweep_idle(mono_now)
        return accepted

    def _probe_sockets(
        self, conns: list[MessageConnection]
    ) -> list[MessageConnection | MessageListener]:
        """Per-socket 0-timeout probes; evict sockets whose fd is broken."""
        ready: list[MessageConnection | MessageListener] = []
        try:
            r, _, _ = select.select([self.listener], [], [], 0.0)
            ready.extend(r)
        except (OSError, ValueError):
            pass
        for conn in conns:
            try:
                r, _, _ = select.select([conn], [], [], 0.0)
            except (OSError, ValueError):
                self._drop_conn(conn)
            else:
                ready.extend(r)
        return ready

    def _route_frames(
        self, conn: MessageConnection, payloads: list[bytes]
    ) -> None:
        # The dispatcher's hottest loop: every inbound frame passes
        # through here.  Attribute and dict lookups are hoisted out of
        # the per-frame body, and batch frames ride the connection's
        # cached shard route when one is pinned — re-peeking the exs id
        # only for multiplexed connections whose sources span shards.
        unpack_from = _PEEK_U32.unpack_from
        exs_shard = self._exs_shard
        forward = self._forward
        conn_idx = self._conn_shard.get(conn)
        for payload in payloads:
            if len(payload) < 8:
                self._drop_conn(conn)
                return
            mtype = unpack_from(payload, _MSG_TYPE_OFFSET)[0]
            if mtype == _MT_BATCH:
                idx = conn_idx
                if idx is None:
                    if len(payload) < _BATCH_EXS_OFFSET + 4:
                        self._drop_conn(conn)
                        return
                    exs_id = unpack_from(payload, _BATCH_EXS_OFFSET)[0]
                    idx = exs_shard.get(exs_id)
                    if idx is None:
                        # Batch before Hello: route provisionally by the
                        # peeked exs id so nothing is dropped; the
                        # eventual Hello pins the assignment (same modulo
                        # for partition_by="exs"; for "node" a later
                        # Hello could disagree, so it is counted as a
                        # routing smell).
                        idx = exs_id % self.shards
                        self.unrouted_batches += 1
                forward(idx, payload)
            elif mtype == _MT_COMPRESSED:
                # Peek through the envelope without inflating the whole
                # payload; the owning shard decompresses at decode time.
                try:
                    inner, exs_id = protocol.peek_compressed(payload)
                except protocol.ProtocolError:
                    self._drop_conn(conn)
                    return
                if inner != _MT_BATCH:
                    self.unsupported_frames += 1
                    continue
                idx = conn_idx
                if idx is None:
                    idx = exs_shard.get(exs_id)
                    if idx is None:
                        idx = exs_id % self.shards
                        self.unrouted_batches += 1
                forward(idx, payload)
            elif mtype == _MT_HELLO:
                try:
                    msg = protocol.decode_message(payload)
                except (XdrDecodeError, ValueError):
                    self._drop_conn(conn)
                    return
                if isinstance(msg, protocol.Hello):
                    self._bind_hello(conn, msg, payload)
                    # The Hello may have pinned or unpinned the cached
                    # route for frames later in this same list.
                    conn_idx = self._conn_shard.get(conn)
            elif mtype == _MT_BYE:
                self._drop_conn(conn)
                return
            elif mtype == _MT_HEARTBEAT:
                pass  # liveness only; activity was noted at the socket
            elif mtype == _MT_TIME_REPLY:
                pass  # stale probe reply; sharded mode runs no sync
            else:
                self.unsupported_frames += 1

    def _bind_hello(
        self, conn: MessageConnection, msg: protocol.Hello, payload: bytes
    ) -> None:
        if conn in self._pending:
            self._pending.remove(conn)
        stale = self.connections.get(msg.exs_id)
        if stale is not None and stale is not conn:
            self._drop_conn(stale)
        key = msg.node_id if self.partition_by == "node" else msg.exs_id
        idx = key % self.shards
        self.connections[msg.exs_id] = conn
        sources = self._conn_sources.setdefault(conn, set())
        sources.add(msg.exs_id)
        self._exs_shard[msg.exs_id] = idx
        # Pin the fast routing cache only while every source on this
        # connection lands on the same shard; a relay whose downstream
        # nodes span shards falls back to per-frame exs-id peeks.
        if all(self._exs_shard[e] == idx for e in sources):
            self._conn_shard[conn] = idx
        else:
            self._conn_shard.pop(conn, None)
        self._peer_caps[msg.exs_id] = msg.capabilities
        if self.ack_batches and msg.wants_ack:
            self._ack_enabled.add(msg.exs_id)
        # The shard answers the resume handshake (HELLO_REPLY control
        # record) — it owns the watermark state, not the dispatcher.
        self._forward(idx, payload)
        # Re-apply the desired steering state for a (re)connecting
        # source; the epoch makes duplicate applies no-ops at the EXS.
        desired = self._desired_filters.get(msg.exs_id)
        if desired is not None:
            self._send_filter(msg.exs_id, desired)

    def _forward(self, idx: int, payload: bytes) -> None:
        handle = self._handles[idx]
        if handle.overflow or not handle.shared_in.ring.push_bytes(payload):
            handle.overflow.append(payload)
        else:
            self.frames_forwarded += 1

    def _flush_overflow(self) -> None:
        for handle in self._handles:
            overflow = handle.overflow
            if not overflow:
                continue
            ring = handle.shared_in.ring
            while overflow and ring.push_bytes(overflow[0]):
                overflow.popleft()
                self.frames_forwarded += 1

    # ------------------------------------------------------------------
    # runtime steering + monitor (mirrors IsmServer)
    # ------------------------------------------------------------------
    def set_filter(self, exs_id: int, spec) -> bool:
        """Push a source-side filter spec to one EXS (see
        :meth:`IsmServer.set_filter` — identical semantics: the desired
        state is remembered and re-applied on (re)connect, the epoch
        makes duplicate applies idempotent).  Returns False when the
        spec could not be sent right now."""
        self._filter_epoch += 1
        msg = protocol.SetFilter.from_spec(
            spec, epoch=self._filter_epoch, target_exs_id=exs_id
        )
        self._desired_filters[exs_id] = msg
        return self._send_filter(exs_id, msg)

    def _send_filter(self, exs_id: int, msg: protocol.SetFilter) -> bool:
        conn = self.connections.get(exs_id)
        if conn is None:
            return False
        if not self._peer_caps.get(exs_id, 0) & protocol.CAP_STEERING:
            msg = msg.downgraded()
        try:
            conn.send(msg)
        except OSError:
            self._drop_conn(conn)
            return False
        return True

    def attach_monitor(self, spec: MonitorSpec) -> MonitorEngine:
        """Attach a monitor engine over the merged delivered stream.
        The engine joins the dispatcher's consumers and is ticked once
        per dispatcher cycle; filter actions ride :meth:`set_filter`.
        Sharded mode runs no clock sync, so ``sync_round`` actions are
        accepted and ignored."""
        engine = MonitorEngine(spec, actuator=self)
        self.consumers.append(engine)
        self.monitor = engine
        return engine

    def _maybe_monitor(self) -> None:
        if self.monitor is not None:
            self.monitor.tick(now_micros())

    # -- Actuator protocol (repro.monitor.engine.Actuator) -------------
    def push_filter(self, exs_id: int, spec) -> bool:
        """Actuator hook: same path as user steering."""
        return self.set_filter(exs_id, spec)

    def request_sync_round(self) -> None:
        """Actuator hook: no-op — sharded mode runs no clock sync."""

    def emit_alert(self, record: EventRecord) -> None:
        """Actuator hook: fan an alert record out to the consumers."""
        self._deliver([record])

    # ------------------------------------------------------------------
    # egress plane: output rings → commit → merge → consumers
    # ------------------------------------------------------------------
    def _drain_shards(self) -> None:
        for handle in self._handles:
            if handle.shared_out is None:
                continue
            try:
                items = handle.shared_out.ring.drain_bytes(self.drain_limit)
            except (OSError, ValueError):
                continue
            if items:
                self._ingest_items(handle, items)
        if self.durable_sink is None:
            self._flush_cycle_acks()
            if self._merger is not None:
                self._deliver(self._merger.emit())
            return
        # Durable mode inverts the order: records must reach the
        # consumers (the log among them) and be fsynced past *before*
        # the acks covering them go on the wire.
        if self._merger is not None:
            self._deliver(self._merger.emit())
        self._release_durable_acks()
        self._flush_cycle_acks()

    def _ingest_items(self, handle: _ShardHandle, items: list[bytes]) -> None:
        for item in items:
            if not item:
                continue
            view = memoryview(item)[1:]
            if item[0] == 0:  # TAG_DATA
                handle.staged.append(("d", native.unpack_all(view)))
            else:  # TAG_CONTROL
                record, _ = native.unpack_record(view)
                self._apply_control(handle, record)

    def _apply_control(self, handle: _ShardHandle, record: EventRecord) -> None:
        if record.event_id == CTRL_COMMIT:
            self._commit(handle, record)
        elif record.event_id == CTRL_ACK:
            exs_id, seq = record.values
            handle.staged.append(("a", int(exs_id), int(seq)))
        elif record.event_id == CTRL_HELLO_REPLY:
            # Safe to forward before its commit: the reply carries only
            # the *committed* ack watermark by construction.  In durable
            # mode even that is too optimistic — the shard's committed
            # watermark can run ahead of the fsynced log — so the reply
            # is clamped to the synced watermark (retransmits of the gap
            # dedup cleanly at the shard).
            exs_id, last_seq = record.values
            if self.durable_sink is not None:
                last_seq = self._durable_watermarks.get(int(exs_id), -1)
            conn = self.connections.get(int(exs_id))
            if conn is not None and self.ack_batches:
                try:
                    conn.send(
                        protocol.HelloReply(
                            exs_id=int(exs_id),
                            last_seq=int(last_seq),
                            capabilities=(
                                SERVER_CAPS
                                if self._peer_caps.get(int(exs_id))
                                else 0
                            ),
                        )
                    )
                except OSError:
                    self._drop_conn(conn)

    def _commit(self, handle: _ShardHandle, record: EventRecord) -> None:
        """A shard committed: release its staged prefix downstream.

        Ring pushes are atomic and FIFO, so everything staged from this
        shard precedes the commit record and is covered by it.
        """
        merger = self._merger
        commit_wm = max(handle.watermark, record.timestamp)
        for item in handle.staged:
            if item[0] == "d":
                records = item[1]
                if merger is not None:
                    merger.push(handle.index, records)
                else:
                    self._deliver(records)
            else:
                _, exs_id, seq = item
                prev = self._resume.get(exs_id)
                if prev is None or seq > prev:
                    self._resume[exs_id] = seq
                if self.durable_sink is not None:
                    # Hold until the merge has emitted everything at or
                    # below this commit's watermark (every record the ack
                    # covers is ≤ it) and the log has synced past them.
                    self._held_acks.append((commit_wm, exs_id, seq))
                else:
                    self._send_ack(exs_id, seq)
        handle.staged.clear()
        handle.watermark = commit_wm
        received, delivered = record.values
        handle.received = int(received)
        handle.delivered = int(delivered)
        if merger is not None:
            merger.advance(handle.index, handle.watermark)
        self.commits_processed += 1

    def _release_durable_acks(self, force: bool = False) -> None:
        """Release held acks whose records are provably on disk.

        An ack held at ``(wm, exs, seq)`` is releasable once the ordered
        merge has emitted every record with timestamp ≤ *wm* (merger
        drained, or its low watermark passed *wm*; *force* asserts this
        externally — the shutdown path calls it after the final merge
        flush).  Releasable acks are put on the wire only after one
        ``sync`` covers them; a failed sync re-holds them all.
        """
        if not self._held_acks:
            return
        merger = self._merger
        if force or merger is None or merger.held == 0:
            ready, self._held_acks = self._held_acks, []
        else:
            low = merger.low_watermark()
            if low is None:
                return  # a respawned shard has not declared yet
            ready = [item for item in self._held_acks if item[0] <= low]
            if not ready:
                return
            self._held_acks = [
                item for item in self._held_acks if item[0] > low
            ]
        marks: dict[int, int] = {}
        for _, exs_id, seq in ready:
            prev = marks.get(exs_id)
            if prev is None or seq > prev:
                marks[exs_id] = seq
        try:
            self.durable_sink.sync(marks)
        except OSError:
            # Log unwritable: withhold the acks (EXS outboxes hold the
            # stream) and keep serving; retried next cycle.
            self.durable_sync_errors += 1
            self._held_acks = ready + self._held_acks
            return
        for exs_id, seq in marks.items():
            prev = self._durable_watermarks.get(exs_id)
            if prev is None or seq > prev:
                self._durable_watermarks[exs_id] = seq
            self._send_ack(exs_id, seq)

    def _send_ack(self, exs_id: int, seq: int) -> None:
        """Stage a commit-released ack; the cycle flush sends it."""
        if not self.ack_batches or exs_id not in self._ack_enabled:
            return
        prev = self._cycle_acks.get(exs_id)
        if prev is None or seq > prev:
            self._cycle_acks[exs_id] = seq

    def _flush_cycle_acks(self) -> None:
        """Send the cycle's cumulative acks, one control frame per
        connection — an ``AckBundle`` toward capability peers with
        several sources, per-source ``Ack`` frames otherwise.  Before
        this coalescing, every commit-released ack left as its own
        small send."""
        if not self._cycle_acks:
            return
        pending, self._cycle_acks = self._cycle_acks, {}
        per_conn: dict[MessageConnection, list[tuple[int, int]]] = {}
        for exs_id, seq in sorted(pending.items()):
            conn = self.connections.get(exs_id)
            if conn is None:
                continue  # source vanished before its ack; resume covers it
            per_conn.setdefault(conn, []).append((exs_id, seq))
        caps = self._peer_caps
        for conn, pairs in per_conn.items():
            try:
                if len(pairs) > 1 and all(
                    caps.get(e, 0) & protocol.CAP_ACK_BUNDLE for e, _ in pairs
                ):
                    conn.send(protocol.AckBundle(acks=tuple(pairs)))
                    self.ack_frames_sent += 1
                else:
                    conn.send_many(
                        [
                            protocol.encode_message(
                                protocol.Ack(exs_id=e, up_to_seq=s)
                            )
                            for e, s in pairs
                        ]
                    )
                    self.ack_frames_sent += len(pairs)
                self.acks_forwarded += len(pairs)
            except OSError:
                self._drop_conn(conn)

    def _deliver(self, records: list[EventRecord]) -> None:
        if not records:
            return
        self.records_delivered += len(records)
        for consumer in self.consumers:
            deliver_many = getattr(consumer, "deliver_many", None)
            try:
                if deliver_many is not None:
                    deliver_many(records)
                else:
                    deliver = consumer.deliver
                    for record in records:
                        deliver(record)
            except Exception:
                self.consumer_errors += 1

    # ------------------------------------------------------------------
    # connection bookkeeping
    # ------------------------------------------------------------------
    def _sweep_idle(self, mono_now: float) -> None:
        """Drop connections silent past the idle deadline.

        Connections whose shard is backpressured are exempt: they are
        deliberately excluded from the select set, so their silence is
        the dispatcher's doing, not the peer's.
        """
        if self.idle_deadline_s is None:
            return
        blocked = {
            h.index
            for h in self._handles
            if len(h.overflow) > self.overflow_limit
        }
        stale = [
            conn
            for conn, last in self._last_activity.items()
            if mono_now - last > self.idle_deadline_s
            and self._conn_shard.get(conn) not in blocked
        ]
        for conn in stale:
            self.idle_drops += 1
            self._drop_conn(conn)

    def _drop_conn(self, conn: MessageConnection) -> None:
        tracked = (
            conn in self._last_activity
            or conn in self._conn_sources
            or conn in self._pending
        )
        if not tracked:
            return
        self._last_activity.pop(conn, None)
        self._conn_shard.pop(conn, None)
        sources = self._conn_sources.pop(conn, None)
        for exs_id in sources or ():
            if self.connections.get(exs_id) is conn:
                self.connections.pop(exs_id)
                self._ack_enabled.discard(exs_id)
        if conn in self._pending:
            self._pending.remove(conn)
        self.closed_connections += 1
        self._closed_bytes += conn.bytes_received
        self._closed_frames += conn.frames_received
        conn.close()
