"""The ISM server process.

A ``select`` loop — the paper's ISM is likewise one process whose CPU
demand is the scalability bottleneck (E5).  Receive is staged per cycle:

1. **framing** — one ``select`` over the listener and every connection;
   each readable socket is drained through its reusable ``recv_into``
   buffer and every complete frame payload sliced out
   (:meth:`~repro.wire.tcp.MessageConnection.recv_frames`);
2. **decode** — each connection's payload list is batch-decoded, inline
   by default, or on a small thread pool when ``decode_workers`` is set
   and several connections have data in the same cycle (decode is pure
   CPU over private buffers, so it parallelizes without locks);
3. **route** — decoded messages enter the
   :class:`~repro.core.ism.InstrumentationManager` in arrival order, per
   connection; then the manager ticks so sorted records flow to consumers.

The single-threaded default (``decode_workers=0``) is byte- and
order-identical to the per-message receive loop it replaced.

The loop also periodically runs the BRISK clock-synchronization round over
the same connections (:class:`TcpSyncSlave` adapts a connection to the
:class:`~repro.clocksync.probes.SyncSlave` interface).  Probes are blocking
per slave (as in Cristian's algorithm); batches that arrive while the
master waits for a ``TimeReply`` are queued into the manager rather than
dropped or reordered.
"""

from __future__ import annotations

import select
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
from repro.clocksync.probes import ProbeSample
from repro.core.ism import InstrumentationManager
from repro.obs import collect
from repro.obs.metrics import Counter, MetricsRegistry, MetricsSnapshot
from repro.obs.render import render_snapshot
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import ConnectionClosed, MessageConnection, MessageListener
from repro.xdr import XdrDecodeError


class TcpSyncSlave:
    """Clock-sync slave endpoint over a live EXS connection."""

    def __init__(self, server: "IsmServer", conn: MessageConnection, slave_id: int):
        self.server = server
        self.conn = conn
        self.slave_id = slave_id
        self._probe_seq = 0

    def probe(self, timeout_s: float = 1.0) -> ProbeSample:
        """One blocking Cristian probe over the connection."""
        self._probe_seq += 1
        probe_id = self._probe_seq
        t0 = now_micros()
        self.conn.send(protocol.TimeRequest(probe_id=probe_id))
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"probe {probe_id} to EXS {self.slave_id}")
            msg = self.conn.recv(timeout=remaining)
            if msg is None:
                continue
            if isinstance(msg, protocol.TimeReply) and msg.probe_id == probe_id:
                t1 = now_micros()
                rtt = t1 - t0
                skew = msg.slave_time + rtt / 2 - t1
                return ProbeSample(skew_us=skew, rtt_us=rtt)
            # A batch (or stale reply) raced the probe: feed it onward.
            self.server.dispatch(msg)

    def adjust(self, correction_us: int) -> None:
        """Send the correction over the connection."""
        self.conn.send(protocol.Adjust(correction=correction_us))


class IsmServer:
    """Accept EXS connections and pump them into the manager."""

    def __init__(
        self,
        manager: InstrumentationManager,
        listener: MessageListener,
        sync_config: BriskSyncConfig | None = None,
        sync_period_s: float = 5.0,
        throttle=None,
        throttle_period_s: float = 1.0,
        decode_workers: int = 0,
        ack_batches: bool = True,
        idle_deadline_s: float | None = None,
        metrics: MetricsRegistry | None = None,
        stats_interval_s: float | None = None,
        stats_sink=None,
    ) -> None:
        if decode_workers < 0:
            raise ValueError("decode_workers must be >= 0")
        if idle_deadline_s is not None and idle_deadline_s <= 0:
            raise ValueError("idle_deadline_s must be positive or None")
        if stats_interval_s is not None and stats_interval_s <= 0:
            raise ValueError("stats_interval_s must be positive or None")
        self.manager = manager
        self.listener = listener
        self.sync_config = sync_config
        self.sync_period_s = sync_period_s
        #: Decode-stage thread pool size; 0 decodes inline on the pump
        #: thread (the default — byte/order-identical to the seed loop).
        self.decode_workers = decode_workers
        self._executor: ThreadPoolExecutor | None = None
        #: Optional :class:`repro.runtime.throttle.AutoThrottle`.  When
        #: set, the server feeds it per-source receive counts every
        #: ``throttle_period_s`` and it steers the sources via
        #: :meth:`set_filter`.
        self.throttle = throttle
        self.throttle_period_s = throttle_period_s
        #: Acknowledge admitted batches back to each EXS (cumulative
        #: :class:`~repro.wire.protocol.Ack`, one per source per pump
        #: cycle).  Off reproduces the seed's fire-and-forget transport.
        self.ack_batches = ack_batches
        #: Drop a connection whose peer has been silent this long
        #: (heartbeats count as activity).  None disables the sweep.
        self.idle_deadline_s = idle_deadline_s
        #: Sources with new admissions this cycle, awaiting an Ack.
        self._ack_pending: set[int] = set()
        #: Sources whose Hello advertised ``wants_ack`` — the only peers
        #: ever written to outside the clock-sync path.  A fire-and-forget
        #: sender that never reads must never be written to: once it
        #: closes, our write draws an RST that can discard its
        #: still-buffered batches in our own receive queue.
        self._ack_enabled: set[int] = set()
        #: monotonic() of each connection's last inbound traffic.
        self._last_activity: dict[MessageConnection, float] = {}
        #: Connections dropped by the idle-deadline sweep (int-like
        #: :class:`~repro.obs.metrics.Counter`, registered when metrics
        #: are on).
        self.idle_drops = Counter("ism.idle_drops")
        self._next_throttle = time.monotonic() + throttle_period_s
        self._per_source_counts: dict[int, int] = {}
        self.connections: dict[int, MessageConnection] = {}
        self.sync_master: BriskSyncMaster | None = None
        self._conn_exs: dict[MessageConnection, int] = {}
        #: Node each connection's Hello advertised — handed to the decode
        #: stage so batch records come out pre-stamped with their node
        #: (the manager's stamping pass then finds nothing to rebuild).
        self._conn_node: dict[MessageConnection, int] = {}
        self._pending: list[MessageConnection] = []
        self._dead: set[MessageConnection] = set()
        self._stop = threading.Event()
        # First round runs as soon as a slave connects (warmup), then on
        # the configured period.
        self._next_sync = time.monotonic()
        #: Connections that closed (normally or not) since start.
        self.closed_connections = Counter("wire.closed_connections")
        #: Sync rounds completed across all master rebuilds.
        self.sync_rounds_completed = Counter("sync.rounds_completed")
        #: Wire traffic of connections already closed (live connections
        #: are summed at snapshot time; these keep the totals monotonic).
        self._closed_bytes = 0
        self._closed_frames = 0
        #: Self-observability registry; None until enabled.  Pass one in,
        #: set ``stats_interval_s`` (a registry is then created), or call
        #: :meth:`metrics_snapshot` — the programmatic stats endpoint —
        #: which wires one lazily.
        self.metrics: MetricsRegistry | None = None
        self.stats_interval_s = stats_interval_s
        #: Where the periodic stats table goes (callable taking one
        #: string); default prints to stdout.
        self.stats_sink = stats_sink if stats_sink is not None else print
        self._next_stats = (
            None
            if stats_interval_s is None
            else time.monotonic() + stats_interval_s
        )
        self._pump_hist = None
        if metrics is not None or stats_interval_s is not None:
            self._enable_metrics(metrics or MetricsRegistry())

    # ------------------------------------------------------------------
    # self-observability
    # ------------------------------------------------------------------
    def _enable_metrics(self, registry: MetricsRegistry) -> None:
        self.metrics = registry
        registry.adopt_counter(self.idle_drops)
        registry.adopt_counter(self.closed_connections)
        registry.adopt_counter(self.sync_rounds_completed)
        if self.manager.metrics is not registry:
            collect.wire_manager(registry, self.manager)
        registry.gauge_fn("wire.connections", lambda: len(self.connections))
        registry.gauge_fn(
            "wire.pending_connections", lambda: len(self._pending)
        )
        registry.gauge_fn(
            "wire.bytes_received",
            lambda: self._closed_bytes
            + sum(c.bytes_received for c in self.connections.values()),
        )
        registry.gauge_fn(
            "wire.frames_received",
            lambda: self._closed_frames
            + sum(c.frames_received for c in self.connections.values()),
        )
        #: Pump cycle duration includes the (bounded) select wait, so it
        #: is a latency metric, not a busy-time metric — intrusion
        #: accounting uses the manager's per-stage timers instead.
        self._pump_hist = registry.histogram("ism.pump_cycle_us")

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The ISM stats endpoint: a merged snapshot of everything the
        server can see — manager counters, sorter/CRE depth, consumer
        queues, wire traffic.  Wires a registry lazily on first call, so
        any running server can be inspected without prior setup."""
        if self.metrics is None:
            self._enable_metrics(MetricsRegistry())
        return self.metrics.snapshot()

    def _maybe_stats(self) -> None:
        if self._next_stats is None or time.monotonic() < self._next_stats:
            return
        self._next_stats = time.monotonic() + self.stats_interval_s
        self.stats_sink(
            "-- brisk-ism stats " + "-" * 24 + "\n"
            + render_snapshot(self.metrics_snapshot())
        )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the serve loop to flush and exit."""
        self._stop.set()

    def dispatch(self, msg: protocol.Message, now: int | None = None) -> None:
        """Feed one decoded message into the manager (clock-sync replies
        are consumed inside probes and never reach here).

        *now* is the arrival timestamp; the pump loop reads the clock once
        per cycle and passes it through rather than per message.
        """
        if isinstance(msg, (protocol.TimeReply,)):
            return  # stale probe reply; drop
        if isinstance(msg, protocol.Heartbeat):
            return  # liveness only; activity was noted at the socket
        if isinstance(msg, protocol.Hello):
            self.manager.register_source(msg.exs_id, msg.node_id)
            return
        if isinstance(msg, protocol.Batch):
            self._per_source_counts[msg.exs_id] = (
                self._per_source_counts.get(msg.exs_id, 0) + len(msg.records)
            )
            if self.ack_batches and msg.exs_id in self._ack_enabled:
                # Queue the ack *before* admission so a retransmit of an
                # already-admitted batch still re-sends the (evidently
                # lost) ack that would release it from the EXS outbox.
                self._ack_pending.add(msg.exs_id)
        self.manager.on_message(msg, now_micros() if now is None else now)

    # ------------------------------------------------------------------
    def serve(
        self,
        duration_s: float | None = None,
        until_records: int | None = None,
        expected_connections: int | None = None,
    ) -> None:
        """Run the server loop.

        Stops on :meth:`stop`, after *duration_s*, after the manager has
        received *until_records* records, or — when *expected_connections*
        is given — once every expected connection has come and gone.
        """
        deadline = None if duration_s is None else time.monotonic() + duration_s
        seen_connections = 0
        if self.decode_workers > 0 and self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.decode_workers, thread_name_prefix="ism-decode"
            )
        try:
            while not self._stop.is_set():
                if deadline is not None and time.monotonic() >= deadline:
                    break
                if (
                    until_records is not None
                    and self.manager.stats.records_received >= until_records
                ):
                    break
                if (
                    expected_connections is not None
                    and seen_connections >= expected_connections
                    and not self.connections
                    and not self._pending
                ):
                    # "Come and gone" includes accepted connections whose
                    # Hello has not been read yet — they have come.
                    break
                pump_hist = self._pump_hist
                t0 = time.perf_counter_ns() if pump_hist is not None else 0
                seen_connections += self._pump_connections()
                self.manager.tick(now_micros())
                if pump_hist is not None:
                    pump_hist.observe((time.perf_counter_ns() - t0) / 1_000.0)
                self._maybe_sync()
                self._maybe_throttle()
                self._maybe_stats()
            # Drain in-flight data, then flush the pipeline.  Peers are
            # told to stop only on an explicit stop() — a duration/record
            # bound may just be a phase boundary, with serve() called
            # again.
            self._pump_connections()
            if self._stop.is_set():
                for conn in list(self.connections.values()):
                    try:
                        conn.send(protocol.Bye(reason="ism shutdown"))
                    except OSError:
                        pass  # peer already gone; the sweep handles it
            self.manager.flush(now_micros())
        finally:
            executor, self._executor = self._executor, None
            if executor is not None:
                executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _accept_ready(self) -> int:
        accepted = 0
        while True:
            conn = self.listener.accept(timeout=0.0)
            if conn is None:
                return accepted
            # EXS id unknown until its Hello arrives.
            self._pending.append(conn)
            self._last_activity[conn] = time.monotonic()
            accepted += 1

    def _pump_connections(self) -> int:
        """One staged pump cycle; returns connections accepted.

        The listener shares the ``select`` with the connections, so a new
        EXS interrupts the wait instead of queueing behind it.
        """
        conns = self._pending + list(self.connections.values())
        try:
            ready, _, _ = select.select([self.listener, *conns], [], [], 0.005)
        except (OSError, ValueError):
            # One bad fd poisons the whole batched select.  Probe each
            # socket individually and evict the broken ones now — waiting
            # for a lucky sweep would starve every healthy connection for
            # as long as the bad fd sticks around.
            ready = self._probe_sockets(conns)
        accepted = 0
        now = now_micros()
        ready_conns: list[MessageConnection] = []
        for sock in ready:
            if sock is self.listener:
                accepted = self._accept_ready()
            else:
                ready_conns.append(sock)
        if accepted:
            # Pump just-accepted connections in the same cycle — their
            # Hello is usually already buffered, and serve()'s
            # expected_connections accounting assumes accept and first
            # read happen together.
            try:
                fresh, _, _ = select.select(self._pending[-accepted:], [], [], 0.0)
                ready_conns.extend(fresh)
            except (OSError, ValueError):
                pass
        # Stage 1 — framing: drain each readable socket through its
        # reusable buffer, slicing out every complete frame payload.
        mono_now = time.monotonic()
        staged: list[list] = []  # [conn, msgs, payloads, closed]
        for sock in ready_conns:
            payloads: list[bytes] = []
            closed = False
            try:
                payloads = sock.recv_frames(timeout=0.0, assume_ready=True)
            except (ConnectionClosed, ConnectionResetError, XdrDecodeError):
                closed = True
            # Messages a blocking probe already decoded come first so the
            # per-connection order is preserved.
            inbox = sock.drain_inbox()
            if payloads or inbox:
                self._last_activity[sock] = mono_now
            staged.append([sock, inbox, payloads, closed])
        # Stage 2 — decode: batch-decode each connection's payloads.  The
        # pool only helps when several connections brought data in the
        # same cycle; otherwise inline decode skips the handoff cost.
        executor = self._executor
        conn_node = self._conn_node
        if executor is not None and sum(1 for s in staged if s[2]) >= 2:
            futures = [
                (s, executor.submit(self._decode_payloads, s[2], conn_node.get(s[0], 0)))
                for s in staged
                if s[2]
            ]
            for s, future in futures:
                msgs, bad = future.result()
                s[1].extend(msgs)
                s[3] = s[3] or bad
        else:
            for s in staged:
                if s[2]:
                    msgs, bad = self._decode_payloads(s[2], conn_node.get(s[0], 0))
                    s[1].extend(msgs)
                    s[3] = s[3] or bad
        # Stage 3 — route in arrival order, then sweep dead connections.
        for conn, msgs, _payloads, closed in staged:
            for msg in msgs:
                self._route(conn, msg, now)
            if closed:
                self._drop(conn)
        # Acks ride once per cycle (not per batch) so the acked path adds
        # O(cycles) sends, invisible next to the batch stream itself.
        self._flush_acks()
        self._sweep_idle(mono_now)
        return accepted

    def _probe_sockets(
        self, conns: list[MessageConnection]
    ) -> list[MessageConnection | MessageListener]:
        """Per-socket 0-timeout probes; evict sockets whose fd is broken."""
        ready: list[MessageConnection | MessageListener] = []
        try:
            r, _, _ = select.select([self.listener], [], [], 0.0)
            ready.extend(r)
        except (OSError, ValueError):
            pass  # listener itself is sick; serve() bounds end the loop
        for conn in conns:
            try:
                r, _, _ = select.select([conn], [], [], 0.0)
            except (OSError, ValueError):
                self._drop(conn)
            else:
                ready.extend(r)
        return ready

    def _flush_acks(self) -> None:
        """Send one cumulative Ack per source that admitted this cycle."""
        if not self._ack_pending:
            return
        pending, self._ack_pending = self._ack_pending, set()
        for exs_id in pending:
            conn = self.connections.get(exs_id)
            if conn is None:
                continue  # source vanished before its ack; resume covers it
            up_to = self.manager.admitted_seq(exs_id)
            if up_to is None:
                continue
            try:
                conn.send(protocol.Ack(exs_id=exs_id, up_to_seq=up_to))
            except OSError:
                self._drop(conn)

    def _sweep_idle(self, mono_now: float) -> None:
        """Drop connections silent past the idle deadline (hung peers)."""
        if self.idle_deadline_s is None:
            return
        stale = [
            conn
            for conn, last in self._last_activity.items()
            if mono_now - last > self.idle_deadline_s
        ]
        for conn in stale:
            self.idle_drops += 1
            self._drop(conn)

    @staticmethod
    def _decode_payloads(
        payloads: list[bytes], node_id: int = 0
    ) -> tuple[list[protocol.Message], bool]:
        """Decode stage: payloads → messages, in order.

        Stops at the first malformed payload — everything decoded before
        it is still delivered, and the flag tells the route stage to drop
        the connection (the stream past a bad payload is untrustworthy).

        *node_id* is the connection's Hello-advertised node, pre-stamped
        onto decoded batch records (a stale hint is corrected by the
        manager's stamping pass).
        """
        msgs: list[protocol.Message] = []
        append = msgs.append
        try:
            for payload in payloads:
                append(protocol.decode_message(payload, node_id=node_id))
        except XdrDecodeError:
            return msgs, True
        return msgs, False

    def _route(
        self, conn: MessageConnection, msg: protocol.Message, now: int | None = None
    ) -> None:
        if isinstance(msg, protocol.Hello):
            self.manager.register_source(msg.exs_id, msg.node_id)
            if conn in self._pending:
                self._pending.remove(conn)
            self.connections[msg.exs_id] = conn
            self._conn_exs[conn] = msg.exs_id
            self._conn_node[conn] = msg.node_id
            if self.ack_batches and msg.wants_ack:
                self._ack_enabled.add(msg.exs_id)
                # Resume handshake: tell the EXS where this manager's
                # history ends so it can drop acked outbox entries and
                # retransmit the rest.  -1 = no state, the whole outbox
                # is unconfirmed.
                last = self.manager.admitted_seq(msg.exs_id)
                try:
                    conn.send(
                        protocol.HelloReply(
                            exs_id=msg.exs_id,
                            last_seq=-1 if last is None else last,
                        )
                    )
                except OSError:
                    self._drop(conn)
                    return
            self._rebuild_sync_master()
            return
        if isinstance(msg, protocol.Bye):
            self._drop(conn)
            return
        self.dispatch(msg, now)

    def _drop(self, conn: MessageConnection) -> None:
        if conn in self._dead:
            return  # already dropped (e.g. Bye routed, then EOF seen)
        self._dead.add(conn)
        self._last_activity.pop(conn, None)
        self._conn_node.pop(conn, None)
        exs_id = self._conn_exs.pop(conn, None)
        if exs_id is not None:
            self.connections.pop(exs_id, None)
            self._ack_enabled.discard(exs_id)
            self._rebuild_sync_master()
        if conn in self._pending:
            self._pending.remove(conn)
        self.closed_connections += 1
        self._closed_bytes += conn.bytes_received
        self._closed_frames += conn.frames_received
        conn.close()

    # ------------------------------------------------------------------
    def set_filter(self, exs_id: int, spec) -> bool:
        """Push a source-side :class:`~repro.core.filtering.FilterSpec`
        down to one connected external sensor (§2: the user specifies
        what to monitor; the EXS drops the rest before transfer).

        Returns False when that EXS is not currently connected.
        """
        conn = self.connections.get(exs_id)
        if conn is None:
            return False
        conn.send(protocol.SetFilter.from_spec(spec))
        return True

    # ------------------------------------------------------------------
    def _rebuild_sync_master(self) -> None:
        if self.sync_config is None or not self.connections:
            self.sync_master = None
            self.manager.sync_master = None
            return
        slaves = [
            TcpSyncSlave(self, conn, exs_id)
            for exs_id, conn in self.connections.items()
        ]
        self.sync_master = BriskSyncMaster(slaves, self.sync_config)
        self.manager.sync_master = self.sync_master

    def _maybe_throttle(self) -> None:
        if self.throttle is None:
            return
        if time.monotonic() < self._next_throttle:
            return
        self._next_throttle = time.monotonic() + self.throttle_period_s
        self.throttle.observe(now_micros(), dict(self._per_source_counts))

    def _maybe_sync(self) -> None:
        master = self.sync_master
        if master is None:
            return
        due = time.monotonic() >= self._next_sync
        extra = master.consume_extra_round_request()
        if not due and not extra:
            return
        self._next_sync = time.monotonic() + self.sync_period_s
        try:
            master.run_round()
            self.sync_rounds_completed += 1
        except (TimeoutError, ConnectionClosed, ConnectionResetError):
            pass  # a slave vanished mid-round; the next pump sweeps it
