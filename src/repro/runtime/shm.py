"""Shared-memory ring buffers for the two-process LIS.

The internal sensors live in the application process; the external sensor
is "another process on the same node".  They share the ring through a named
``multiprocessing.shared_memory`` segment — the portable stand-in for the
SysV segment the paper uses.

Only the ``DROP_NEW`` overflow policy is allowed across processes: the
overwrite policy has the consumer and producer racing on the tail pointer,
which is safe only inside one process (see
:mod:`repro.core.ringbuffer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer


@dataclass
class SharedRing:
    """A ring buffer plus the shared-memory segment backing it.

    Keep the object alive as long as the ring is used; closing/unlinking is
    explicit because the creator and attachers have different duties
    (attachers ``close()``, only the creator ``unlink()``s).
    """

    ring: RingBuffer
    shm: shared_memory.SharedMemory
    owner: bool

    @property
    def name(self) -> str:
        """Segment name to pass to :func:`attach_shared_ring`."""
        return self.shm.name

    def close(self) -> None:
        """Detach (and destroy, when owner) the segment."""
        # Drop the ring's memoryview before closing, else CPython refuses
        # to release the mapping ("cannot close exported pointers exist").
        self.ring._view.release()  # noqa: SLF001 - deliberate teardown hook
        self.shm.close()
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # another owner already unlinked
                pass

    def __enter__(self) -> "SharedRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_shared_ring(capacity_bytes: int, name: str | None = None) -> SharedRing:
    """Create a fresh shared ring of *capacity_bytes* data capacity."""
    if capacity_bytes < 64:
        raise ValueError("capacity_bytes must be >= 64")
    shm = shared_memory.SharedMemory(
        create=True, size=HEADER_SIZE + capacity_bytes, name=name
    )
    ring = RingBuffer(shm.buf, OverflowPolicy.DROP_NEW)
    return SharedRing(ring=ring, shm=shm, owner=True)


def attach_shared_ring(name: str) -> SharedRing:
    """Attach to an existing shared ring by segment name."""
    shm = shared_memory.SharedMemory(name=name)
    ring = RingBuffer(shm.buf, OverflowPolicy.DROP_NEW, attach=True)
    return SharedRing(ring=ring, shm=shm, owner=False)
