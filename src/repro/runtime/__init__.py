"""Real multi-process BRISK runtime.

The paper's deployment: application processes and the external sensor share
a memory segment on each node; external sensors talk to the ISM over TCP.
This subpackage provides the same deployment on one or more real hosts:

* :mod:`repro.runtime.shm` — ring buffers over
  ``multiprocessing.shared_memory`` so an application process and an EXS
  process share one ring exactly as SysV shared memory is used in the
  paper;
* :mod:`repro.runtime.exs_proc` — the external-sensor process loop
  (drain/batch/ship plus the clock-sync slave endpoint);
* :mod:`repro.runtime.ism_proc` — the ISM server: accepts EXS connections,
  multiplexes batches into the manager, runs the clock-sync master.

The simulation substrate (:mod:`repro.sim`) exists because clock-sync and
scaling experiments need controlled clocks and links; this runtime exists
because the throughput and latency numbers (E3, E4) are only credible
against real sockets and a real kernel scheduler.
"""

from repro.runtime.shm import SharedRing, create_shared_ring, attach_shared_ring
from repro.runtime.exs_proc import (
    ExsOutbox,
    ExsProcess,
    ReconnectingExs,
    exs_process_main,
    resilient_exs_main,
)
from repro.runtime.ism_proc import IsmServer, TcpSyncSlave
from repro.runtime.throttle import AutoThrottle, ThrottleConfig
from repro.runtime.shm_consumer import SharedMemoryConsumer, SharedMemoryReader

__all__ = [
    "SharedMemoryConsumer",
    "SharedMemoryReader",
    "SharedRing",
    "create_shared_ring",
    "attach_shared_ring",
    "ExsOutbox",
    "ExsProcess",
    "ReconnectingExs",
    "exs_process_main",
    "resilient_exs_main",
    "IsmServer",
    "TcpSyncSlave",
    "AutoThrottle",
    "ThrottleConfig",
]
