"""The runtime monitor engine: incremental rule evaluation at the ISM.

The engine is an ordinary :class:`~repro.core.consumers.Consumer` — it is
appended to the manager's consumer list and sees exactly the delivered
stream every tool sees (including the self-emitted 0xB0B5 metric records
of :mod:`repro.obs.reporter`, which it folds into a latest-value map).
Delivery only *counts*; every decision is made in :meth:`MonitorEngine.
tick`, which the host drives with its own clock — the serve loop's
``now_micros()`` in live deployments, the virtual clock in the
simulator.  No wall-clock reads happen here, so the engine sits inside
the determinism zone and steering scenarios replay bit-identically.

Rates use a ring of fixed-width buckets rotated by ``tick``: delivery
increments the current bucket's ``(node, event)`` counter, and a rule's
window is the sum of the newest ``ceil(window_us / bucket_us)`` completed
buckets plus the still-accumulating one (so counts delivered since the
last tick are never invisible to the window that ends now).
Rule state machines add hysteresis (trip above the threshold, clear only
at ``clear_factor`` of it) and a post-clear cooldown so a hovering value
cannot flap actions on and off every tick.

Actions actuate through the :class:`Actuator` protocol the host
implements: pushing filters over the control channel, requesting an
extra clock-sync round, and injecting alert records — which carry
:data:`ALERT_EVENT_ID` and flow through the normal delivery path to
every consumer, durable log included.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.filtering import FilterSpec
from repro.core.records import EventRecord, FieldType
from repro.monitor.spec import Action, MonitorRule, MonitorSpec
from repro.obs.reporter import METRICS_EVENT_ID, metric_from_record

__all__ = ["ALERT_EVENT_ID", "Actuator", "MonitorEngine"]

#: Event id of engine-injected alert records.  Adjacent to the metrics id
#: (0xB0B5) in the reserved self-instrumentation range.
ALERT_EVENT_ID = 0x0B_0B6


class Actuator(Protocol):
    """What a host must provide for the engine to act on the system."""

    def push_filter(self, exs_id: int, spec: FilterSpec) -> bool:
        """Push *spec* to the EXS for node *exs_id*; False if undeliverable
        right now (the host re-applies on reconnect)."""
        ...

    def request_sync_round(self) -> None:
        """Ask the clock-sync master for an extra round."""
        ...

    def emit_alert(self, record: EventRecord) -> None:
        """Inject an alert record into the delivered stream."""
        ...


class _RuleState:
    """Per-rule trip bookkeeping: active nodes, clear times, fire counts."""

    __slots__ = ("active", "last_clear", "fires", "clears")

    def __init__(self) -> None:
        self.active: set[int] = set()
        self.last_clear: dict[int, int] = {}
        self.fires = 0
        self.clears = 0


class MonitorEngine:
    """Evaluate a :class:`MonitorSpec` against the live delivered stream.

    Parameters
    ----------
    spec:
        The rules to run.
    actuator:
        The host's control surface (:class:`Actuator`).

    The engine implements the consumer protocol (``deliver`` /
    ``deliver_many`` / ``close``) and a host-clocked :meth:`tick`.
    """

    def __init__(self, spec: MonitorSpec, actuator: Actuator) -> None:
        self.spec = spec
        self.actuator = actuator
        self._bucket_us = spec.bucket_us
        windows = [rule.when.window_us for rule in spec.rules]
        max_window = max(windows, default=spec.bucket_us)
        #: Ring length: enough whole buckets to cover the longest window.
        self._ring_len = max(1, -(-max_window // spec.bucket_us))
        #: Newest bucket last; each maps (node_id, event_id) -> count.
        self._buckets: list[dict[tuple[int, int], int]] = [{}]
        self._bucket_start: int | None = None
        #: Latest self-reported metric values, keyed (node_id, name).
        self._metrics: dict[tuple[int, str], float] = {}
        self._states: dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in spec.rules
        }
        #: Total actions actuated (all kinds).
        self.actions_fired = 0
        #: Alert records injected.
        self.alerts_emitted = 0
        #: Filter pushes the actuator could not deliver immediately.
        self.pushes_deferred = 0

    # ------------------------------------------------------------------
    # consumer protocol
    # ------------------------------------------------------------------
    def deliver(self, record: EventRecord) -> None:
        """Count one delivered record into the current rate bucket."""
        if record.event_id == ALERT_EVENT_ID:
            return  # our own alerts must not feed back into the rules
        if record.event_id == METRICS_EVENT_ID:
            decoded = metric_from_record(record)
            if decoded is not None:
                self._metrics[(record.node_id, decoded[0])] = decoded[1]
            return
        key = (record.node_id, record.event_id)
        bucket = self._buckets[-1]
        bucket[key] = bucket.get(key, 0) + 1

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Bulk form of :meth:`deliver`."""
        for record in records:
            self.deliver(record)

    def close(self) -> None:
        """Nothing to release; present for the consumer protocol."""

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def tick(self, now_us: int) -> int:
        """Rotate rate buckets and evaluate every rule at *now_us*.

        Returns the number of actions actuated this tick.  All engine
        time flows through this method — callers pick the clock.
        """
        self._rotate(now_us)
        fired = 0
        for rule in self.spec.rules:
            fired += self._evaluate(rule, now_us)
        return fired

    def _rotate(self, now_us: int) -> None:
        if self._bucket_start is None:
            self._bucket_start = now_us
            return
        steps = (now_us - self._bucket_start) // self._bucket_us
        if steps <= 0:
            return
        if steps > self._ring_len:
            # Idle longer than the whole window: every bucket is stale.
            self._buckets = [{}]
            self._bucket_start = now_us
            return
        for _ in range(steps):
            self._buckets.append({})
        # Retain one bucket beyond the longest window: the newest entry
        # is the fresh accumulator, so a full window of completed history
        # must survive behind it.
        del self._buckets[: -(self._ring_len + 1)]
        self._bucket_start += steps * self._bucket_us

    # -- value computation ---------------------------------------------
    def _rates(self, rule: MonitorRule) -> dict[int, float]:
        """Per-node rate (records/second) for the rule's window."""
        when = rule.when
        n_buckets = max(1, -(-when.window_us // self._bucket_us))
        totals: dict[int, int] = {}
        # The slice covers the window's completed buckets plus the
        # accumulating one (see the module docstring).
        for bucket in self._buckets[-(n_buckets + 1):]:
            for (node_id, event_id), count in bucket.items():
                if when.event_id is not None and event_id != when.event_id:
                    continue
                if when.node_id is not None and node_id != when.node_id:
                    continue
                totals[node_id] = totals.get(node_id, 0) + count
        scale = 1e6 / when.window_us
        values = {node: count * scale for node, count in totals.items()}
        if when.node_id is not None:
            # Pinned-node conditions always yield a value, so the rule
            # can clear (rate 0) once the node goes quiet.
            values.setdefault(when.node_id, 0.0)
        return values

    def _metric_values(self, rule: MonitorRule) -> dict[int, float]:
        when = rule.when
        assert when.metric is not None
        values: dict[int, float] = {}
        for (node_id, name), value in self._metrics.items():
            if name != when.metric:
                continue
            if when.node_id is not None and node_id != when.node_id:
                continue
            values[node_id] = value
        return values

    # -- rule state machine --------------------------------------------
    def _evaluate(self, rule: MonitorRule, now_us: int) -> int:
        if rule.when.kind == "rate":
            values = self._rates(rule)
            # Active nodes that produced nothing this window have rate 0;
            # surface that explicitly so they can clear.
            state = self._states[rule.name]
            for node in state.active:
                values.setdefault(node, 0.0)
        else:
            values = self._metric_values(rule)
            state = self._states[rule.name]
        fired = 0
        when = rule.when
        for node, value in sorted(values.items()):
            if node in state.active:
                if when.cleared(value):
                    state.active.discard(node)
                    state.last_clear[node] = now_us
                    state.clears += 1
                    fired += self._actuate(rule, rule.on_clear, node, value, now_us)
            elif when.tripped(value):
                last_clear = state.last_clear.get(node)
                if (
                    rule.cooldown_us
                    and last_clear is not None
                    and now_us - last_clear < rule.cooldown_us
                ):
                    continue
                state.active.add(node)
                state.fires += 1
                fired += self._actuate(rule, rule.do, node, value, now_us)
        return fired

    # -- actuation ------------------------------------------------------
    def _actuate(
        self,
        rule: MonitorRule,
        actions: tuple[Action, ...],
        node: int,
        value: float,
        now_us: int,
    ) -> int:
        fired = 0
        for action in actions:
            spec = action.filter_spec()
            if spec is not None:
                target = action.target if action.target is not None else node
                if not self.actuator.push_filter(target, spec):
                    self.pushes_deferred += 1
            elif action.kind == "sync_round":
                self.actuator.request_sync_round()
            elif action.kind == "alert":
                self.actuator.emit_alert(
                    self._alert_record(rule.name, node, value, now_us)
                )
                self.alerts_emitted += 1
            fired += 1
            self.actions_fired += 1
        return fired

    @staticmethod
    def _alert_record(
        rule_name: str, node: int, value: float, now_us: int
    ) -> EventRecord:
        """Build one alert record: (rule name, tripping node, value)."""
        return EventRecord(
            event_id=ALERT_EVENT_ID,
            timestamp=now_us,
            field_types=(
                FieldType.X_STRING,
                FieldType.X_UINT,
                FieldType.X_DOUBLE,
            ),
            values=(rule_name, node, float(value)),
        )

    # ------------------------------------------------------------------
    # introspection (tests, stats dumps)
    # ------------------------------------------------------------------
    def active_rules(self) -> dict[str, frozenset[int]]:
        """Currently-tripped nodes per rule (empty sets omitted)."""
        return {
            name: frozenset(state.active)
            for name, state in self._states.items()
            if state.active
        }

    def latest_metric(self, name: str, node_id: int = 0) -> float | None:
        """The last-seen value of a self-reported metric, if any."""
        return self._metrics.get((node_id, name))
