"""Adaptive steering: declarative runtime monitors evaluated at the ISM.

Public surface:

* :class:`~repro.monitor.spec.MonitorSpec` (and its parts
  :class:`~repro.monitor.spec.MonitorRule`,
  :class:`~repro.monitor.spec.Condition`,
  :class:`~repro.monitor.spec.Action`) — the JSON-loadable rule language;
* :class:`~repro.monitor.engine.MonitorEngine` — the consumer that
  evaluates a spec against the live delivered stream and actuates over
  an :class:`~repro.monitor.engine.Actuator`;
* :data:`~repro.monitor.engine.ALERT_EVENT_ID` — the event id alert
  records carry through the normal pipeline.
"""

from repro.monitor.engine import ALERT_EVENT_ID, Actuator, MonitorEngine
from repro.monitor.spec import (
    ACTION_KINDS,
    CONDITION_KINDS,
    Action,
    Condition,
    MonitorRule,
    MonitorSpec,
)

__all__ = [
    "ACTION_KINDS",
    "ALERT_EVENT_ID",
    "Action",
    "Actuator",
    "CONDITION_KINDS",
    "Condition",
    "MonitorEngine",
    "MonitorRule",
    "MonitorSpec",
]
