"""Declarative monitor specs: conditions over the live stream, actions back.

A :class:`MonitorSpec` is a small set of rules the ISM evaluates against
its own delivered stream — "if the event rate from node X exceeds R,
lower its sampling; if the sorter heap grows, shed load; if the anomaly
event fires, restore full fidelity and alert".  Rules are pure data
(JSON-loadable, hashable value objects) so a spec can ship on the
``brisk-ism`` command line, live in a deployment config, or be built in a
test; the evaluation loop lives in :mod:`repro.monitor.engine`.

Two condition kinds cover the steering cases:

* ``rate`` — records per second over a sliding window, optionally
  restricted to one event id and/or one node;
* ``metric`` — the latest value of a named self-emitted metric
  (:mod:`repro.obs.reporter` records riding the normal pipeline).

Actions actuate through the same control channel users steer with:
``set_sampling``/``set_filter``/``block_events``/``restore`` push a
:class:`~repro.core.filtering.FilterSpec` to the tripping node's EXS,
``sync_round`` requests an extra clock-sync round, and ``alert`` injects
an alert record into the delivered stream itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.filtering import FIELD_TEST_OPS, FieldTest, FilterSpec

__all__ = [
    "Action",
    "ACTION_KINDS",
    "Condition",
    "CONDITION_KINDS",
    "MonitorRule",
    "MonitorSpec",
]

#: Supported condition kinds.
CONDITION_KINDS: tuple[str, ...] = ("rate", "metric")

#: Supported action kinds.
ACTION_KINDS: tuple[str, ...] = (
    "set_sampling",
    "set_filter",
    "block_events",
    "sync_round",
    "alert",
    "restore",
)


@dataclass(frozen=True)
class Condition:
    """One trigger: a windowed rate or a metric value crossing a threshold.

    Attributes
    ----------
    kind:
        ``"rate"`` (records/second over ``window_us``) or ``"metric"``
        (latest value of the named self-emitted metric).
    event_id:
        For ``rate``: count only this event id (None = all events).
    node_id:
        Restrict to one node.  None means *per node*: the condition is
        evaluated independently for every node seen, and each node trips
        (and clears) on its own — actions with ``target=None`` then aim
        at whichever node tripped.
    metric:
        For ``metric``: the scalar's name as emitted by the reporter.
    above / below:
        Exactly one must be set; ``above`` trips when ``value > above``,
        ``below`` when ``value < below``.
    window_us:
        Rate window length.  Rounded up to whole engine buckets.
    clear_factor:
        Hysteresis: an ``above`` condition clears only once the value
        falls to ``above * clear_factor`` (a ``below`` condition once it
        rises to ``below / clear_factor``).  1.0 disables hysteresis.
    """

    kind: str
    event_id: int | None = None
    node_id: int | None = None
    metric: str | None = None
    above: float | None = None
    below: float | None = None
    window_us: int = 1_000_000
    clear_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in CONDITION_KINDS:
            raise ValueError(f"unknown condition kind {self.kind!r}")
        if (self.above is None) == (self.below is None):
            raise ValueError("exactly one of above/below must be set")
        if self.kind == "metric" and not self.metric:
            raise ValueError("metric condition requires a metric name")
        if self.kind == "rate" and self.metric is not None:
            raise ValueError("rate condition does not take a metric name")
        if self.window_us < 1:
            raise ValueError("window_us must be positive")
        if not 0.0 < self.clear_factor <= 1.0:
            raise ValueError("clear_factor must be in (0, 1]")

    def tripped(self, value: float) -> bool:
        """Whether *value* crosses the trip threshold."""
        if self.above is not None:
            return value > self.above
        assert self.below is not None
        return value < self.below

    def cleared(self, value: float) -> bool:
        """Whether *value* is back inside the hysteresis band."""
        if self.above is not None:
            return value <= self.above * self.clear_factor
        assert self.below is not None
        return value >= self.below / self.clear_factor


@dataclass(frozen=True)
class Action:
    """One actuation a tripped (or cleared) rule performs.

    Attributes
    ----------
    kind:
        One of :data:`ACTION_KINDS`.
    target:
        EXS/node id to steer.  None aims at the node that tripped the
        condition (only meaningful for the filter-pushing kinds).
    sample_every:
        For ``set_sampling``: the pushed sampling divisor.
    events:
        For ``block_events``: event ids to block at the source.
    spec:
        For ``set_filter``: the full spec to push verbatim.
    """

    kind: str
    target: int | None = None
    sample_every: int = 1
    events: tuple[int, ...] = ()
    spec: FilterSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        if self.kind == "set_sampling" and self.sample_every < 1:
            raise ValueError("set_sampling requires sample_every >= 1")
        if self.kind == "set_filter" and self.spec is None:
            raise ValueError("set_filter requires a spec")
        if self.kind == "block_events" and not self.events:
            raise ValueError("block_events requires at least one event id")

    def filter_spec(self) -> FilterSpec | None:
        """The :class:`FilterSpec` this action pushes, if it pushes one."""
        if self.kind == "set_sampling":
            return FilterSpec(sample_every=self.sample_every)
        if self.kind == "set_filter":
            return self.spec
        if self.kind == "block_events":
            return FilterSpec(blocked_events=frozenset(self.events))
        if self.kind == "restore":
            return FilterSpec()
        return None


@dataclass(frozen=True)
class MonitorRule:
    """A named (condition → actions) pair with flap damping.

    ``do`` fires when the condition trips, ``on_clear`` when it falls
    back inside the hysteresis band.  While a rule is active for a node
    it does not re-fire; after clearing, ``cooldown_us`` must elapse
    before the same (rule, node) may trip again.
    """

    name: str
    when: Condition
    do: tuple[Action, ...]
    on_clear: tuple[Action, ...] = ()
    cooldown_us: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if not isinstance(self.do, tuple):
            object.__setattr__(self, "do", tuple(self.do))
        if not isinstance(self.on_clear, tuple):
            object.__setattr__(self, "on_clear", tuple(self.on_clear))
        if not self.do:
            raise ValueError(f"rule {self.name!r} has no actions")
        if self.cooldown_us < 0:
            raise ValueError("cooldown_us must be >= 0")


@dataclass(frozen=True)
class MonitorSpec:
    """A complete monitor program: rules plus the rate-bucket granularity."""

    rules: tuple[MonitorRule, ...] = ()
    bucket_us: int = 100_000

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))
        if self.bucket_us < 1:
            raise ValueError("bucket_us must be positive")
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError("rule names must be unique")

    # ------------------------------------------------------------------
    # JSON loading (the ``brisk-ism --monitor-spec`` file format)
    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, text: str) -> "MonitorSpec":
        """Parse a spec from its JSON form (see ``docs/monitor-spec.md``)."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"monitor spec is not valid JSON: {exc}") from exc
        if not isinstance(doc, Mapping):
            raise ValueError("monitor spec must be a JSON object")
        rules = doc.get("rules", [])
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise ValueError("'rules' must be a list")
        return cls(
            rules=tuple(_rule_from_obj(obj) for obj in rules),
            bucket_us=int(doc.get("bucket_us", 100_000)),
        )

    @classmethod
    def load(cls, path: str) -> "MonitorSpec":
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ----------------------------------------------------------------------
# JSON helpers
# ----------------------------------------------------------------------

def _opt_int(obj: Mapping[str, Any], key: str) -> int | None:
    value = obj.get(key)
    return None if value is None else int(value)


def _opt_float(obj: Mapping[str, Any], key: str) -> float | None:
    value = obj.get(key)
    return None if value is None else float(value)


def _require_mapping(obj: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise ValueError(f"{what} must be a JSON object")
    return obj


def _filter_spec_from_obj(obj: Any) -> FilterSpec:
    spec = _require_mapping(obj, "filter spec")
    tests = []
    for entry in spec.get("field_tests", []):
        test = _require_mapping(entry, "field test")
        op = str(test.get("op", ""))
        if op not in FIELD_TEST_OPS:
            raise ValueError(f"unknown field-test op {op!r}")
        raw = test.get("value")
        if not isinstance(raw, (int, float)) or isinstance(raw, bool):
            raise ValueError(f"field-test value must be numeric, got {raw!r}")
        tests.append(FieldTest(int(test.get("field_index", 0)), op, raw))
    allowed_events = spec.get("allowed_events")
    allowed_nodes = spec.get("allowed_nodes")
    return FilterSpec(
        allowed_events=(
            None if allowed_events is None
            else frozenset(int(x) for x in allowed_events)
        ),
        blocked_events=frozenset(int(x) for x in spec.get("blocked_events", [])),
        allowed_nodes=(
            None if allowed_nodes is None
            else frozenset(int(x) for x in allowed_nodes)
        ),
        sample_every=int(spec.get("sample_every", 1)),
        field_tests=tuple(tests),
    )


def _condition_from_obj(obj: Any) -> Condition:
    cond = _require_mapping(obj, "condition")
    metric = cond.get("metric")
    return Condition(
        kind=str(cond.get("kind", "")),
        event_id=_opt_int(cond, "event_id"),
        node_id=_opt_int(cond, "node_id"),
        metric=None if metric is None else str(metric),
        above=_opt_float(cond, "above"),
        below=_opt_float(cond, "below"),
        window_us=int(cond.get("window_us", 1_000_000)),
        clear_factor=float(cond.get("clear_factor", 1.0)),
    )


def _action_from_obj(obj: Any) -> Action:
    action = _require_mapping(obj, "action")
    raw_spec = action.get("spec")
    return Action(
        kind=str(action.get("kind", "")),
        target=_opt_int(action, "target"),
        sample_every=int(action.get("sample_every", 1)),
        events=tuple(int(x) for x in action.get("events", [])),
        spec=None if raw_spec is None else _filter_spec_from_obj(raw_spec),
    )


def _rule_from_obj(obj: Any) -> MonitorRule:
    rule = _require_mapping(obj, "rule")
    do = rule.get("do", [])
    on_clear = rule.get("on_clear", [])
    if not isinstance(do, Sequence) or isinstance(do, (str, bytes)):
        raise ValueError("'do' must be a list of actions")
    if not isinstance(on_clear, Sequence) or isinstance(on_clear, (str, bytes)):
        raise ValueError("'on_clear' must be a list of actions")
    return MonitorRule(
        name=str(rule.get("name", "")),
        when=_condition_from_obj(rule.get("when")),
        do=tuple(_action_from_obj(a) for a in do),
        on_clear=tuple(_action_from_obj(a) for a in on_clear),
        cooldown_us=int(rule.get("cooldown_us", 0)),
    )
