"""Disk-fault injection for the commit log — the chaos toolkit's I/O leg.

:class:`~repro.wire.chaos.ChaosProxy` injects *network* faults; this
module injects *storage* faults: every write and fsync the commit log
issues goes through a :class:`DiskFaults` hook, and tests program it to
fail in the ways real disks do — ``ENOSPC``, a short write that tears a
record frame, an fsync that errors.  The contract under test is that the
writer **surfaces** the error (poisoning itself so no later sync can lie
about durability) instead of silently dropping records, and that the ISM
above it degrades gracefully: stops acking, keeps serving.

The default instance passes everything through untouched, so production
code pays one attribute call per batched write.
"""

from __future__ import annotations

import errno
import os
from typing import BinaryIO

__all__ = ["DiskFaults"]


class DiskFaults:
    """Programmable write/fsync failure hook.

    * ``enospc_after_bytes`` — once that many payload bytes have been
      written, every further write raises ``OSError(ENOSPC)`` *before*
      touching the file (the kernel-rejects-the-write case);
    * ``short_write_at_bytes`` — the write crossing that byte count is
      truncated mid-record and then fails (the torn-frame case: some
      bytes land, the rest do not);
    * ``fail_fsync`` — every fsync raises ``OSError(EIO)`` (the
      thinly-provisioned-volume / dying-device case).

    All three are mutable at runtime so a test can let a log run healthy,
    then break the disk under it.
    """

    def __init__(
        self,
        *,
        enospc_after_bytes: int | None = None,
        short_write_at_bytes: int | None = None,
        fail_fsync: bool = False,
    ) -> None:
        self.enospc_after_bytes = enospc_after_bytes
        self.short_write_at_bytes = short_write_at_bytes
        self.fail_fsync = fail_fsync
        #: Payload bytes successfully handed to the OS so far.
        self.bytes_written = 0
        #: Faults actually fired (so tests can assert the injection ran).
        self.writes_failed = 0
        self.fsyncs_failed = 0

    # ------------------------------------------------------------------
    def write(self, stream: BinaryIO, payload: bytes) -> None:
        """Write *payload* to *stream*, honoring the programmed faults.

        Raises :class:`OSError` on an injected failure; a short write
        leaves a torn prefix in the file first, exactly like a real
        partial write would.
        """
        if (
            self.enospc_after_bytes is not None
            and self.bytes_written >= self.enospc_after_bytes
        ):
            self.writes_failed += 1
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC))
        if (
            self.short_write_at_bytes is not None
            and self.bytes_written < self.short_write_at_bytes
            and self.bytes_written + len(payload) > self.short_write_at_bytes
        ):
            keep = self.short_write_at_bytes - self.bytes_written
            stream.write(payload[:keep])
            self.bytes_written += keep
            self.writes_failed += 1
            raise OSError(
                errno.EIO, f"short write: {keep} of {len(payload)} bytes"
            )
        stream.write(payload)
        self.bytes_written += len(payload)

    def fsync(self, fd: int) -> None:
        """Fsync *fd*, honoring the programmed fsync fault."""
        if self.fail_fsync:
            self.fsyncs_failed += 1
            raise OSError(errno.EIO, "injected fsync failure")
        os.fsync(fd)
