"""Durable segmented commit log for the BRISK delivery stream.

Public façade: :class:`CommitLog` (append / sync / read / recover),
:class:`LogConfig` (segment roll, fsync policy, retention),
:class:`ConsumerGroup` (committed-offset cursors), :class:`DiskFaults`
(chaos-toolkit storage fault injection), and the segment codec
primitives for tooling that inspects raw segment files.
"""

from repro.log.commitlog import (
    CHECKPOINT_FILE,
    CommitLog,
    ConsumerGroup,
    LogConfig,
    OffsetOutOfRange,
    iter_log,
)
from repro.log.faults import DiskFaults
from repro.log.segment import (
    LogCorruption,
    SegmentScan,
    scan_segment,
    segment_path,
)

__all__ = [
    "CommitLog",
    "LogConfig",
    "ConsumerGroup",
    "OffsetOutOfRange",
    "iter_log",
    "DiskFaults",
    "LogCorruption",
    "SegmentScan",
    "scan_segment",
    "segment_path",
    "CHECKPOINT_FILE",
]
