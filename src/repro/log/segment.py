"""Segment file layout of the commit log — pure codec and scan logic.

A segment file holds a contiguous run of NOTICE records starting at an
absolute log offset (its **base offset**, also its file name):

* a 16-byte header: magic ``BRSKLOG1`` + the base offset (``<8sQ``), so
  a stray file can never be mistaken for a segment;
* then back-to-back **entries**: ``<II`` (payload length, CRC-32 of the
  payload) followed by the payload — one record per entry, in the
  :mod:`repro.core.native` binary layout, so one log offset is exactly
  one record.

The per-entry CRC is what makes crash recovery a *scan*, not a prayer:
:func:`scan_segment` walks entries from the header forward and stops at
the first length that does not fit or payload that does not match its
CRC — everything before that point is the committed prefix, everything
after is a torn tail to truncate.  A sparse index (``<base>.idx``,
entries ``<II`` = (records before this point, file position)) lets reads
seek near an offset without replaying the segment; it is advisory and
rebuilt from a scan whenever missing or implausible.

Everything in this module is pure bytes-in/bytes-out (no clocks, no
file handles except the explicit scan/read helpers), which is what lets
the torn-tail property test truncate at *every byte boundary* and assert
recovery yields exactly the committed prefix.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.core import native
from repro.core.records import EventRecord

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_HEADER",
    "ENTRY_HEADER",
    "LogCorruption",
    "encode_entry",
    "decode_entry",
    "iter_entries",
    "SegmentScan",
    "scan_segment",
    "segment_path",
    "index_path",
    "pack_index",
    "unpack_index",
]

#: First 8 bytes of every segment file.
SEGMENT_MAGIC = b"BRSKLOG1"
#: Segment header: magic + base offset (absolute log offset of entry 0).
SEGMENT_HEADER = struct.Struct("<8sQ")
#: Per-entry header: payload length, CRC-32 of the payload.
ENTRY_HEADER = struct.Struct("<II")
#: Sparse-index entry: (records before this point, file position).
INDEX_ENTRY = struct.Struct("<II")

#: A record bigger than this is a corrupt length field, not data — the
#: scan treats it as the torn tail rather than seeking gigabytes ahead.
MAX_RECORD_BYTES = 1 << 20


class LogCorruption(ValueError):
    """A segment's bytes violate the entry framing (not merely torn)."""


def encode_entry(record: EventRecord) -> bytes:
    """Frame one record as a segment entry (header + native payload)."""
    payload = native.pack_record(record)
    return ENTRY_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_entry(buf: bytes, pos: int = 0) -> tuple[EventRecord, int]:
    """Decode the entry at *pos*; returns ``(record, next_pos)``.

    Raises :class:`LogCorruption` when the framing or CRC is invalid —
    callers that expect a possibly-torn tail use :func:`iter_entries`
    or :func:`scan_segment`, which stop instead of raising.
    """
    end = _entry_end(buf, pos)
    if end is None:
        raise LogCorruption(f"invalid or torn entry at byte {pos}")
    payload = buf[pos + ENTRY_HEADER.size : end]
    record, _ = native.unpack_record(payload)
    return record, end


def _entry_end(buf: bytes, pos: int) -> int | None:
    """End position of a valid entry at *pos*, or None if torn/corrupt."""
    if pos + ENTRY_HEADER.size > len(buf):
        return None
    length, crc = ENTRY_HEADER.unpack_from(buf, pos)
    if length == 0 or length > MAX_RECORD_BYTES:
        return None
    end = pos + ENTRY_HEADER.size + length
    if end > len(buf):
        return None
    if zlib.crc32(buf[pos + ENTRY_HEADER.size : end]) != crc:
        return None
    return end


def iter_entries(
    buf: bytes, pos: int = 0
) -> Iterator[tuple[EventRecord, int, int]]:
    """Yield ``(record, entry_pos, next_pos)`` for every valid entry from
    *pos*, stopping silently at the first torn or corrupt one."""
    while True:
        end = _entry_end(buf, pos)
        if end is None:
            return
        payload = buf[pos + ENTRY_HEADER.size : end]
        try:
            record, _ = native.unpack_record(payload)
        except native.NativeCodecError:
            # CRC-valid bytes that are not a record: treat as the torn
            # point (a 1-in-2^32 collision, or foreign bytes).
            return
        yield record, pos, end
        pos = end


@dataclass(frozen=True)
class SegmentScan:
    """What a forward scan of one segment file established."""

    #: Absolute log offset of the segment's first record.
    base_offset: int
    #: Valid records found.
    record_count: int
    #: File position one past the last valid entry (truncate here).
    valid_end: int
    #: Actual file size; ``file_size - valid_end`` is the torn tail.
    file_size: int
    #: File position of each valid entry, parallel to record order.
    positions: tuple[int, ...]
    #: Timestamp of the last valid record (None when empty).
    last_timestamp: int | None


def scan_segment(path: str) -> SegmentScan:
    """Scan one segment file front to back, CRC-checking every entry.

    Raises :class:`LogCorruption` when the file header itself is bad —
    a torn *tail* is expected after a crash, a bad *head* means the file
    is not a segment at all.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    if len(data) < SEGMENT_HEADER.size:
        raise LogCorruption(f"{path}: shorter than a segment header")
    magic, base_offset = SEGMENT_HEADER.unpack_from(data, 0)
    if magic != SEGMENT_MAGIC:
        raise LogCorruption(f"{path}: bad magic {magic!r}")
    positions: list[int] = []
    valid_end = SEGMENT_HEADER.size
    last_ts: int | None = None
    for record, pos, end in iter_entries(data, SEGMENT_HEADER.size):
        positions.append(pos)
        valid_end = end
        last_ts = record.timestamp
    return SegmentScan(
        base_offset=base_offset,
        record_count=len(positions),
        valid_end=valid_end,
        file_size=len(data),
        positions=tuple(positions),
        last_timestamp=last_ts,
    )


# ----------------------------------------------------------------------
# file naming and the sparse index
# ----------------------------------------------------------------------
def segment_path(directory: str, base_offset: int) -> str:
    """Canonical segment file path: 20-digit zero-padded base offset."""
    return os.path.join(directory, f"{base_offset:020d}.seg")


def index_path(seg_path: str) -> str:
    """The advisory sparse-index path beside a segment file."""
    return seg_path[: -len(".seg")] + ".idx" if seg_path.endswith(".seg") else seg_path + ".idx"


def pack_index(entries: list[tuple[int, int]]) -> bytes:
    """Serialize sparse-index entries (rel record count, file pos)."""
    return b"".join(INDEX_ENTRY.pack(rel, pos) for rel, pos in entries)


def unpack_index(data: bytes, valid_end: int | None = None) -> list[tuple[int, int]]:
    """Parse a sparse index, dropping implausible entries.

    The index is advisory: entries must be strictly increasing in both
    components, point past the segment header, and (when *valid_end* is
    known) inside the valid region.  Anything else is discarded — a
    reader then simply scans from the last good entry (or the header).
    """
    entries: list[tuple[int, int]] = []
    limit = len(data) - len(data) % INDEX_ENTRY.size
    prev_rel, prev_pos = -1, SEGMENT_HEADER.size - 1
    for off in range(0, limit, INDEX_ENTRY.size):
        rel, pos = INDEX_ENTRY.unpack_from(data, off)
        if rel <= prev_rel or pos <= prev_pos:
            break
        if valid_end is not None and pos >= valid_end:
            break
        entries.append((rel, pos))
        prev_rel, prev_pos = rel, pos
    return entries
