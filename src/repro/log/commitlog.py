"""The durable segmented commit log — BRISK's stream of record on disk.

PRs 3–7 made the EXS→ISM stream exactly-once *in flight*; this module
gives the delivered stream a durable resting place so an ISM crash after
ack loses nothing and consumers attach, detach, and replay on their own
schedule instead of backpressuring the sorter:

* **segments** — append-only files framed per record with a CRC
  (:mod:`repro.log.segment`), rolled by size or age, retired by
  size/age retention; one log *offset* is one record, forever;
* **fsync policy** — ``batch`` (every append durable before it
  returns), ``interval`` (fsync at most every ``fsync_interval_s``),
  ``off`` (fsync only on explicit :meth:`CommitLog.sync`/close);
* **checkpoint** — :meth:`CommitLog.sync` fsyncs the tail and writes an
  atomic checkpoint (durable end offset + per-source acked batch seqs,
  via :func:`repro.util.durability.write_file_durable`).  The ISM's
  durable mode acks an EXS only *after* this returns, so the checkpoint
  is exactly the ack frontier;
* **recovery** — opening an existing log scans the tail segment,
  truncates the torn tail at the last valid CRC, and — when a
  checkpoint exists — truncates further back to the checkpointed
  durable end: bytes past it were never acked, and keeping them would
  duplicate the retransmissions that are already on their way;
* **consumer groups** — named committed offsets (tiny files under
  ``offsets/``), so a late-joining consumer replays from any offset and
  a slow one never stalls delivery (its lag is just a number).

Failure discipline: the first failed write or fsync *poisons* the log —
every later append and sync re-raises — because a writer that kept going
past a short write would interleave torn frames with good ones, and a
sync that succeeded after a failed write would let the ISM ack records
that never reached the disk.  The ISM above degrades gracefully: it
stops acking (EXS outboxes hold the stream) but keeps serving.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Mapping, Sequence

from repro.core.records import EventRecord
from repro.log.faults import DiskFaults
from repro.log.segment import (
    SEGMENT_HEADER,
    SEGMENT_MAGIC,
    LogCorruption,
    encode_entry,
    index_path,
    iter_entries,
    pack_index,
    scan_segment,
    segment_path,
    unpack_index,
)
from repro.obs.metrics import MetricsRegistry
from repro.util import durability
from repro.util.timebase import monotonic_s

__all__ = [
    "LogConfig",
    "CommitLog",
    "ConsumerGroup",
    "OffsetOutOfRange",
    "iter_log",
    "CHECKPOINT_FILE",
]

#: Checkpoint file name inside the log directory.
CHECKPOINT_FILE = "checkpoint"
#: Consumer-group offsets live here, one file per group.
OFFSETS_DIR = "offsets"
#: Legal consumer-group names (they become file names).
_GROUP_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_FSYNC_POLICIES = ("batch", "interval", "off")


class OffsetOutOfRange(ValueError):
    """A read below the retained start or a commit outside the log."""


def iter_log(
    directory: str | os.PathLike, start: int = 0
) -> Iterator[EventRecord]:
    """Read-only iteration over a log directory from offset *start*.

    Unlike opening a :class:`CommitLog` (which *recovers*: truncates torn
    tails, honors the checkpoint, resumes appends), this never writes —
    it scans each segment and yields the currently-valid record prefix,
    so it is safe against a log another process is appending to.
    """
    path = os.fspath(directory)
    bases = sorted(
        int(name[:-4])
        for name in os.listdir(path)
        if name.endswith(".seg") and name[:-4].isdigit()
    )
    for i, base in enumerate(bases):
        # A sealed segment's extent is bounded by the next base; skip
        # whole segments below *start* without scanning them.
        if i + 1 < len(bases) and bases[i + 1] <= start:
            continue
        scan = scan_segment(segment_path(path, base))
        if base + scan.record_count <= start:
            continue
        with open(segment_path(path, base), "rb") as stream:
            data = stream.read(scan.valid_end)
        offset = base
        for record, _pos, _end in iter_entries(data, SEGMENT_HEADER.size):
            if offset >= start:
                yield record
            offset += 1


@dataclass(frozen=True)
class LogConfig:
    """Commit-log knobs (see docs/tuning-guide.md, durability section)."""

    #: Roll the active segment once it holds this many bytes.
    segment_bytes: int = 64 << 20
    #: Also roll a non-empty segment older than this (None: size only).
    segment_interval_s: float | None = None
    #: Sparse-index granularity: one index entry per this many bytes.
    index_interval_bytes: int = 65536
    #: ``batch`` | ``interval`` | ``off`` — when appends fsync.
    fsync: str = "batch"
    #: Fsync cadence for the ``interval`` policy, seconds.
    fsync_interval_s: float = 0.05
    #: Retire oldest sealed segments while the log exceeds this (None: keep).
    retain_bytes: int | None = None
    #: Retire sealed segments whose newest record is this much older than
    #: the log's newest record, microseconds (None: keep).
    retain_age_us: int | None = None

    def __post_init__(self) -> None:
        if self.fsync not in _FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {_FSYNC_POLICIES}")
        if self.segment_bytes < SEGMENT_HEADER.size + 1:
            raise ValueError("segment_bytes too small for even one record")
        if self.index_interval_bytes < 1:
            raise ValueError("index_interval_bytes must be positive")


class _Segment:
    """In-memory state for one segment file."""

    __slots__ = (
        "base", "path", "count", "size", "last_ts", "index",
        "last_index_pos", "opened_s",
    )

    def __init__(self, base: int, path: str) -> None:
        self.base = base
        self.path = path
        self.count = 0
        self.size = SEGMENT_HEADER.size
        #: Timestamp of the newest record (None when unknown/empty).
        self.last_ts: int | None = None
        #: Sparse index [(rel record count, file pos)]; None = not loaded.
        self.index: list[tuple[int, int]] | None = None
        self.last_index_pos = SEGMENT_HEADER.size
        self.opened_s = 0.0


class CommitLog:
    """Append-only segmented record log with offsets and recovery.

    Opening a directory that already holds a log **recovers** it (torn
    tail truncated, checkpoint honored) and resumes appending; opening
    an empty directory creates segment 0.  All methods are single-writer:
    one process appends, any number read through their own handles.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        config: LogConfig = LogConfig(),
        *,
        faults: DiskFaults | None = None,
        time_fn=monotonic_s,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._dir = os.fspath(directory)
        self.config = config
        self._faults = faults if faults is not None else DiskFaults()
        self._time_fn = time_fn
        self._broken: BaseException | None = None
        self._closed = False
        self._sources: dict[int, int] = {}
        self._checkpointed = False
        #: durable_end recorded by the last checkpoint write (-1: none).
        self._checkpoint_durable_end = -1
        self._file: BinaryIO | None = None
        self._idx_file: BinaryIO | None = None
        self._last_fsync_s = time_fn()
        self.metrics = metrics if metrics is not None else MetricsRegistry(time_fn=time_fn)
        reg = self.metrics
        self.records_appended = reg.counter("log.records_appended")
        self.bytes_appended = reg.counter("log.bytes_appended")
        self.fsyncs = reg.counter("log.fsyncs")
        self.append_errors = reg.counter("log.append_errors")
        self.segments_rolled = reg.counter("log.segments_rolled")
        self.segments_retired = reg.counter("log.segments_retired")
        self.torn_bytes_truncated = reg.counter("log.torn_bytes_truncated")
        self.checkpoint_truncated_records = reg.counter(
            "log.checkpoint_truncated_records"
        )
        self.fsync_hist = reg.histogram("log.fsync_us")
        reg.gauge_fn("log.segments", lambda: len(self._segments))
        reg.gauge_fn("log.start_offset", lambda: self.start_offset)
        reg.gauge_fn("log.end_offset", lambda: self.end_offset)
        reg.gauge_fn("log.durable_offset", lambda: self.durable_offset)
        reg.gauge_fn("log.group_lag_max", self._max_group_lag)

        os.makedirs(self._dir, exist_ok=True)
        os.makedirs(os.path.join(self._dir, OFFSETS_DIR), exist_ok=True)
        self._segments: list[_Segment] = []
        self._recover()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        # Interrupted atomic writes leave .part litter; the rename never
        # happened, so the litter is dead weight.
        for name in os.listdir(self._dir):
            if name.endswith(".part"):
                try:
                    os.remove(os.path.join(self._dir, name))
                except OSError:
                    pass
        bases = sorted(
            int(name[:-4])
            for name in os.listdir(self._dir)
            if name.endswith(".seg") and name[:-4].isdigit()
        )
        checkpoint = self._read_checkpoint()
        durable_target: int | None = None
        if checkpoint is not None:
            self._sources = {
                int(k): int(v) for k, v in checkpoint.get("sources", {}).items()
            }
            self._checkpointed = True
            durable_target = int(checkpoint["durable_end"])
        if not bases:
            self._segments = []
            self._open_fresh_segment(0)
            self._durable_offset = self._end_offset = 0
            self._faults.bytes_written = 0
            return
        self._segments = [
            _Segment(base, segment_path(self._dir, base)) for base in bases
        ]
        # Sealed segment record counts follow from the base-offset chain.
        for seg, nxt in zip(self._segments, self._segments[1:]):
            seg.count = nxt.base - seg.base
            seg.size = os.path.getsize(seg.path)
        # Scan/truncate the tail; deleting a whole tail segment exposes
        # the previous one as the new tail, so loop until stable.
        while True:
            tail = self._segments[-1]
            scan = scan_segment(tail.path)
            if scan.base_offset != tail.base:
                raise LogCorruption(
                    f"{tail.path}: header offset {scan.base_offset} != name"
                )
            if scan.file_size > scan.valid_end:
                os.truncate(tail.path, scan.valid_end)
                self.torn_bytes_truncated += scan.file_size - scan.valid_end
            tail.count = scan.record_count
            tail.size = scan.valid_end
            tail.last_ts = scan.last_timestamp
            end = tail.base + tail.count
            if durable_target is not None and durable_target < end:
                if durable_target <= tail.base and len(self._segments) > 1:
                    # Entire tail segment is past the ack frontier.
                    self.checkpoint_truncated_records += tail.count
                    self._remove_segment_files(tail)
                    self._segments.pop()
                    continue
                keep = max(0, durable_target - tail.base)
                cut = (
                    scan.positions[keep]
                    if keep < scan.record_count
                    else scan.valid_end
                )
                if cut < tail.size:
                    os.truncate(tail.path, cut)
                    self.checkpoint_truncated_records += tail.count - keep
                    tail.count = keep
                    tail.size = cut
                    tail.last_ts = None  # unknown without a rescan; unused
            break
        tail = self._segments[-1]
        # Rebuild the tail's sparse index from the (now clean) scan and
        # rewrite the advisory .idx file to match the truncated reality.
        scan = scan_segment(tail.path)
        tail.index = []
        tail.last_index_pos = SEGMENT_HEADER.size
        interval = self.config.index_interval_bytes
        for rel, pos in enumerate(scan.positions):
            if pos - tail.last_index_pos >= interval:
                tail.index.append((rel, pos))
                tail.last_index_pos = pos
        tail.last_ts = scan.last_timestamp
        with open(index_path(tail.path), "wb") as idx:
            idx.write(pack_index(tail.index))
        self._end_offset = tail.base + tail.count
        # Everything that survived recovery is made durable right now, so
        # the in-memory durable frontier starts truthful.
        self._file = open(tail.path, "ab", buffering=0)
        os.fsync(self._file.fileno())
        durability.fsync_dir(self._dir)
        self._durable_offset = self._end_offset
        self._idx_file = open(index_path(tail.path), "ab")
        tail.opened_s = self._time_fn()
        self._faults.bytes_written = 0

    def _read_checkpoint(self) -> dict | None:
        path = os.path.join(self._dir, CHECKPOINT_FILE)
        try:
            with open(path, "r", encoding="ascii") as stream:
                return json.load(stream)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise LogCorruption(f"unreadable checkpoint: {exc}") from exc

    def _remove_segment_files(self, seg: _Segment) -> None:
        for path in (seg.path, index_path(seg.path)):
            try:
                os.remove(path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # offsets and introspection
    # ------------------------------------------------------------------
    @property
    def start_offset(self) -> int:
        """Oldest offset still retained."""
        return self._segments[0].base if self._segments else 0

    @property
    def end_offset(self) -> int:
        """Next offset to be assigned (== records ever appended while
        retention has not retired anything)."""
        return self._end_offset

    @property
    def durable_offset(self) -> int:
        """Offsets below this are fsynced to disk."""
        return self._durable_offset

    @property
    def segment_count(self) -> int:
        """Live segment files (the active one included)."""
        return len(self._segments)

    @property
    def broken(self) -> BaseException | None:
        """The poisoning I/O error, if any write or fsync has failed."""
        return self._broken

    def source_watermarks(self) -> dict[int, int]:
        """Per-source acked batch seqs from the last checkpoint — the
        resume state a restarted ISM seeds its dedup watermarks with."""
        return dict(self._sources)

    def segment_infos(self) -> list[dict]:
        """Per-segment summary for tooling (brisk-log info)."""
        out = []
        for i, seg in enumerate(self._segments):
            out.append(
                {
                    "base_offset": seg.base,
                    "records": seg.count,
                    "bytes": seg.size,
                    "path": seg.path,
                    "active": i == len(self._segments) - 1,
                }
            )
        return out

    def _max_group_lag(self) -> int:
        lags = [self.lag(group) for group in self.groups()]
        return max(lags) if lags else 0

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def append(self, record: EventRecord) -> int:
        """Append one record; returns the offset it was assigned."""
        offset = self._end_offset
        self.append_many((record,))
        return offset

    def append_many(self, records: Sequence[EventRecord]) -> int:
        """Append a slice of records; returns the first offset assigned
        (the current end offset when *records* is empty).

        Raises the poisoning :class:`OSError` — this call's or a previous
        one's — rather than ever dropping records silently.
        """
        self._check_writable()
        if not records:
            return self._end_offset
        self._maybe_roll()
        seg = self._segments[-1]
        first = self._end_offset
        buf = bytearray()
        index_adds: list[tuple[int, int]] = []
        interval = self.config.index_interval_bytes
        last_index_pos = seg.last_index_pos
        for i, record in enumerate(records):
            pos = seg.size + len(buf)
            if pos - last_index_pos >= interval:
                index_adds.append((seg.count + i, pos))
                last_index_pos = pos
            buf += encode_entry(record)
        payload = bytes(buf)
        try:
            self._faults.write(self._file, payload)
        except OSError as exc:
            # A short write may have left a torn frame on disk; nothing
            # appended by this call counts, and the log is poisoned.
            self._broken = exc
            self.append_errors += 1
            raise
        seg.size += len(payload)
        seg.count += len(records)
        seg.last_ts = records[-1].timestamp
        if index_adds:
            seg.last_index_pos = last_index_pos
            if seg.index is None:
                seg.index = []
            seg.index.extend(index_adds)
            if self._idx_file is not None:
                try:
                    self._idx_file.write(pack_index(index_adds))
                except OSError:
                    pass  # the index is advisory; a scan rebuilds it
        self._end_offset += len(records)
        self.records_appended += len(records)
        self.bytes_appended += len(payload)
        policy = self.config.fsync
        if policy == "batch":
            self._fsync_data()
        elif policy == "interval":
            now_s = self._time_fn()
            if now_s - self._last_fsync_s >= self.config.fsync_interval_s:
                self._fsync_data()
        return first

    def _check_writable(self) -> None:
        if self._closed:
            raise RuntimeError("commit log is closed")
        if self._broken is not None:
            raise self._broken

    def _fsync_data(self) -> None:
        t0 = time.perf_counter_ns()
        try:
            self._faults.fsync(self._file.fileno())
        except OSError as exc:
            self._broken = exc
            raise
        self.fsync_hist.observe((time.perf_counter_ns() - t0) / 1_000.0)
        self.fsyncs += 1
        self._durable_offset = self._end_offset
        self._last_fsync_s = self._time_fn()

    def sync(self, sources: Mapping[int, int] | None = None) -> int:
        """Make every appended record durable; returns the durable end.

        With *sources* (per-EXS acked batch seqs), also writes the atomic
        checkpoint that recovery truncates back to — the ISM's durable
        ack path calls this *before* quoting those seqs on the wire, so
        an acked record is durable by construction.
        """
        self._check_writable()
        if self._durable_offset < self._end_offset:
            self._fsync_data()
        if sources is not None:
            changed = not self._checkpointed
            for source, seq in sources.items():
                prev = self._sources.get(source)
                if prev is None or seq > prev:
                    self._sources[source] = seq
                    changed = True
            if changed or self._durable_offset != self._checkpoint_durable_end:
                self._write_checkpoint()
        return self._durable_offset

    def _write_checkpoint(self) -> None:
        payload = json.dumps(
            {
                "durable_end": self._durable_offset,
                "sources": {str(k): v for k, v in self._sources.items()},
                "fsync": self.config.fsync,
            },
            sort_keys=True,
        ).encode("ascii")
        try:
            durability.write_file_durable(
                os.path.join(self._dir, CHECKPOINT_FILE), payload
            )
        except OSError as exc:
            self._broken = exc
            raise
        self._checkpointed = True
        self._checkpoint_durable_end = self._durable_offset

    # ------------------------------------------------------------------
    # segment roll and retention
    # ------------------------------------------------------------------
    def _maybe_roll(self) -> None:
        seg = self._segments[-1]
        if seg.size < self.config.segment_bytes:
            interval = self.config.segment_interval_s
            if (
                interval is None
                or seg.count == 0
                or self._time_fn() - seg.opened_s < interval
            ):
                return
        self._roll()

    def _roll(self) -> None:
        """Seal the active segment and start a new one (durably)."""
        # Seal: the old segment's bytes and the new file's directory
        # entry both survive power loss before any append lands in it.
        self._fsync_data()
        if self._idx_file is not None:
            try:
                self._idx_file.close()
            except OSError:
                pass
        self._file.close()
        self._open_fresh_segment(self._end_offset)
        self.segments_rolled += 1
        self.enforce_retention()

    def _open_fresh_segment(self, base: int) -> None:
        path = segment_path(self._dir, base)
        stream = open(path, "wb", buffering=0)
        try:
            self._faults.write(stream, SEGMENT_HEADER.pack(SEGMENT_MAGIC, base))
            self._faults.fsync(stream.fileno())
        except OSError as exc:
            stream.close()
            self._broken = exc
            raise
        durability.fsync_dir(self._dir)
        self._file = stream
        self._idx_file = open(index_path(path), "wb")
        seg = _Segment(base, path)
        seg.index = []
        seg.opened_s = self._time_fn()
        self._segments.append(seg)

    def enforce_retention(self) -> int:
        """Retire sealed segments per the retention config; returns how
        many were removed.  The active segment is never retired."""
        removed = 0
        while len(self._segments) > 1 and self._should_retire(self._segments[0]):
            seg = self._segments.pop(0)
            self._remove_segment_files(seg)
            self.segments_retired += 1
            removed += 1
        return removed

    def _should_retire(self, seg: _Segment) -> bool:
        cfg = self.config
        if cfg.retain_bytes is not None:
            total = sum(s.size for s in self._segments)
            if total > cfg.retain_bytes:
                return True
        if cfg.retain_age_us is not None and seg.last_ts is not None:
            newest = next(
                (s.last_ts for s in reversed(self._segments) if s.last_ts is not None),
                None,
            )
            if newest is not None and newest - seg.last_ts > cfg.retain_age_us:
                return True
        return False

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, start: int, max_records: int = 1024) -> list[EventRecord]:
        """Up to *max_records* records from offset *start*, in log order.

        Raises :class:`OffsetOutOfRange` below the retained start;
        returns an empty list at or past the end.
        """
        if start < self.start_offset:
            raise OffsetOutOfRange(
                f"offset {start} below retained start {self.start_offset}"
            )
        if start >= self._end_offset or max_records <= 0:
            return []
        out: list[EventRecord] = []
        # Rightmost segment whose base <= start.
        idx = 0
        for i, seg in enumerate(self._segments):
            if seg.base <= start:
                idx = i
            else:
                break
        while idx < len(self._segments) and len(out) < max_records:
            seg = self._segments[idx]
            rel = max(0, start - seg.base)
            out.extend(self._read_segment(seg, rel, max_records - len(out)))
            idx += 1
            if idx < len(self._segments):
                start = self._segments[idx].base
        return out

    def iter_from(self, start: int, chunk: int = 1024) -> Iterator[EventRecord]:
        """Iterate records from *start* to the current end."""
        position = start
        while True:
            batch = self.read(position, chunk)
            if not batch:
                return
            position += len(batch)
            yield from batch

    def _read_segment(self, seg: _Segment, rel: int, limit: int) -> list[EventRecord]:
        if rel >= seg.count or limit <= 0:
            return []
        floor_rel, floor_pos = 0, SEGMENT_HEADER.size
        for entry_rel, entry_pos in self._segment_index(seg):
            if entry_rel <= rel:
                floor_rel, floor_pos = entry_rel, entry_pos
            else:
                break
        with open(seg.path, "rb") as stream:
            stream.seek(floor_pos)
            data = stream.read(seg.size - floor_pos)
        out: list[EventRecord] = []
        skip = rel - floor_rel
        remaining = seg.count - rel
        for record, _pos, _end in iter_entries(data, 0):
            if skip > 0:
                skip -= 1
                continue
            out.append(record)
            remaining -= 1
            if len(out) >= limit or remaining <= 0:
                break
        return out

    def _segment_index(self, seg: _Segment) -> list[tuple[int, int]]:
        if seg.index is not None:
            return seg.index
        # Sealed segment from a previous incarnation: trust the advisory
        # .idx when plausible, rebuild from a scan otherwise.
        try:
            with open(index_path(seg.path), "rb") as stream:
                entries = unpack_index(stream.read(), valid_end=seg.size)
        except OSError:
            entries = []
        if not entries:
            scan = scan_segment(seg.path)
            interval = self.config.index_interval_bytes
            last_pos = SEGMENT_HEADER.size
            entries = []
            for rel, pos in enumerate(scan.positions):
                if pos - last_pos >= interval:
                    entries.append((rel, pos))
                    last_pos = pos
        seg.index = entries
        return entries

    # ------------------------------------------------------------------
    # consumer groups
    # ------------------------------------------------------------------
    def _group_path(self, group: str) -> str:
        if not _GROUP_RE.match(group):
            raise ValueError(f"invalid consumer-group name: {group!r}")
        return os.path.join(self._dir, OFFSETS_DIR, group)

    def committed_offset(self, group: str) -> int | None:
        """The group's committed offset, or None if never committed."""
        try:
            with open(self._group_path(group), "r", encoding="ascii") as stream:
                return int(stream.read().strip())
        except FileNotFoundError:
            return None

    def commit_offset(self, group: str, offset: int) -> None:
        """Durably record that *group* has consumed offsets below *offset*."""
        if not 0 <= offset <= self._end_offset:
            raise OffsetOutOfRange(
                f"commit {offset} outside log [0, {self._end_offset}]"
            )
        durability.write_file_durable(
            self._group_path(group), f"{offset}\n".encode("ascii")
        )

    def groups(self) -> dict[str, int]:
        """Every consumer group and its committed offset."""
        out: dict[str, int] = {}
        offsets_dir = os.path.join(self._dir, OFFSETS_DIR)
        try:
            names = os.listdir(offsets_dir)
        except OSError:
            return out
        for name in sorted(names):
            if name.endswith(".part") or not _GROUP_RE.match(name):
                continue
            committed = self.committed_offset(name)
            if committed is not None:
                out[name] = committed
        return out

    def lag(self, group: str) -> int:
        """Records the group has not consumed yet (end − committed)."""
        committed = self.committed_offset(group)
        base = committed if committed is not None else self.start_offset
        return max(0, self._end_offset - base)

    def consumer(self, group: str, start: int | None = None) -> "ConsumerGroup":
        """Attach (or re-attach) a consumer group cursor."""
        return ConsumerGroup(self, group, start)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush, fsync (best effort once poisoned), checkpoint, close."""
        if self._closed:
            return
        self._closed = True
        if self._broken is None and self._file is not None:
            try:
                if self._durable_offset < self._end_offset:
                    self._fsync_data()
                if self._checkpointed:
                    self._write_checkpoint()
            except OSError:
                pass
        for stream in (self._idx_file, self._file):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self._idx_file = None
        self._file = None


class ConsumerGroup:
    """A named cursor over the log with a durably committed offset.

    ``read`` advances the in-memory position; ``commit`` persists it so a
    re-attach (same group name, new process) resumes where the last
    commit left off.  Passing ``start`` overrides the committed offset —
    ``start=0`` is the full replay-from-the-beginning case.
    """

    def __init__(self, log: CommitLog, name: str, start: int | None = None) -> None:
        self.log = log
        self.name = name
        if start is not None:
            self.position = start
        else:
            committed = log.committed_offset(name)
            self.position = committed if committed is not None else log.start_offset
        if self.position < log.start_offset:
            # The offsets this group last committed have been retired.
            self.position = log.start_offset

    def read(self, max_records: int = 1024) -> list[EventRecord]:
        """Next slice of records; advances the (uncommitted) position."""
        batch = self.log.read(self.position, max_records)
        self.position += len(batch)
        return batch

    def commit(self) -> None:
        """Durably persist the current position for this group."""
        self.log.commit_offset(self.name, self.position)

    def seek(self, offset: int) -> None:
        """Move the cursor without committing."""
        if not self.log.start_offset <= offset <= self.log.end_offset:
            raise OffsetOutOfRange(
                f"seek {offset} outside "
                f"[{self.log.start_offset}, {self.log.end_offset}]"
            )
        self.position = offset

    @property
    def lag(self) -> int:
        """Records appended but not yet read through this cursor."""
        return max(0, self.log.end_offset - self.position)
