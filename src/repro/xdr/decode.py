"""XDR decoder (RFC 4506).

The decoder walks a ``bytes``/``memoryview`` without copying: every accessor
advances an internal cursor and raises :class:`XdrDecodeError` on truncation
or protocol violations (including non-zero padding, which the RFC requires
receivers may check — we do, because silently accepting garbage padding has
historically masked framing bugs in instrumentation streams).
"""

from __future__ import annotations

import struct

from repro.xdr.errors import XdrDecodeError

_UNPACK_I32 = struct.Struct(">i").unpack_from
_UNPACK_U32 = struct.Struct(">I").unpack_from
_UNPACK_I64 = struct.Struct(">q").unpack_from
_UNPACK_U64 = struct.Struct(">Q").unpack_from
_UNPACK_F32 = struct.Struct(">f").unpack_from
_UNPACK_F64 = struct.Struct(">d").unpack_from


class XdrDecoder:
    """Cursor-based XDR decoder over a byte buffer.

    Example::

        dec = XdrDecoder(payload)
        magic = dec.unpack_uint()
        count = dec.unpack_uint()
        dec.done()   # raises if trailing bytes remain
    """

    __slots__ = ("_buf", "_pos")

    def __init__(self, data: bytes | bytearray | memoryview) -> None:
        self._buf = memoryview(data)
        self._pos = 0

    # ------------------------------------------------------------------
    # cursor management
    # ------------------------------------------------------------------
    @property
    def position(self) -> int:
        """Current cursor offset into the buffer."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of bytes not yet consumed."""
        return len(self._buf) - self._pos

    @property
    def buffer(self) -> memoryview:
        """The underlying buffer, for codecs that read it directly.

        The schema-specialized batch decoder unpacks whole records against
        this view with its own offset, then re-syncs the cursor via
        :meth:`seek`.
        """
        return self._buf

    def seek(self, pos: int) -> None:
        """Move the cursor to absolute offset *pos*."""
        if not 0 <= pos <= len(self._buf):
            raise XdrDecodeError(
                f"seek to {pos} outside buffer of {len(self._buf)} bytes"
            )
        self._pos = pos

    def done(self) -> None:
        """Assert the whole buffer has been consumed."""
        if self._pos != len(self._buf):
            raise XdrDecodeError(
                f"{len(self._buf) - self._pos} unconsumed trailing bytes"
            )

    def _need(self, n: int) -> int:
        pos = self._pos
        if pos + n > len(self._buf):
            raise XdrDecodeError(
                f"truncated: need {n} bytes at offset {pos}, "
                f"have {len(self._buf) - pos}"
            )
        self._pos = pos + n
        return pos

    # ------------------------------------------------------------------
    # integral types
    # ------------------------------------------------------------------
    def unpack_int(self) -> int:
        """Decode a 32-bit signed integer."""
        return _UNPACK_I32(self._buf, self._need(4))[0]

    def unpack_uint(self) -> int:
        """Decode a 32-bit unsigned integer."""
        return _UNPACK_U32(self._buf, self._need(4))[0]

    def unpack_hyper(self) -> int:
        """Decode a 64-bit signed integer."""
        return _UNPACK_I64(self._buf, self._need(8))[0]

    def unpack_uhyper(self) -> int:
        """Decode a 64-bit unsigned integer."""
        return _UNPACK_U64(self._buf, self._need(8))[0]

    def unpack_bool(self) -> bool:
        """Decode a boolean; values other than 0/1 are protocol errors."""
        value = self.unpack_int()
        if value not in (0, 1):
            raise XdrDecodeError(f"bool must be 0 or 1, got {value}")
        return bool(value)

    def unpack_enum(self) -> int:
        """Decode an enum (same representation as a signed int)."""
        return self.unpack_int()

    # ------------------------------------------------------------------
    # floating point
    # ------------------------------------------------------------------
    def unpack_float(self) -> float:
        """Decode an IEEE-754 single-precision float."""
        return _UNPACK_F32(self._buf, self._need(4))[0]

    def unpack_double(self) -> float:
        """Decode an IEEE-754 double-precision float."""
        return _UNPACK_F64(self._buf, self._need(8))[0]

    # ------------------------------------------------------------------
    # opaque / string
    # ------------------------------------------------------------------
    def unpack_fopaque(self, n: int) -> bytes:
        """Decode fixed-length opaque data of exactly *n* bytes."""
        pos = self._need(n)
        data = bytes(self._buf[pos : pos + n])
        self._skip_pad(n)
        return data

    def unpack_opaque(self, max_length: int | None = None) -> bytes:
        """Decode variable-length opaque data.

        *max_length* guards against hostile or corrupt length prefixes; the
        wire protocol passes the batch payload size here so a flipped bit in
        the length field cannot trigger a huge allocation.
        """
        n = self.unpack_uint()
        if max_length is not None and n > max_length:
            raise XdrDecodeError(f"opaque length {n} exceeds limit {max_length}")
        if n > self.remaining:
            raise XdrDecodeError(
                f"opaque length {n} exceeds remaining {self.remaining} bytes"
            )
        return self.unpack_fopaque(n)

    def unpack_string(self, max_length: int | None = None) -> str:
        """Decode a string as UTF-8."""
        try:
            return self.unpack_opaque(max_length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XdrDecodeError(f"invalid UTF-8 in string: {exc}") from exc

    def _skip_pad(self, n: int) -> None:
        pad = (4 - n % 4) % 4
        if pad:
            pos = self._need(pad)
            if self._buf[pos : pos + pad] != b"\x00" * pad:
                raise XdrDecodeError("non-zero XDR padding")

    # ------------------------------------------------------------------
    # arrays
    # ------------------------------------------------------------------
    def unpack_farray(self, n: int, unpack_item) -> list:
        """Decode a fixed-length array using *unpack_item* per element."""
        return [unpack_item() for _ in range(n)]

    def unpack_array(self, unpack_item, max_length: int | None = None) -> list:
        """Decode a variable-length (counted) array."""
        n = self.unpack_uint()
        if max_length is not None and n > max_length:
            raise XdrDecodeError(f"array length {n} exceeds limit {max_length}")
        return self.unpack_farray(n, unpack_item)
