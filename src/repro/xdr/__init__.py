"""XDR (External Data Representation, RFC 4506) substrate.

BRISK's transfer protocol is built on XDR so that instrumentation data can
cross a heterogeneous network (different endianness, word sizes) unchanged.
The paper relies on the Sun RPC XDR library; here the encoding is implemented
from scratch:

* :class:`XdrEncoder` / :class:`XdrDecoder` — the primitive type codecs
  (everything is big-endian and padded to four-byte boundaries per the RFC),
* :class:`RecordMarkingReader` / :func:`frame_record` — RFC 5531 record
  marking, used by the TCP transport to delimit batches on a stream socket.

The wire protocol in :mod:`repro.wire.protocol` composes these primitives
into BRISK's batch format with compressed meta-information headers.
"""

from repro.xdr.errors import XdrError, XdrDecodeError, XdrEncodeError
from repro.xdr.encode import XdrEncoder
from repro.xdr.decode import XdrDecoder
from repro.xdr.stream import (
    RecordMarkingReader,
    frame_header,
    frame_record,
    split_records,
)

__all__ = [
    "XdrError",
    "XdrDecodeError",
    "XdrEncodeError",
    "XdrEncoder",
    "XdrDecoder",
    "RecordMarkingReader",
    "frame_header",
    "frame_record",
    "split_records",
]
