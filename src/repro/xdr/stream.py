"""Record marking for XDR over stream transports (RFC 5531 §11).

A TCP socket gives the ISM a byte stream with no message boundaries.  Record
marking frames each batch as one *record* made of fragments; a fragment is a
four-byte big-endian header whose top bit flags the last fragment and whose
remaining 31 bits give the fragment length, followed by that many bytes.

BRISK batches are far below the 2**31-1 fragment limit, so the writer emits
single-fragment records; the reader nevertheless accepts multi-fragment
records so it can interoperate with standard XDR stream producers.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.xdr.errors import XdrDecodeError

_HEADER = struct.Struct(">I")
_UNPACK_HEADER = _HEADER.unpack_from
_LAST_FRAGMENT = 0x8000_0000
_MAX_FRAGMENT = 0x7FFF_FFFF


def frame_header(length: int) -> bytes:
    """The four-byte single-fragment record mark for a *length*-byte payload.

    Split out from :func:`frame_record` so the transport can vector-send
    ``[header, payload]`` without copying the payload into a new frame.
    """
    if length > _MAX_FRAGMENT:
        raise ValueError("payload exceeds maximum fragment size")
    return _HEADER.pack(_LAST_FRAGMENT | length)


def frame_record(payload: bytes) -> bytes:
    """Wrap *payload* as a single-fragment record-marked record."""
    return frame_header(len(payload)) + payload


def split_records(data: bytes) -> list[bytes]:
    """Split a complete byte string into its record payloads.

    Convenience for tests and file-based replay; raises on truncation.
    """
    reader = RecordMarkingReader()
    records = list(reader.feed(data))
    if reader.pending_bytes:
        raise XdrDecodeError("trailing partial record in stream")
    return records


class RecordMarkingReader:
    """Incremental record-marking deframer.

    Feed arbitrary chunks as they arrive from the socket; complete record
    payloads come back as soon as their final fragment closes.  State is
    kept across calls so fragment and record boundaries may fall anywhere
    relative to chunk boundaries.

    :meth:`feed_frames` is the batch entry point the ISM's staged receive
    path uses: one call slices *every* complete frame out of the chunk with
    a single cursor scan (no per-frame buffer compaction), which is what
    lets one ``recv`` wakeup hand a whole list of batch payloads to the
    decode stage.  :meth:`feed` is the original generator spelling on top
    of it.
    """

    __slots__ = ("_buf", "_fragments", "_frag_bytes", "_max_record", "_error")

    def __init__(self, max_record: int = 64 * 1024 * 1024) -> None:
        self._buf = bytearray()
        self._fragments: list[bytes] = []
        self._frag_bytes = 0
        #: Upper bound on a reassembled record; guards the ISM against a
        #: corrupt length header committing it to an unbounded buffer.
        self._max_record = max_record
        # A stream error found *after* complete frames in the same chunk is
        # deferred so those frames are still delivered; it re-raises on the
        # next call (the stream is unusable past the bad header anyway).
        self._error: XdrDecodeError | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete record."""
        return len(self._buf) + self._frag_bytes

    def feed(self, chunk: bytes) -> Iterator[bytes]:
        """Consume *chunk*; yield each completed record payload."""
        yield from self.feed_frames(chunk)
        if self._error is not None:
            raise self._error

    def feed_frames(self, chunk) -> list[bytes]:
        """Consume *chunk*; return every record payload it completed.

        Frames parsed before a malformed header are returned; the error is
        raised on the *next* call, so a transport can deliver everything
        that arrived intact ahead of the failure (matching the generator
        semantics of :meth:`feed`).  When the chunk opens with the error,
        it raises immediately.  A reader that has erred stays poisoned:
        every later call re-raises.
        """
        if self._error is not None:
            raise self._error
        if self._buf:
            self._buf += chunk
            data: bytes | bytearray = self._buf
            buffered = True
        else:
            data = chunk
            buffered = False
        frames: list[bytes] = []
        pos = 0
        end = len(data)
        with memoryview(data) as view:
            while end - pos >= 4:
                (header,) = _UNPACK_HEADER(view, pos)
                length = header & _MAX_FRAGMENT
                if end - pos - 4 < length:
                    break
                if self._frag_bytes + length > self._max_record:
                    self._error = XdrDecodeError(
                        f"record exceeds maximum size {self._max_record}"
                    )
                    pos = end  # poison the rest of the stream
                    break
                fragment = bytes(view[pos + 4 : pos + 4 + length])
                pos += 4 + length
                if header & _LAST_FRAGMENT:
                    if self._fragments:
                        self._fragments.append(fragment)
                        frames.append(b"".join(self._fragments))
                        self._fragments.clear()
                        self._frag_bytes = 0
                    else:
                        frames.append(fragment)
                else:
                    self._fragments.append(fragment)
                    self._frag_bytes += length
        # Keep only the unconsumed tail (partial header or partial frame).
        if buffered:
            del self._buf[:pos]
        elif pos < end:
            self._buf += memoryview(chunk)[pos:]
        if self._error is not None and not frames:
            raise self._error
        return frames
