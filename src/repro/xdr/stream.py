"""Record marking for XDR over stream transports (RFC 5531 §11).

A TCP socket gives the ISM a byte stream with no message boundaries.  Record
marking frames each batch as one *record* made of fragments; a fragment is a
four-byte big-endian header whose top bit flags the last fragment and whose
remaining 31 bits give the fragment length, followed by that many bytes.

BRISK batches are far below the 2**31-1 fragment limit, so the writer emits
single-fragment records; the reader nevertheless accepts multi-fragment
records so it can interoperate with standard XDR stream producers.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.xdr.errors import XdrDecodeError

_HEADER = struct.Struct(">I")
_LAST_FRAGMENT = 0x8000_0000
_MAX_FRAGMENT = 0x7FFF_FFFF


def frame_header(length: int) -> bytes:
    """The four-byte single-fragment record mark for a *length*-byte payload.

    Split out from :func:`frame_record` so the transport can vector-send
    ``[header, payload]`` without copying the payload into a new frame.
    """
    if length > _MAX_FRAGMENT:
        raise ValueError("payload exceeds maximum fragment size")
    return _HEADER.pack(_LAST_FRAGMENT | length)


def frame_record(payload: bytes) -> bytes:
    """Wrap *payload* as a single-fragment record-marked record."""
    return frame_header(len(payload)) + payload


def split_records(data: bytes) -> list[bytes]:
    """Split a complete byte string into its record payloads.

    Convenience for tests and file-based replay; raises on truncation.
    """
    reader = RecordMarkingReader()
    records = list(reader.feed(data))
    if reader.pending_bytes:
        raise XdrDecodeError("trailing partial record in stream")
    return records


class RecordMarkingReader:
    """Incremental record-marking deframer.

    Feed arbitrary chunks as they arrive from the socket; complete record
    payloads are yielded as soon as their final fragment closes.  State is
    kept across calls so fragment and record boundaries may fall anywhere
    relative to chunk boundaries.
    """

    __slots__ = ("_buf", "_fragments", "_max_record")

    def __init__(self, max_record: int = 64 * 1024 * 1024) -> None:
        self._buf = bytearray()
        self._fragments: list[bytes] = []
        #: Upper bound on a reassembled record; guards the ISM against a
        #: corrupt length header committing it to an unbounded buffer.
        self._max_record = max_record

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete record."""
        return len(self._buf) + sum(len(f) for f in self._fragments)

    def feed(self, chunk: bytes) -> Iterator[bytes]:
        """Consume *chunk*; yield each completed record payload."""
        self._buf += chunk
        while True:
            if len(self._buf) < 4:
                return
            (header,) = _HEADER.unpack_from(self._buf)
            length = header & _MAX_FRAGMENT
            if len(self._buf) < 4 + length:
                return
            fragment = bytes(self._buf[4 : 4 + length])
            del self._buf[: 4 + length]
            self._fragments.append(fragment)
            assembled = sum(len(f) for f in self._fragments)
            if assembled > self._max_record:
                raise XdrDecodeError(
                    f"record exceeds maximum size {self._max_record}"
                )
            if header & _LAST_FRAGMENT:
                record = b"".join(self._fragments)
                self._fragments.clear()
                yield record
