"""Error types raised by the XDR codec layer."""

from __future__ import annotations


class XdrError(Exception):
    """Base class for all XDR codec failures."""


class XdrEncodeError(XdrError):
    """A value cannot be represented in the requested XDR type.

    Raised eagerly (e.g. integer out of range, string too long) so that a
    malformed record is rejected at the sensor rather than producing a
    corrupt batch the ISM would have to discard wholesale.
    """


class XdrDecodeError(XdrError):
    """The byte stream is not a valid encoding of the requested XDR type.

    Includes truncation (fewer bytes than the type requires) and protocol
    violations such as non-zero padding.
    """
