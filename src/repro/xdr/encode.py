"""XDR encoder (RFC 4506).

All quantities are encoded big-endian; every item occupies a multiple of
four bytes, with zero padding.  The encoder accumulates into a single
``bytearray`` so a batch of records is built with no intermediate copies;
``getvalue()`` snapshots the buffer and ``reset()`` recycles it, which the
external sensor uses to reuse one encoder per connection.
"""

from __future__ import annotations

import struct

from repro.xdr.errors import XdrEncodeError

_U32_MAX = 2**32 - 1
_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1
_U64_MAX = 2**64 - 1
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

_PACK_I32 = struct.Struct(">i").pack
_PACK_U32 = struct.Struct(">I").pack
_PACK_I64 = struct.Struct(">q").pack
_PACK_U64 = struct.Struct(">Q").pack
_PACK_F32 = struct.Struct(">f").pack
_PACK_F64 = struct.Struct(">d").pack

_PAD = (b"", b"\x00\x00\x00", b"\x00\x00", b"\x00")


class XdrEncoder:
    """Incremental XDR encoder.

    Example::

        enc = XdrEncoder()
        enc.pack_uint(0xB215C)     # protocol magic
        enc.pack_int(-7)
        enc.pack_string(b"hello")
        payload = enc.getvalue()
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    # ------------------------------------------------------------------
    # buffer management
    # ------------------------------------------------------------------
    def getvalue(self) -> bytes:
        """Return the encoded bytes accumulated so far."""
        return bytes(self._buf)

    def getbuffer(self) -> memoryview:
        """Zero-copy view of the encoded bytes accumulated so far.

        Unlike :meth:`getvalue` this does not snapshot — the transport
        writes the buffer straight to the socket.  While any returned view
        is alive the underlying buffer cannot grow, so release (drop) the
        view before packing more data or calling :meth:`reset`.
        """
        return memoryview(self._buf)

    def reset(self) -> None:
        """Discard accumulated bytes, keeping the allocation."""
        del self._buf[:]

    def __len__(self) -> int:
        return len(self._buf)

    # ------------------------------------------------------------------
    # integral types
    # ------------------------------------------------------------------
    def pack_int(self, value: int) -> None:
        """Encode a 32-bit signed integer."""
        if not _I32_MIN <= value <= _I32_MAX:
            raise XdrEncodeError(f"int32 out of range: {value}")
        self._buf += _PACK_I32(value)

    def pack_uint(self, value: int) -> None:
        """Encode a 32-bit unsigned integer."""
        if not 0 <= value <= _U32_MAX:
            raise XdrEncodeError(f"uint32 out of range: {value}")
        self._buf += _PACK_U32(value)

    def pack_hyper(self, value: int) -> None:
        """Encode a 64-bit signed integer (XDR "hyper")."""
        if not _I64_MIN <= value <= _I64_MAX:
            raise XdrEncodeError(f"int64 out of range: {value}")
        self._buf += _PACK_I64(value)

    def pack_uhyper(self, value: int) -> None:
        """Encode a 64-bit unsigned integer."""
        if not 0 <= value <= _U64_MAX:
            raise XdrEncodeError(f"uint64 out of range: {value}")
        self._buf += _PACK_U64(value)

    def pack_bool(self, value: bool) -> None:
        """Encode a boolean as the RFC's 0/1 int."""
        self._buf += _PACK_I32(1 if value else 0)

    def pack_enum(self, value: int) -> None:
        """Encode an enum (same representation as a signed int)."""
        self.pack_int(value)

    # ------------------------------------------------------------------
    # floating point
    # ------------------------------------------------------------------
    def pack_float(self, value: float) -> None:
        """Encode an IEEE-754 single-precision float."""
        try:
            self._buf += _PACK_F32(value)
        except (OverflowError, struct.error) as exc:
            raise XdrEncodeError(f"float32 cannot encode {value!r}") from exc

    def pack_double(self, value: float) -> None:
        """Encode an IEEE-754 double-precision float."""
        try:
            self._buf += _PACK_F64(value)
        except struct.error as exc:
            raise XdrEncodeError(f"float64 cannot encode {value!r}") from exc

    # ------------------------------------------------------------------
    # opaque / string
    # ------------------------------------------------------------------
    def pack_fopaque(self, n: int, data: bytes) -> None:
        """Encode fixed-length opaque data of exactly *n* bytes (padded)."""
        if len(data) != n:
            raise XdrEncodeError(
                f"fixed opaque expected {n} bytes, got {len(data)}"
            )
        self._buf += data
        self._buf += _PAD[n % 4]

    def pack_opaque(self, data: bytes) -> None:
        """Encode variable-length opaque data (length-prefixed, padded)."""
        n = len(data)
        if n > _U32_MAX:
            raise XdrEncodeError("opaque longer than 2**32-1 bytes")
        self._buf += _PACK_U32(n)
        self._buf += data
        pad = (4 - n % 4) % 4
        if pad:
            self._buf += b"\x00" * pad

    def pack_string(self, data: bytes | str) -> None:
        """Encode a string.  ``str`` input is encoded as UTF-8.

        BRISK field type ``X_STRING`` carries null-terminated C strings; at
        the Python level strings are just length-prefixed opaque data and the
        terminator is not transmitted.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        self.pack_opaque(data)

    # ------------------------------------------------------------------
    # arrays
    # ------------------------------------------------------------------
    def pack_farray(self, n: int, values, pack_item) -> None:
        """Encode a fixed-length array using *pack_item* per element."""
        if len(values) != n:
            raise XdrEncodeError(
                f"fixed array expected {n} items, got {len(values)}"
            )
        for value in values:
            pack_item(value)

    def pack_array(self, values, pack_item) -> None:
        """Encode a variable-length (counted) array."""
        self.pack_uint(len(values))
        for value in values:
            pack_item(value)

    # ------------------------------------------------------------------
    # raw append (used by the wire protocol for pre-encoded sections)
    # ------------------------------------------------------------------
    def append_raw(self, data: bytes) -> None:
        """Append already-aligned, already-encoded bytes verbatim.

        The caller is responsible for four-byte alignment; this is used by
        the batch framer to splice in record payloads encoded separately.
        """
        if len(data) % 4:
            raise XdrEncodeError("raw section is not four-byte aligned")
        self._buf += data
