"""Project-wide call graph over the one-parse :class:`SourceTree`.

This is the interprocedural half of brisk-lint v2: one build pass walks
every parsed module and records, per function, which *project* functions
it calls — resolved through import aliases, ``self.``/``cls.`` method
dispatch (including base classes), attribute-type inference from
``__init__`` assignments and annotations, local-variable construction
sites, ``functools.partial`` wrapping, and bare function references
passed as callbacks (``Thread(target=self._loop)``).

Everything is name-based and best-effort — there is no type checker
underneath.  The resolution contract is deliberately conservative:

* a call that cannot be resolved produces **no** edge (checkers that
  need a guarantee must treat unresolved calls via explicit seeds, see
  :mod:`repro.lint.effects`);
* a method name defined by exactly **one** class in the tree resolves by
  uniqueness even when the receiver's type is unknown; a name defined by
  several classes stays unresolved rather than guessing;
* dynamic dispatch through stored callables (``self._time_fn()``) is
  invisible by design — injecting a callable is exactly how code opts
  *out* of a static effect (the determinism zone depends on this).

``brisk-lint --graph <symbol>`` prints what this module resolved for one
function, so false positives can be diagnosed without reading any of it.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.engine import SourceFile, SourceTree

__all__ = [
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "ClassInfo",
    "build_callgraph",
    "module_qname",
]


#: Bare builtin calls (len, sorted, isinstance, ...) are never project
#: functions; keeping them out of ``unresolved`` keeps --graph readable.
_BUILTIN_NAMES = frozenset(dir(builtins))


def module_qname(rel_path: str) -> str:
    """``src/repro/runtime/shard.py`` → ``repro.runtime.shard``."""
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the tree."""

    qname: str                    #: e.g. ``repro.runtime.shard.ShardWorker.run``
    module: str                   #: e.g. ``repro.runtime.shard``
    rel_path: str                 #: repo-relative posix path
    name: str                     #: bare name (``run``)
    lineno: int
    end_lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qname: str | None = None   #: owning class, None for module level
    parent_qname: str | None = None  #: enclosing function for nested defs


@dataclass
class ClassInfo:
    """One class definition: methods, bases, inferred attribute types."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)  #: resolved qnames (best effort)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` → class qname, inferred from ``__init__``/body
    #: annotations and ``self.x = SomeClass(...)`` assignments.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """A resolved caller → callee edge, with the call-site line."""

    caller: str
    callee: str
    lineno: int
    #: ``call`` | ``method`` | ``instantiate`` | ``partial`` | ``callback``
    #: | ``unique`` (resolved only by tree-wide name uniqueness)
    kind: str


class CallGraph:
    """Resolved project call graph plus the symbol indexes checkers use."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges_by_caller: dict[str, list[CallEdge]] = {}
        self.edges_by_callee: dict[str, list[CallEdge]] = {}
        #: caller qname → dotted call texts that resolved to nothing.
        self.unresolved: dict[str, list[tuple[str, int]]] = {}
        #: bare method/function name → qnames defining it (uniqueness index).
        self._by_bare_name: dict[str, list[str]] = {}

    # -- queries -------------------------------------------------------

    def callees(self, qname: str) -> list[CallEdge]:
        return self.edges_by_caller.get(qname, [])

    def callers(self, qname: str) -> list[CallEdge]:
        return self.edges_by_callee.get(qname, [])

    def lookup(self, symbol: str) -> FunctionInfo | None:
        """Find a function by full qname or unambiguous dotted suffix."""
        if symbol in self.functions:
            return self.functions[symbol]
        matches = [
            info
            for qname, info in self.functions.items()
            if qname.endswith("." + symbol)
        ]
        if len(matches) == 1:
            return matches[0]
        return None

    def lookup_all(self, symbol: str) -> list[FunctionInfo]:
        if symbol in self.functions:
            return [self.functions[symbol]]
        return [
            info
            for qname, info in self.functions.items()
            if qname.endswith("." + symbol)
        ]

    def _add_edge(self, edge: CallEdge) -> None:
        self.edges_by_caller.setdefault(edge.caller, []).append(edge)
        self.edges_by_callee.setdefault(edge.callee, []).append(edge)


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------

def build_callgraph(tree: SourceTree) -> CallGraph:
    """One pass to index definitions, one pass to resolve call sites."""
    graph = CallGraph()
    module_scopes: dict[str, _ModuleScope] = {}
    for source_file in tree:
        if source_file.tree is None:
            continue
        scope = _index_module(source_file, graph)
        module_scopes[scope.module] = scope
    for info in graph.functions.values():
        graph._by_bare_name.setdefault(info.name, []).append(info.qname)
    _infer_attr_types(graph, module_scopes)
    for scope in module_scopes.values():
        _resolve_module_calls(scope, graph)
    return graph


@dataclass
class _ModuleScope:
    """Per-module name tables used during resolution."""

    module: str
    rel_path: str
    imports: ImportMap
    #: module-level name → function/class qname defined in this module.
    local_defs: dict[str, str] = field(default_factory=dict)


def _index_module(source_file: SourceFile, graph: CallGraph) -> _ModuleScope:
    module = module_qname(source_file.rel_path)
    assert source_file.tree is not None
    scope = _ModuleScope(
        module=module,
        rel_path=source_file.rel_path,
        imports=ImportMap(source_file.tree),
    )

    def add_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qname: str,
        class_qname: str | None,
        parent_qname: str | None,
    ) -> FunctionInfo:
        info = FunctionInfo(
            qname=qname,
            module=module,
            rel_path=source_file.rel_path,
            name=node.name,
            lineno=node.lineno,
            end_lineno=node.end_lineno or node.lineno,
            node=node,
            class_qname=class_qname,
            parent_qname=parent_qname,
        )
        graph.functions[qname] = info
        # Nested defs are indexed too (pump helpers like close_run), one
        # level of nesting is enough for this codebase but recurse anyway.
        for child in ast.iter_child_nodes(node):
            _index_nested(child, qname, class_qname)
        return info

    def _index_nested(
        node: ast.AST, parent_qname: str, class_qname: str | None
    ) -> None:
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # its own body is indexed by add_function's recursion
                add_function(
                    current,
                    f"{parent_qname}.{current.name}",
                    class_qname=None,
                    parent_qname=parent_qname,
                )
                continue
            stack.extend(ast.iter_child_nodes(current))

    for node in source_file.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.local_defs[node.name] = f"{module}.{node.name}"
            add_function(node, f"{module}.{node.name}", None, None)
        elif isinstance(node, ast.ClassDef):
            class_qname = f"{module}.{node.name}"
            scope.local_defs[node.name] = class_qname
            cls = ClassInfo(
                qname=class_qname, module=module, name=node.name, node=node
            )
            for base in node.bases:
                resolved = scope.imports.resolve(base)
                if resolved is not None:
                    cls.base_names.append(_absolutize(resolved, module))
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = add_function(
                        member,
                        f"{class_qname}.{member.name}",
                        class_qname,
                        None,
                    )
                    cls.methods[member.name] = info
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    # dataclass-style field annotation
                    type_name = _annotation_class(member.annotation)
                    if type_name is not None:
                        resolved = scope.imports.resolve(_as_ref(type_name))
                        if resolved:
                            cls.attr_types[member.target.id] = _absolutize(
                                resolved, module
                            )
            graph.classes[class_qname] = cls
    return scope


def _absolutize(qual: str, module: str) -> str:
    """A name resolved inside *module* that names a local def is already
    bare (``ShardWorker``); qualify it so cross-module lookups work."""
    if "." in qual:
        return qual
    return f"{module}.{qual}"


def _as_ref(dotted: str) -> ast.expr:
    """Rebuild an AST reference from a dotted string for ImportMap."""
    parts = dotted.split(".")
    node: ast.expr = ast.Name(id=parts[0])
    for part in parts[1:]:
        node = ast.Attribute(value=node, attr=part)
    return node


def _annotation_class(annotation: ast.expr | None) -> str | None:
    """Extract the (single) class a simple annotation names.

    Handles ``X``, ``mod.X``, ``X | None``, ``Optional[X]``, and string
    annotations; gives up on real unions and generics.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_class(annotation.left)
        right = _annotation_class(annotation.right)
        if left and right:
            return None  # real union, ambiguous
        return left or right
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value) or ""
        if base.rsplit(".", 1)[-1] == "Optional":
            return _annotation_class(annotation.slice)
        return None
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return None
    return dotted_name(annotation)


def _infer_attr_types(
    graph: CallGraph, scopes: Mapping[str, _ModuleScope]
) -> None:
    """Fill ``ClassInfo.attr_types`` from method-body evidence.

    ``self.x = SomeClass(...)`` types ``x`` when ``SomeClass`` resolves
    to a tree class; ``self.x: T = ...`` uses the annotation.  Two
    conflicting assignments drop the attribute to unknown.
    """
    for cls in graph.classes.values():
        scope = scopes.get(cls.module)
        if scope is None:
            continue
        conflicted: set[str] = set()
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                attr_name: str | None = None
                inferred: str | None = None
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr_name = target.attr
                        type_name = _annotation_class(node.annotation)
                        if type_name is not None:
                            inferred = _resolve_class_name(
                                type_name, scope, graph
                            )
                elif isinstance(node, ast.Assign):
                    if (
                        len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and isinstance(node.value, ast.Call)
                    ):
                        attr_name = node.targets[0].attr
                        callee = dotted_name(node.value.func)
                        if callee is not None:
                            inferred = _resolve_class_name(
                                callee, scope, graph
                            )
                if attr_name is None or attr_name in conflicted:
                    continue
                if inferred is None:
                    continue
                existing = cls.attr_types.get(attr_name)
                if existing is not None and existing != inferred:
                    conflicted.add(attr_name)
                    del cls.attr_types[attr_name]
                else:
                    cls.attr_types[attr_name] = inferred


def _resolve_class_name(
    dotted: str, scope: _ModuleScope, graph: CallGraph
) -> str | None:
    """Resolve a dotted reference to a tree class qname, or None."""
    head = dotted.split(".", 1)[0]
    if head in scope.local_defs:
        candidate = scope.local_defs[head]
        if "." in dotted:
            candidate = candidate + dotted[len(head):]
        return candidate if candidate in graph.classes else None
    resolved = scope.imports.resolve(_as_ref(dotted))
    if resolved is not None and resolved in graph.classes:
        return resolved
    return None


def _method_on(
    graph: CallGraph, class_qname: str, name: str, _depth: int = 0
) -> FunctionInfo | None:
    """Method lookup with a base-class walk (depth-bounded, no C3)."""
    if _depth > 8:
        return None
    cls = graph.classes.get(class_qname)
    if cls is None:
        return None
    if name in cls.methods:
        return cls.methods[name]
    for base in cls.base_names:
        found = _method_on(graph, base, name, _depth + 1)
        if found is not None:
            return found
    return None


class _FunctionResolver:
    """Resolves call sites and function references inside one function."""

    def __init__(
        self,
        info: FunctionInfo,
        scope: _ModuleScope,
        graph: CallGraph,
    ) -> None:
        self.info = info
        self.scope = scope
        self.graph = graph
        #: local name → class qname, from parameter annotations and
        #: ``x = SomeClass(...)`` assignments in this function body.
        self.local_types: dict[str, str] = {}
        #: nested defs visible by bare name.
        self.nested: dict[str, str] = {}
        self._collect_locals()

    def _collect_locals(self) -> None:
        node = self.info.node
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            type_name = _annotation_class(arg.annotation)
            if type_name is not None:
                resolved = _resolve_class_name(
                    type_name, self.scope, self.graph
                )
                if resolved is not None:
                    self.local_types[arg.arg] = resolved
        for child in _own_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # direct children only — _own_nodes stops at nested defs,
                # but still yields the def node itself.
                self.nested[child.name] = f"{self.info.qname}.{child.name}"
            elif isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Call
            ):
                callee = dotted_name(child.value.func)
                if callee is None:
                    continue
                cls_qname = _resolve_class_name(callee, self.scope, self.graph)
                if cls_qname is None:
                    continue
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        self.local_types[target.id] = cls_qname
            elif isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Attribute
            ):
                # ``gate = self._ack_gate`` — pull the type from the
                # owning class's attribute table so ``gate.commit()``
                # resolves even when ``commit`` is not tree-unique.
                dotted = dotted_name(child.value)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] not in ("self", "cls"):
                    continue
                cls_qname = self._self_chain_type(parts[1:])
                if cls_qname is None:
                    continue
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        self.local_types[target.id] = cls_qname

    # -- reference resolution ------------------------------------------

    def resolve_ref(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute reference to a function/class qname."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        head = parts[0]
        # self.<chain> — walk attribute types through the class table.
        if head in ("self", "cls") and self.info.class_qname is not None:
            return self._resolve_self_chain(parts[1:])
        # local variable of a known class: var.method
        if head in self.local_types and len(parts) >= 2:
            return self._resolve_typed_chain(self.local_types[head], parts[1:])
        # nested function defined in this body
        if head in self.nested and len(parts) == 1:
            return self.nested[head]
        # module-level def or class in this module
        if head in self.scope.local_defs:
            qname = self.scope.local_defs[head]
            for part in parts[1:]:
                qname = f"{qname}.{part}"
            if qname in self.graph.functions or qname in self.graph.classes:
                return qname
            return None
        # import-resolved project reference
        resolved = self.scope.imports.resolve(node)
        if resolved is not None and (
            resolved in self.graph.functions or resolved in self.graph.classes
        ):
            return resolved
        return None

    def _self_chain_type(self, attrs: list[str]) -> str | None:
        """``self.a.b`` → the class qname the chain's value has, or None."""
        if self.info.class_qname is None:
            return None
        current = self.info.class_qname
        for attr in attrs:
            next_type: str | None = None
            probe: str | None = current
            while probe is not None and next_type is None:
                cls = self.graph.classes.get(probe)
                if cls is None:
                    break
                next_type = cls.attr_types.get(attr)
                probe = cls.base_names[0] if cls.base_names else None
            if next_type is None:
                return None
            current = next_type
        return current

    def _resolve_self_chain(self, attrs: list[str]) -> str | None:
        """``self.a.b.m`` → walk attr types from the owning class."""
        if not attrs:
            return None
        current = self._self_chain_type(attrs[:-1])
        if current is None:
            return None
        leaf = attrs[-1]
        method = _method_on(self.graph, current, leaf)
        if method is not None:
            return method.qname
        # the chain may name a nested attribute class rather than a method
        cls = self.graph.classes.get(current)
        if cls is not None and leaf in cls.attr_types:
            return cls.attr_types[leaf]
        return None

    def _resolve_typed_chain(
        self, class_qname: str, attrs: list[str]
    ) -> str | None:
        current = class_qname
        for attr in attrs[:-1]:
            cls = self.graph.classes.get(current)
            if cls is None or attr not in cls.attr_types:
                return None
            current = cls.attr_types[attr]
        method = _method_on(self.graph, current, attrs[-1])
        return method.qname if method is not None else None

    def resolve_unique(self, leaf: str) -> str | None:
        """Last resort: a bare method name defined exactly once anywhere."""
        candidates = self.graph._by_bare_name.get(leaf, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


def _own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk *func* without descending into nested function bodies.

    Nested def nodes themselves are yielded (so callers can register
    them) but their bodies belong to the nested function's own scan.
    Lambdas are considered part of the enclosing function.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _resolve_module_calls(scope: _ModuleScope, graph: CallGraph) -> None:
    for info in list(graph.functions.values()):
        if info.module != scope.module:
            continue
        resolver = _FunctionResolver(info, scope, graph)
        for node in _own_nodes(info.node):
            if isinstance(node, ast.Call):
                _resolve_call(node, resolver, graph)


def _resolve_call(
    call: ast.Call, resolver: _FunctionResolver, graph: CallGraph
) -> None:
    info = resolver.info
    target = resolver.resolve_ref(call.func)
    func_dotted = dotted_name(call.func)

    # functools.partial(f, ...) wraps f: edge to f, not to partial.
    qual = resolver.scope.imports.resolve(call.func)
    if qual == "functools.partial" and call.args:
        wrapped = resolver.resolve_ref(call.args[0])
        if wrapped is not None:
            wrapped = _callable_qname(wrapped, graph)
            if wrapped is not None:
                graph._add_edge(
                    CallEdge(info.qname, wrapped, call.lineno, "partial")
                )

    if target is not None:
        if target in graph.classes:
            # instantiation: the effectful code is __init__ (if defined).
            init = _method_on(graph, target, "__init__")
            if init is not None:
                graph._add_edge(
                    CallEdge(info.qname, init.qname, call.lineno, "instantiate")
                )
        elif target in graph.functions:
            kind = "method" if "." in (func_dotted or "") else "call"
            graph._add_edge(CallEdge(info.qname, target, call.lineno, kind))
    else:
        # Unique-name fallback for method calls on untyped receivers.
        leaf = (func_dotted or "").rsplit(".", 1)[-1]
        unique = resolver.resolve_unique(leaf) if func_dotted and "." in func_dotted else None
        if unique is not None:
            graph._add_edge(CallEdge(info.qname, unique, call.lineno, "unique"))
        elif func_dotted is not None and func_dotted not in _BUILTIN_NAMES:
            graph.unresolved.setdefault(info.qname, []).append(
                (func_dotted, call.lineno)
            )

    # Callback references: any argument that *names* a project function
    # creates a deferred-call edge (Thread(target=...), ring callbacks).
    for arg in (*call.args, *(kw.value for kw in call.keywords)):
        if not isinstance(arg, (ast.Name, ast.Attribute)):
            continue
        ref = resolver.resolve_ref(arg)
        if ref is None:
            continue
        ref = _callable_qname(ref, graph)
        if ref is not None:
            graph._add_edge(CallEdge(info.qname, ref, call.lineno, "callback"))


def _callable_qname(ref: str, graph: CallGraph) -> str | None:
    """Map a reference to the function that runs when it is called."""
    if ref in graph.functions:
        return ref
    if ref in graph.classes:
        init = _method_on(graph, ref, "__init__")
        return init.qname if init is not None else None
    return None
