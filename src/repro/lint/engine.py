"""Core machinery of brisk-lint: parsed files, pragmas, findings, checkers.

The source tree is parsed **once** into ASTs (:func:`load_tree`); every
checker then walks the shared :class:`SourceTree`.  Suppression pragmas
are extracted with :mod:`tokenize` (not a regex over raw text) so a string
literal containing ``brisk-lint`` can never suppress anything.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Checker",
    "Finding",
    "Pragma",
    "SourceFile",
    "SourceTree",
    "load_tree",
    "PRAGMA_RULES",
]

#: Rule ids owned by the engine itself (pragma hygiene).
PRAGMA_RULES: Mapping[str, str] = {
    "BRK001": "malformed brisk-lint pragma",
    "BRK002": "pragma is missing its (reason)",
    "BRK003": "pragma suppresses nothing (unused)",
}

_PRAGMA_RE = re.compile(
    r"#\s*brisk-lint:\s*(?P<verb>[\w-]+)\s*=\s*(?P<rules>[\w*,\s]+?)"
    r"\s*(?:\((?P<reason>.*)\))?\s*$"
)
_PRAGMA_MARKER = re.compile(r"#\s*brisk-lint\b")
_RULE_ID_RE = re.compile(r"^BRK\d{3}$|^\*$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str          #: e.g. ``"BRK401"``
    path: str          #: repo-relative posix path
    line: int          #: 1-indexed
    message: str       #: what is wrong
    hint: str = ""     #: how to fix it

    def fingerprint(
        self,
        source_line: str = "",
        occurrence: int = 0,
        symbol: str = "",
    ) -> str:
        """Stable identity for baselining: line-number independent.

        Hashes the rule, the *qualified symbol* enclosing the finding
        (``repro.runtime.shard.ShardWorker.run``), the whitespace-
        normalized text of the flagged line, and an occurrence index
        distinguishing identical lines within one symbol.  Inserting
        code above a baselined finding — or moving the whole function
        within its file — does not un-baseline it; editing the flagged
        line, or moving it to a different function, does and forces a
        fresh look.  The file path is carried by the symbol (its module
        prefix), so path churn that renames the module re-reviews too.
        """
        snippet = " ".join(source_line.split())
        blob = f"{self.rule}|{symbol}|{snippet}|{occurrence}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        loc = f"{self.path}:{self.line}"
        out = f"{loc}: {self.rule} {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


@dataclass
class Pragma:
    """One parsed ``# brisk-lint: ...`` comment."""

    verb: str                 #: ``disable`` | ``disable-next`` | ``disable-file``
    rules: tuple[str, ...]    #: rule ids, or ``("*",)``
    reason: str               #: required; empty string means missing
    line: int                 #: line the comment sits on
    applies_to: int | None    #: line findings must be on; None = whole file
    used: bool = False        #: did it suppress at least one finding?

    def matches(self, finding: Finding) -> bool:
        if self.applies_to is not None and finding.line != self.applies_to:
            return False
        return "*" in self.rules or finding.rule in self.rules


@dataclass
class SourceFile:
    """One parsed source file plus its suppression pragmas."""

    path: Path                 #: absolute
    rel_path: str              #: repo-relative, posix separators
    text: str
    tree: ast.AST | None       #: None when the file failed to parse
    lines: Sequence[str] = field(default_factory=list)
    pragmas: list[Pragma] = field(default_factory=list)
    #: Findings produced while *loading* (syntax errors, bad pragmas).
    load_findings: list[Finding] = field(default_factory=list)
    #: Lazily built (start, end, qualified-symbol) spans for symbol_at.
    _symbol_spans: list[tuple[int, int, str]] | None = field(
        default=None, repr=False, compare=False
    )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def symbol_at(self, lineno: int) -> str:
        """Qualified symbol enclosing *lineno* (module when at top level).

        ``src/repro/runtime/shard.py:223`` → the innermost def/class span
        containing line 223, e.g.
        ``repro.runtime.shard.ShardWorker._push_with_retry``.  Drives the
        line-number-independent baseline fingerprints.
        """
        if self._symbol_spans is None:
            self._symbol_spans = _build_symbol_spans(self)
        best: tuple[int, str] | None = None
        for start, end, qname in self._symbol_spans:
            if start <= lineno <= end and (best is None or start > best[0]):
                best = (start, qname)
        if best is not None:
            return best[1]
        return _module_qname(self.rel_path)

    def suppressed(self, finding: Finding) -> bool:
        """Consume a pragma matching *finding* (marks it used)."""
        hit = False
        for pragma in self.pragmas:
            if pragma.matches(finding):
                pragma.used = True
                hit = True
        return hit


def _module_qname(rel_path: str) -> str:
    """``src/repro/runtime/shard.py`` → ``repro.runtime.shard``."""
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _build_symbol_spans(
    source_file: SourceFile,
) -> list[tuple[int, int, str]]:
    """Line spans of every def/class, with fully qualified names."""
    spans: list[tuple[int, int, str]] = []
    if source_file.tree is None:
        return spans

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qname = f"{prefix}.{child.name}"
                spans.append(
                    (child.lineno, child.end_lineno or child.lineno, qname)
                )
                visit(child, qname)
            else:
                visit(child, prefix)

    visit(source_file.tree, _module_qname(source_file.rel_path))
    return spans


class SourceTree:
    """All parsed files, shared by every checker."""

    def __init__(self, root: Path, files: list[SourceFile]) -> None:
        self.root = root
        self.files = files
        self._by_rel = {f.rel_path: f for f in files}
        #: Cross-checker caches keyed by name; the interprocedural
        #: analysis (callgraph + effects) is built once per tree here.
        self.caches: dict[str, object] = {}

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def get(self, rel_path: str) -> SourceFile | None:
        return self._by_rel.get(rel_path)

    def matching(self, *suffixes: str) -> Iterator[SourceFile]:
        """Files whose repo-relative path ends with one of *suffixes*."""
        for f in self.files:
            if any(f.rel_path.endswith(s) for s in suffixes):
                yield f

    def under(self, *prefixes: str) -> Iterator[SourceFile]:
        """Files whose repo-relative path starts with one of *prefixes*."""
        for f in self.files:
            if any(f.rel_path.startswith(p) for p in prefixes):
                yield f


class Checker:
    """Base class for one rule family.

    Subclasses set :attr:`rules` (rule id → one-line description) and
    implement :meth:`check`.  The runner instantiates each checker once
    per run; checkers must not mutate the tree.
    """

    #: rule id → short human description (drives ``--list-rules``).
    rules: Mapping[str, str] = {}
    #: rule id → paragraph of rationale (drives ``--explain``); optional.
    explain: Mapping[str, str] = {}
    #: Checker name (kebab-case), for ``--select`` by family.
    name: str = ""

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------

def _parse_pragmas(source_file: SourceFile) -> None:
    """Extract ``# brisk-lint:`` comments via tokenize.

    * ``disable=RULE[,RULE...] (reason)`` on a code line applies to that
      line; on a line of its own it applies to the next code line.
    * ``disable-next=...`` always applies to the following code line.
    * ``disable-file=...`` applies to the whole file.

    A pragma without a parenthesised reason is itself a finding (BRK002):
    suppressions must say *why* or they rot into folklore.
    """
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source_file.text).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # the parse failure is already reported
    #: lines that hold at least one non-comment token
    code_lines = sorted(
        {
            t.start[0]
            for t in tokens
            if t.type
            not in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            )
        }
    )

    def next_code_line(after: int) -> int | None:
        for line in code_lines:
            if line > after:
                return line
        return None

    for tok in tokens:
        if tok.type != tokenize.COMMENT or not _PRAGMA_MARKER.search(tok.string):
            continue
        lineno = tok.start[0]
        m = _PRAGMA_RE.search(tok.string)
        if m is None or m.group("verb") not in (
            "disable",
            "disable-next",
            "disable-file",
        ):
            source_file.load_findings.append(
                Finding(
                    rule="BRK001",
                    path=source_file.rel_path,
                    line=lineno,
                    message=f"malformed brisk-lint pragma: {tok.string.strip()!r}",
                    hint=(
                        "use '# brisk-lint: disable=BRK401 (reason)' — "
                        "verbs: disable, disable-next, disable-file"
                    ),
                )
            )
            continue
        rules = tuple(
            r.strip() for r in m.group("rules").split(",") if r.strip()
        )
        bad = [r for r in rules if not _RULE_ID_RE.match(r)]
        if bad or not rules:
            source_file.load_findings.append(
                Finding(
                    rule="BRK001",
                    path=source_file.rel_path,
                    line=lineno,
                    message=f"pragma names invalid rule id(s): {bad or '(none)'}",
                    hint="rule ids look like BRK401; '*' disables all rules",
                )
            )
            continue
        reason = (m.group("reason") or "").strip()
        if not reason:
            source_file.load_findings.append(
                Finding(
                    rule="BRK002",
                    path=source_file.rel_path,
                    line=lineno,
                    message="pragma has no (reason)",
                    hint=(
                        "append a parenthesised justification: "
                        "# brisk-lint: disable=BRK401 (sink errors counted upstream)"
                    ),
                )
            )
            # Still honoured, so a missing reason surfaces as exactly one
            # finding instead of one plus everything it meant to suppress.
        verb = m.group("verb")
        own_line_is_code = lineno in code_lines
        if verb == "disable-file":
            applies_to: int | None = None
        elif verb == "disable-next" or not own_line_is_code:
            applies_to = next_code_line(lineno)
            if applies_to is None:
                continue  # trailing pragma with nothing to govern
        else:
            applies_to = lineno
        source_file.pragmas.append(
            Pragma(
                verb=verb,
                rules=rules,
                reason=reason,
                line=lineno,
                applies_to=applies_to,
            )
        )


def load_file(path: Path, root: Path) -> SourceFile:
    """Parse one file; a syntax error becomes a finding, not a crash."""
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(root).as_posix()
    source_file = SourceFile(
        path=path,
        rel_path=rel,
        text=text,
        tree=None,
        lines=text.splitlines(),
    )
    try:
        source_file.tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        source_file.load_findings.append(
            Finding(
                rule="BRK000",
                path=rel,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
            )
        )
    _parse_pragmas(source_file)
    return source_file


def load_tree(paths: Sequence[Path], root: Path | None = None) -> SourceTree:
    """Parse every ``*.py`` under *paths* (files or directories) once.

    *root* anchors the repo-relative paths findings and baselines use;
    it defaults to the common parent that makes paths stable (cwd).
    """
    root = (root or Path.cwd()).resolve()
    seen: set[Path] = set()
    files: list[SourceFile] = []
    for path in paths:
        path = path.resolve()
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for candidate in candidates:
            if candidate in seen or candidate.suffix != ".py":
                continue
            seen.add(candidate)
            files.append(load_file(candidate, root))
    return SourceTree(root, files)
