"""The ``brisk-lint`` command line (also ``python -m repro.lint``).

Exit codes: 0 — clean (every finding baselined or pragma-suppressed);
1 — new findings; 2 — usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import write_baseline
from repro.lint.checkers import all_checkers
from repro.lint.engine import PRAGMA_RULES
from repro.lint.runner import run_lint

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="brisk-lint",
        description=(
            "AST-based invariant checker for the BRISK codebase: wire "
            "conformance, determinism, pump-loop discipline, exception "
            "hygiene, instrument registration."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root anchoring relative paths (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline TOML (default: <root>/lint-baseline.toml when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--fail-on-new",
        action="store_true",
        help=(
            "CI mode: exit 1 only on findings not in the baseline "
            "(this is also the default behaviour; the flag states intent)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="only run these rules/checkers (BRK4, BRK401, exception-hygiene)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rules/checkers",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print baselined and pragma-suppressed findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print the rationale behind one rule (BRK601) and exit",
    )
    parser.add_argument(
        "--graph",
        metavar="SYMBOL",
        default=None,
        help=(
            "debug the interprocedural analysis: print what the call "
            "graph resolved for one function (full qname or unambiguous "
            "suffix, e.g. ShardWorker.run) and exit"
        ),
    )
    return parser


_ROOT_MARKERS = ("pyproject.toml", ".git", "lint-baseline.toml")


def _detect_root(paths: list[Path]) -> Path:
    """Anchor for relative paths when ``--root`` is not given.

    The cwd when every target sits under it (the common case: running
    from the repo root); otherwise the nearest marker-bearing ancestor
    of the first target, so ``brisk-lint /elsewhere/repo/src`` works
    from any directory.
    """
    cwd = Path.cwd().resolve()
    resolved = [p.resolve() for p in paths]
    if all(p == cwd or cwd in p.parents for p in resolved):
        return cwd
    start = resolved[0] if resolved[0].is_dir() else resolved[0].parent
    for candidate in (start, *start.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return start


def _list_rules() -> None:
    print("engine (pragma hygiene):")
    for rule, description in sorted(PRAGMA_RULES.items()):
        print(f"  {rule}  {description}")
    for checker in all_checkers():
        print(f"{checker.name}:")
        for rule, description in sorted(checker.rules.items()):
            print(f"  {rule}  {description}")


def _explain_rule(rule: str) -> int:
    import textwrap

    rule = rule.upper()
    for checker in all_checkers():
        if rule in checker.rules:
            print(f"{rule} ({checker.name}): {checker.rules[rule]}")
            rationale = checker.explain.get(rule)
            if rationale:
                print()
                print(textwrap.fill(rationale, width=76))
            else:
                print("(no extended rationale recorded for this rule)")
            return 0
    if rule in PRAGMA_RULES:
        print(f"{rule} (engine): {PRAGMA_RULES[rule]}")
        return 0
    print(f"brisk-lint: unknown rule {rule!r} (see --list-rules)", file=sys.stderr)
    return 2


def _print_graph(symbol: str, paths: list[Path], root: Path) -> int:
    """Debug view: what did the analysis resolve for one function?"""
    from repro.lint.effects import PROPAGATING_KINDS, project_analysis
    from repro.lint.engine import load_tree

    tree = load_tree(paths, root=root)
    analysis = project_analysis(tree)
    graph = analysis.graph
    info = graph.lookup(symbol)
    if info is None:
        matches = graph.lookup_all(symbol)
        if matches:
            print(
                f"brisk-lint: {symbol!r} is ambiguous; candidates:",
                file=sys.stderr,
            )
            for match in matches:
                print(f"  {match.qname}", file=sys.stderr)
        else:
            print(f"brisk-lint: no function matches {symbol!r}", file=sys.stderr)
        return 2
    fx = analysis.effects_of(info.qname)
    print(f"{info.qname}  ({info.rel_path}:{info.lineno})")
    print(f"  local effects:      {fx.local.describe()}")
    print(f"  transitive effects: {fx.transitive.describe()}")
    outward = analysis.outward(info.qname)
    if outward != fx.transitive:
        print(f"  propagates outward: {outward.describe()}  [barrier applied]")
    for site in fx.sites:
        print(f"    seed @{site.lineno}: {site.effect.describe()} — {site.detail}")
    callees = graph.callees(info.qname)
    print(f"  callees ({len(callees)}):")
    for edge in sorted(callees, key=lambda e: (e.lineno, e.callee)):
        defer = "" if edge.kind in PROPAGATING_KINDS else " [deferred: no effect propagation]"
        print(f"    @{edge.lineno} -> {edge.callee}  ({edge.kind}){defer}")
    callers = graph.callers(info.qname)
    print(f"  callers ({len(callers)}):")
    for edge in sorted(callers, key=lambda e: (e.caller, e.lineno)):
        print(f"    {edge.caller} @{edge.lineno}  ({edge.kind})")
    unresolved = graph.unresolved.get(info.qname, [])
    print(f"  unresolved calls ({len(unresolved)}):")
    for dotted, lineno in unresolved:
        print(f"    @{lineno} {dotted}(...)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0
    if args.explain:
        return _explain_rule(args.explain)

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"brisk-lint: no such path: {missing[0]}", file=sys.stderr)
            return 2
        root = args.root.resolve() if args.root else _detect_root(paths)
    else:
        root = (args.root or Path.cwd()).resolve()
        paths = [root / "src"]
        if not paths[0].exists():
            print(f"brisk-lint: no such path: {paths[0]}", file=sys.stderr)
            return 2
    outside = [p for p in paths if (r := p.resolve()) != root and root not in r.parents]
    if outside:
        print(
            f"brisk-lint: {outside[0]} is outside the root {root} "
            "(pass --root to anchor relative paths)",
            file=sys.stderr,
        )
        return 2

    if args.graph:
        return _print_graph(args.graph, [Path(p) for p in paths], root)

    baseline_path = args.baseline
    if baseline_path is None:
        default = root / "lint-baseline.toml"
        baseline_path = default if default.exists() else None
    if args.no_baseline:
        baseline_path = None

    try:
        result = run_lint(
            [Path(p) for p in paths],
            root=root,
            baseline_path=None if args.write_baseline else baseline_path,
            select=args.select,
            ignore=args.ignore,
        )
    except Exception as exc:  # reported to stderr below; exits 2, not swallowed
        print(f"brisk-lint: internal error: {exc!r}", file=sys.stderr)
        print("rerun with python -X dev -m repro.lint for a traceback", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or root / "lint-baseline.toml"
        pairs = [
            (f, result.fingerprint_of(f))
            for f in result.new + result.baselined
        ]
        symbols = {
            result.fingerprint_of(f): result.symbol_of(f)
            for f in result.new + result.baselined
        }
        count = write_baseline(target, pairs, symbols=symbols)
        print(f"brisk-lint: wrote {count} finding(s) to {target}")
        return 0

    if args.format == "json":
        payload = {
            "files_checked": result.files_checked,
            "new": [
                {**vars(f), "fingerprint": result.fingerprint_of(f)}
                for f in result.new
            ],
            "baselined": [
                {**vars(f), "fingerprint": result.fingerprint_of(f)}
                for f in result.baselined
            ],
            "pragma_suppressed": [vars(f) for f in result.pragma_suppressed],
            "stale_baseline": [vars(e) for e in result.stale_baseline],
        }
        print(json.dumps(payload, indent=2))
        return result.exit_code

    for finding in result.new:
        print(finding.render())
    if args.show_suppressed:
        for finding in result.baselined:
            print(f"[baselined] {finding.render()}")
        for finding in result.pragma_suppressed:
            print(f"[pragma] {finding.render()}")
    summary = (
        f"brisk-lint: {result.files_checked} file(s), "
        f"{len(result.new)} new finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.pragma_suppressed)} pragma-suppressed"
    )
    if result.stale_baseline:
        summary += (
            f"; {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(fixed — rerun --write-baseline to prune)"
        )
    print(summary)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
