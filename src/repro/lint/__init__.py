"""brisk-lint: AST-based invariant checking for this repository.

The last several PRs each hand-established an invariant the codebase now
silently depends on — byte-identical codec fast paths, select-loop pump
discipline, no-swallowed-errors delivery, and a wall-clock-free
deterministic simulation that a golden PICL trace is byte-stable against.
``brisk-lint`` machine-checks those contracts on every commit: it parses
the source tree once into ASTs and runs pluggable project-specific
checkers over it.

v2 adds an **interprocedural** layer: a project call graph
(:mod:`repro.lint.callgraph`) and an effect-dataflow fixpoint
(:mod:`repro.lint.effects`) built once per tree and shared by every
checker, so rules can reason about what a function *reaches*, not just
what it writes.  ``brisk-lint --graph <symbol>`` shows the resolution
for one function; ``brisk-lint --explain <rule>`` prints a rule's
rationale.

Rule families (see ``docs/static-analysis.md`` for the full catalogue):

=========  =============================================================
``BRK0xx``  pragma hygiene (malformed / reason-less / unused pragmas)
``BRK1xx``  wire conformance (encode/decode symmetry, type-id registry,
            trailing-word-only extensions)
``BRK2xx``  determinism (no wall clock / ambient randomness in the
            simulation-reachable zone; BRK204 follows the call graph
            out of the zone)
``BRK3xx``  select-loop pump discipline (no blocking calls written in
            pump functions)
``BRK4xx``  exception hygiene (no silently swallowed broad excepts)
``BRK5xx``  instrument registration (every obs instrument registered,
            metric names consistent)
``BRK6xx``  deep loop discipline (pump loops must not *transitively*
            reach blocking calls through any call chain)
``BRK7xx``  durability ordering (ack release dominated by fsync +
            checkpoint; ring consumers behind the commit watermark)
``BRK8xx``  capability gating (protocol extensions control-dependent on
            the negotiated CAP_* bit)
=========  =============================================================

Findings are suppressed either by an inline pragma with a reason::

    something_flagged()  # brisk-lint: disable=BRK401 (why it is fine)

or by an entry in the checked-in ``lint-baseline.toml``; ``--fail-on-new``
(the CI mode) fails only on findings in neither.
"""

from repro.lint.engine import (
    Checker,
    Finding,
    SourceFile,
    SourceTree,
    load_tree,
)
from repro.lint.callgraph import CallGraph, build_callgraph
from repro.lint.effects import Effect, ProjectAnalysis, project_analysis
from repro.lint.checkers import all_checkers
from repro.lint.runner import LintResult, run_lint

__all__ = [
    "CallGraph",
    "Checker",
    "Effect",
    "Finding",
    "LintResult",
    "ProjectAnalysis",
    "SourceFile",
    "SourceTree",
    "all_checkers",
    "build_callgraph",
    "load_tree",
    "project_analysis",
    "run_lint",
]
