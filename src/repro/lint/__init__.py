"""brisk-lint: AST-based invariant checking for this repository.

The last several PRs each hand-established an invariant the codebase now
silently depends on — byte-identical codec fast paths, select-loop pump
discipline, no-swallowed-errors delivery, and a wall-clock-free
deterministic simulation that a golden PICL trace is byte-stable against.
``brisk-lint`` machine-checks those contracts on every commit: it parses
the source tree once into ASTs and runs pluggable project-specific
checkers over it.

Rule families (see ``docs/static-analysis.md`` for the full catalogue):

=========  =============================================================
``BRK0xx``  pragma hygiene (malformed / reason-less / unused pragmas)
``BRK1xx``  wire conformance (encode/decode symmetry, type-id registry,
            trailing-word-only extensions)
``BRK2xx``  determinism (no wall clock / ambient randomness in the
            simulation-reachable zone)
``BRK3xx``  select-loop pump discipline (no blocking calls in pumps)
``BRK4xx``  exception hygiene (no silently swallowed broad excepts)
``BRK5xx``  instrument registration (every obs instrument registered,
            metric names consistent)
=========  =============================================================

Findings are suppressed either by an inline pragma with a reason::

    something_flagged()  # brisk-lint: disable=BRK401 (why it is fine)

or by an entry in the checked-in ``lint-baseline.toml``; ``--fail-on-new``
(the CI mode) fails only on findings in neither.
"""

from repro.lint.engine import (
    Checker,
    Finding,
    SourceFile,
    SourceTree,
    load_tree,
)
from repro.lint.checkers import all_checkers
from repro.lint.runner import LintResult, run_lint

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "SourceFile",
    "SourceTree",
    "all_checkers",
    "load_tree",
    "run_lint",
]
