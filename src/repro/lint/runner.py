"""Run checkers over a tree and classify findings against suppressions."""

from __future__ import annotations

from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import BaselineEntry, load_baseline
from repro.lint.checkers import all_checkers
from repro.lint.engine import Checker, Finding, SourceTree, load_tree

__all__ = ["LintResult", "run_lint", "fingerprint_findings"]


@dataclass
class LintResult:
    """Everything one lint run produced, already classified."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    pragma_suppressed: list[Finding] = field(default_factory=list)
    #: fingerprint per finding, across all three lists.
    fingerprints: dict[int, str] = field(default_factory=dict)
    #: qualified enclosing symbol per finding (same id keying).
    symbols: dict[int, str] = field(default_factory=dict)
    files_checked: int = 0
    #: Baseline entries whose finding no longer exists (fixed): candidates
    #: for pruning at the next --write-baseline.
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def all_findings(self) -> list[Finding]:
        return sorted(
            [*self.new, *self.baselined, *self.pragma_suppressed],
            key=lambda f: (f.path, f.line, f.rule),
        )

    def fingerprint_of(self, finding: Finding) -> str:
        return self.fingerprints.get(id(finding), "")

    def symbol_of(self, finding: Finding) -> str:
        return self.symbols.get(id(finding), "")

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def fingerprint_findings(
    tree: SourceTree, findings: Sequence[Finding]
) -> tuple[dict[int, str], dict[int, str]]:
    """Fingerprints + enclosing symbols, keyed by ``id(finding)``.

    Identity = rule + qualified symbol + normalized flagged-line text,
    with an occurrence index disambiguating identical lines inside one
    symbol — line numbers never enter the hash, so entries survive any
    edit that does not touch the flagged line or its enclosing function.
    """
    tally: _TallyCounter[tuple[str, str, str]] = _TallyCounter()
    fingerprints: dict[int, str] = {}
    symbols: dict[int, str] = {}
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        source_file = tree.get(finding.path)
        line_text = source_file.line_text(finding.line) if source_file else ""
        symbol = source_file.symbol_at(finding.line) if source_file else ""
        key = (finding.rule, symbol, " ".join(line_text.split()))
        occurrence = tally[key]
        tally[key] += 1
        fingerprints[id(finding)] = finding.fingerprint(
            line_text, occurrence, symbol=symbol
        )
        symbols[id(finding)] = symbol
    return fingerprints, symbols


def run_lint(
    paths: Sequence[Path],
    *,
    root: Path | None = None,
    baseline_path: Path | None = None,
    checkers: Sequence[Checker] | None = None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    tree: SourceTree | None = None,
) -> LintResult:
    """Parse once, run every checker, classify each finding.

    *select*/*ignore* filter by rule id or checker name prefix
    (``BRK4``, ``BRK401``, ``exception-hygiene``).  Pass a prebuilt
    *tree* to lint an already-parsed corpus (tests do).
    """
    if tree is None:
        tree = load_tree(paths, root=root)
    checkers = list(all_checkers() if checkers is None else checkers)
    findings: list[Finding] = []
    for source_file in tree:
        findings.extend(source_file.load_findings)
    for checker in checkers:
        if select and not _family_selected(checker, select):
            continue
        if ignore and _family_ignored(checker, ignore):
            continue
        findings.extend(checker.check(tree))
    findings = [f for f in findings if _rule_selected(f.rule, select, ignore)]

    # Unused-pragma pass (after all checkers so "used" is final).
    result = LintResult(files_checked=len(tree.files))
    kept: list[Finding] = []
    for finding in findings:
        source_file = tree.get(finding.path)
        if source_file is not None and source_file.suppressed(finding):
            result.pragma_suppressed.append(finding)
        else:
            kept.append(finding)
    if _rule_selected("BRK003", select, ignore):
        for source_file in tree:
            for pragma in source_file.pragmas:
                if not pragma.used:
                    kept.append(
                        Finding(
                            rule="BRK003",
                            path=source_file.rel_path,
                            line=pragma.line,
                            message=(
                                "pragma suppresses nothing "
                                f"(rules {', '.join(pragma.rules)})"
                            ),
                            hint="delete it — stale suppressions hide future bugs",
                        )
                    )

    all_classified = [*kept, *result.pragma_suppressed]
    result.fingerprints, result.symbols = fingerprint_findings(
        tree, all_classified
    )
    baseline = (
        load_baseline(baseline_path) if baseline_path is not None else {}
    )
    seen_fingerprints: set[str] = set()
    for finding in kept:
        fingerprint = result.fingerprints[id(finding)]
        seen_fingerprints.add(fingerprint)
        if fingerprint in baseline:
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    result.stale_baseline = [
        entry
        for fingerprint, entry in sorted(baseline.items())
        if fingerprint not in seen_fingerprints
    ]
    result.new.sort(key=lambda f: (f.path, f.line, f.rule))
    result.baselined.sort(key=lambda f: (f.path, f.line, f.rule))
    return result


def _family_selected(checker: Checker, patterns: Sequence[str]) -> bool:
    for pattern in patterns:
        if pattern == checker.name:
            return True
        if any(rule.startswith(pattern) for rule in checker.rules):
            return True
    return False


def _family_ignored(checker: Checker, patterns: Sequence[str]) -> bool:
    """Skip a whole checker only when *everything* it reports is ignored
    (ignoring one rule of a family must not silence its siblings —
    findings are filtered per-rule afterwards)."""
    if checker.name in patterns:
        return True
    return all(
        any(rule.startswith(p) for p in patterns if p.startswith("BRK"))
        for rule in checker.rules
    )


def _rule_selected(
    rule: str, select: Sequence[str], ignore: Sequence[str]
) -> bool:
    if any(rule.startswith(p) for p in ignore if p.startswith("BRK")):
        return False
    if not select:
        return True
    brk_patterns = [p for p in select if p.startswith("BRK")]
    if rule.startswith("BRK0"):
        return True  # engine rules ride along with any selection
    if not brk_patterns:
        return True  # selection was by checker name; rule filter not used
    return any(rule.startswith(p) for p in brk_patterns)
