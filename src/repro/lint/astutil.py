"""Shared AST helpers for brisk-lint checkers.

The workhorse is :class:`ImportMap`: it resolves local names back to the
qualified names they were imported as, so a checker banning
``time.monotonic`` also catches ``from time import monotonic as mono``.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "ImportMap",
    "dotted_name",
    "walk_functions",
    "calls_in",
    "enclosing_function_names",
]


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias → qualified name, from a module's import statements.

    ``import time`` maps ``time`` → ``time``; ``import numpy as np`` maps
    ``np`` → ``numpy``; ``from time import monotonic as mono`` maps
    ``mono`` → ``time.monotonic``.  :meth:`resolve` then expands a
    reference like ``np.random.default_rng`` to its fully qualified
    spelling.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Qualified name a Name/Attribute reference points at, or None."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self._aliases.get(head)
        if base is None:
            return dotted  # not imported: already as qualified as it gets
        return f"{base}.{rest}" if rest else base


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the module, any nesting."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every call expression under *node* (inclusive)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def enclosing_function_names(tree: ast.AST) -> dict[int, str]:
    """Map each statement line to the name of its innermost function.

    Built once per file; checkers use it to phrase findings
    ("in ``_pump_connections``") without re-walking the AST.
    """
    out: dict[int, str] = {}

    def visit(node: ast.AST, current: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child.name)
            else:
                if hasattr(child, "lineno"):
                    out.setdefault(child.lineno, current)
                visit(child, current)

    visit(tree, "<module>")
    return out
