"""Baseline file handling: let the tree start clean, gate what is new.

The baseline (``lint-baseline.toml``) records accepted pre-existing
findings by *fingerprint* — a hash of the rule, the qualified enclosing
symbol, and the text of the flagged line — so pure line drift (code
inserted above, or the whole function moving within its file) does not
un-baseline an entry, while editing the flagged line or moving it to a
different function does, forcing a fresh look.  ``--fail-on-new`` fails
only on findings not in the baseline; ``--write-baseline`` regenerates
it.

Read via :mod:`tomllib`; written with a purpose-built emitter (the
stdlib has no TOML writer and this repo adds no dependencies).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.lint.engine import Finding

__all__ = ["BaselineEntry", "load_baseline", "write_baseline"]


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    line: int          #: informational; fingerprints, not lines, match
    reason: str = ""
    symbol: str = ""   #: informational; the qualified enclosing symbol


def load_baseline(path: Path) -> dict[str, BaselineEntry]:
    """fingerprint → entry; an absent file is an empty baseline."""
    if not path.exists():
        return {}
    data = tomllib.loads(path.read_text(encoding="utf-8"))
    out: dict[str, BaselineEntry] = {}
    for raw in data.get("finding", []):
        entry = BaselineEntry(
            fingerprint=str(raw["fingerprint"]),
            rule=str(raw["rule"]),
            path=str(raw["path"]),
            line=int(raw.get("line", 0)),
            reason=str(raw.get("reason", "")),
            symbol=str(raw.get("symbol", "")),
        )
        out[entry.fingerprint] = entry
    return out


def _toml_str(value: str) -> str:
    escaped = (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )
    return f'"{escaped}"'


def write_baseline(
    path: Path,
    findings: Iterable[tuple[Finding, str]],
    reasons: Mapping[str, str] | None = None,
    symbols: Mapping[str, str] | None = None,
) -> int:
    """Write ``(finding, fingerprint)`` pairs; returns entries written.

    *reasons* maps fingerprints to justification strings; entries from a
    previous baseline keep their reasons across a regeneration.
    *symbols* maps fingerprints to the qualified enclosing symbol
    (informational, like ``line`` — the fingerprint alone matches).
    """
    reasons = reasons or {}
    symbols = symbols or {}
    entries = sorted(
        {fp: f for f, fp in findings}.items(),
        key=lambda item: (item[1].path, item[1].line, item[1].rule),
    )
    lines = [
        "# brisk-lint baseline: accepted pre-existing findings, by fingerprint.",
        "# Regenerate with `python -m repro.lint --write-baseline`; entries",
        "# disappear automatically when the underlying finding is fixed.",
        "",
    ]
    for fingerprint, finding in entries:
        lines.append("[[finding]]")
        lines.append(f"fingerprint = {_toml_str(fingerprint)}")
        lines.append(f"rule = {_toml_str(finding.rule)}")
        lines.append(f"path = {_toml_str(finding.path)}")
        lines.append(f"line = {finding.line}")
        symbol = symbols.get(fingerprint, "")
        if symbol:
            lines.append(f"symbol = {_toml_str(symbol)}")
        reason = reasons.get(fingerprint, "")
        if reason:
            lines.append(f"reason = {_toml_str(reason)}")
        lines.append("")
    path.write_text("\n".join(lines), encoding="utf-8")
    return len(entries)
