"""BRK1xx — wire conformance: the protocol module's structural contract.

``wire/protocol.py`` centralizes every message's encode and decode; the
compatibility story (PR 3's trailing-word ``Hello.wants_ack`` extension)
depends on three structural invariants this checker enforces on any
module that defines a ``Message`` union and a ``MsgType`` enum:

* **BRK101** — *symmetric field order*: the sequence of ``msg.<field>``
  reads in a class's encode branch must equal the keyword order of its
  decode constructor call (decoding XDR is order-sensitive; a transposed
  pair still type-checks and still round-trips in the same build, then
  corrupts against any other build).
* **BRK102** — *type-id registry*: every union member maps to exactly one
  ``MsgType`` member, packed in its encode branch and tested in its
  decode branch, with no enum member claimed twice and no duplicate enum
  values.
* **BRK103** — *trailing-word-only extensions*: a conditionally encoded
  field must be the **last** field on the wire and its decode must guard
  on ``dec.remaining`` — that is the only evolution scheme that keeps old
  payloads byte-identical and old decoders tolerant.
* **BRK104** — *unencoded field*: a dataclass field that appears in
  neither the encode nor the decode path silently defaults on receive.

Delegated paths are followed one level: an encode branch that hands
``msg.<field>`` arguments to a helper (``encode_batch_records``) takes
its field order from those arguments, and a decode branch that returns a
helper call (``_decode_batch``) is resolved by finding the message-class
constructor inside that helper.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.astutil import dotted_name
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["WireConformanceChecker"]


@dataclass
class _EncodeEvent:
    field: str
    line: int
    conditional: bool


@dataclass
class _MessageInfo:
    name: str
    line: int = 0
    fields: list[str] = field(default_factory=list)
    encode_events: list[_EncodeEvent] = field(default_factory=list)
    encode_type_ids: list[str] = field(default_factory=list)
    encode_line: int = 0
    decode_keywords: list[str] = field(default_factory=list)
    decode_guarded: set[str] = field(default_factory=set)
    decode_type_ids: list[str] = field(default_factory=list)
    decode_line: int = 0
    has_encode: bool = False
    has_decode: bool = False


def _msg_attr_loads(node: ast.AST, var: str) -> list[tuple[str, int]]:
    """``(field, line)`` for every ``<var>.<field>`` read under *node*."""
    out = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == var
        ):
            out.append((sub.attr, sub.lineno, sub.col_offset))
    # ast.walk order is breadth-first, not source order; sort by position
    # so multi-field statements yield fields in the order they are packed.
    out.sort(key=lambda item: (item[1], item[2]))
    return [(attr, line) for attr, line, _ in out]


def _msgtype_refs(node: ast.AST) -> list[str]:
    """Names of ``MsgType.X`` members referenced under *node*."""
    out = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "MsgType"
        ):
            out.append(sub.attr)
    return out


def _union_members(tree: ast.AST) -> tuple[list[str], int] | None:
    """Class names in a module-level ``Message = A | B | ...``."""
    for node in tree.body:  # type: ignore[attr-defined]
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "Message"
        ):
            names: list[str] = []
            stack = [node.value]
            while stack:
                value = stack.pop()
                if isinstance(value, ast.BinOp) and isinstance(value.op, ast.BitOr):
                    stack.extend([value.right, value.left])
                elif isinstance(value, ast.Name):
                    names.append(value.id)
            if names:
                return names, node.lineno
    return None


class WireConformanceChecker(Checker):
    name = "wire-conformance"
    rules = {
        "BRK101": "encode/decode field order is not symmetric",
        "BRK102": "message type-id registration is missing, duplicated, or mismatched",
        "BRK103": "conditionally encoded field is not a guarded trailing word",
        "BRK104": "dataclass field appears in neither encode nor decode path",
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        for source_file in tree:
            if source_file.tree is None:
                continue
            union = _union_members(source_file.tree)
            if union is None:
                continue
            yield from self._check_module(source_file, union[0])

    # ------------------------------------------------------------------
    def _check_module(
        self, source_file: SourceFile, members: list[str]
    ) -> Iterator[Finding]:
        module = source_file.tree
        assert module is not None  # guarded by check()
        infos = {name: _MessageInfo(name) for name in members}
        functions = {
            node.name: node
            for node in ast.walk(module)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        yield from self._check_enum_values(source_file, module)
        self._collect_dataclass_fields(module, infos)
        self._collect_encode(functions, infos)
        self._collect_decode(functions, infos)

        claimed: dict[str, str] = {}
        for info in infos.values():
            yield from self._report_type_ids(source_file, info, claimed)
            if info.has_encode and info.has_decode:
                yield from self._report_field_order(source_file, info)
            if info.fields:
                yield from self._report_dark_fields(source_file, info)

    # ------------------------------------------------------------------
    def _check_enum_values(
        self, source_file: SourceFile, module: ast.AST
    ) -> Iterator[Finding]:
        for node in ast.walk(module):
            if not (isinstance(node, ast.ClassDef) and node.name == "MsgType"):
                continue
            seen: dict[int, str] = {}
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    value = stmt.value.value
                    member = stmt.targets[0].id
                    if value in seen:
                        yield Finding(
                            rule="BRK102",
                            path=source_file.rel_path,
                            line=stmt.lineno,
                            message=(
                                f"MsgType.{member} reuses wire value {value} "
                                f"already held by MsgType.{seen[value]}"
                            ),
                            hint="every message needs a unique wire discriminator",
                        )
                    else:
                        seen[value] = member

    @staticmethod
    def _collect_dataclass_fields(
        module: ast.AST, infos: dict[str, _MessageInfo]
    ) -> None:
        for node in ast.walk(module):
            if isinstance(node, ast.ClassDef) and node.name in infos:
                info = infos[node.name]
                info.line = node.lineno
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        info.fields.append(stmt.target.id)

    # -- encode side ----------------------------------------------------
    def _collect_encode(
        self,
        functions: dict[str, ast.FunctionDef],
        infos: dict[str, _MessageInfo],
    ) -> None:
        encode_fn = functions.get("_encode_message") or functions.get(
            "encode_message"
        )
        if encode_fn is None:
            return
        for node in ast.walk(encode_fn):
            if not isinstance(node, ast.If):
                continue
            cls = self._isinstance_target(node.test, infos)
            if cls is None:
                continue
            info = infos[cls]
            info.has_encode = True
            info.encode_line = node.lineno
            self._extract_encode_events(node.body, info, functions, depth=0)

    @staticmethod
    def _isinstance_target(
        test: ast.expr, infos: dict[str, _MessageInfo]
    ) -> str | None:
        if not (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
            and len(test.args) == 2
        ):
            return None
        target = test.args[1]
        candidates = (
            [e for e in target.elts if isinstance(e, ast.Name)]
            if isinstance(target, ast.Tuple)
            else ([target] if isinstance(target, ast.Name) else [])
        )
        for candidate in candidates:
            if candidate.id in infos:
                return candidate.id
        return None

    def _extract_encode_events(
        self,
        body: list[ast.stmt],
        info: _MessageInfo,
        functions: dict[str, ast.FunctionDef],
        depth: int,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                # `if msg.<field>:` guarding packs is a conditional
                # encoding of that field, even when the packed value is a
                # presence flag rather than the field itself.
                guard_fields = _msg_attr_loads(stmt.test, "msg")
                packs_inside = any(
                    isinstance(sub, ast.Call)
                    and (dotted_name(sub.func) or "").rsplit(".", 1)[-1].startswith(
                        "pack"
                    )
                    for sub in ast.walk(stmt)
                )
                if guard_fields and packs_inside:
                    # A field named both in the guard and in the body is
                    # one event: the per-field dedup below collapses it.
                    for fname, line in guard_fields:
                        if not any(e.field == fname for e in info.encode_events):
                            info.encode_events.append(
                                _EncodeEvent(fname, line, conditional=True)
                            )
                    self._extract_encode_events(
                        stmt.body, info, functions, depth + 1
                    )
                else:
                    self._extract_encode_events(
                        stmt.body, info, functions, depth + 1
                    )
                    self._extract_encode_events(
                        stmt.orelse, info, functions, depth + 1
                    )
                continue
            info.encode_type_ids.extend(_msgtype_refs(stmt))
            for fname, line in _msg_attr_loads(stmt, "msg"):
                if not any(e.field == fname for e in info.encode_events):
                    info.encode_events.append(
                        _EncodeEvent(fname, line, conditional=depth > 0)
                    )
            # One-level delegation: follow helpers that receive msg.<attr>
            # arguments (they pack the type id and the payload).
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in functions
                    and any(_msg_attr_loads(a, "msg") for a in sub.args)
                ):
                    info.encode_type_ids.extend(
                        _msgtype_refs(functions[sub.func.id])
                    )

    # -- decode side ----------------------------------------------------
    def _collect_decode(
        self,
        functions: dict[str, ast.FunctionDef],
        infos: dict[str, _MessageInfo],
    ) -> None:
        decode_fn = functions.get("decode_message")
        if decode_fn is None:
            return
        class_names = set(infos)
        for node in ast.walk(decode_fn):
            if not isinstance(node, ast.If):
                continue
            type_id = self._kind_comparison(node.test)
            if type_id is None:
                continue
            ctor = self._find_ctor(node.body, class_names, functions)
            if ctor is None:
                continue
            cls, call, line = ctor
            info = infos[cls]
            info.has_decode = True
            info.decode_line = line
            info.decode_type_ids.append(type_id)
            for kw in call.keywords:
                if kw.arg is None:
                    continue
                info.decode_keywords.append(kw.arg)
                if any(
                    isinstance(sub, ast.Attribute) and sub.attr == "remaining"
                    for sub in ast.walk(kw.value)
                ):
                    info.decode_guarded.add(kw.arg)

    @staticmethod
    def _kind_comparison(test: ast.expr) -> str | None:
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "kind"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            refs = _msgtype_refs(test.comparators[0])
            if refs:
                return refs[0]
        return None

    def _find_ctor(
        self,
        body: list[ast.stmt],
        class_names: set[str],
        functions: dict[str, ast.FunctionDef],
        follow: bool = True,
    ) -> tuple[str, ast.Call, int] | None:
        for stmt in body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call) or not isinstance(
                    sub.func, ast.Name
                ):
                    continue
                if sub.func.id in class_names:
                    return sub.func.id, sub, sub.lineno
                if follow and sub.func.id in functions:
                    inner = self._find_ctor(
                        functions[sub.func.id].body,
                        class_names,
                        functions,
                        follow=False,
                    )
                    if inner is not None:
                        return inner
        return None

    # -- reporting ------------------------------------------------------
    def _report_type_ids(
        self,
        source_file: SourceFile,
        info: _MessageInfo,
        claimed: dict[str, str],
    ) -> Iterator[Finding]:
        line = info.encode_line or info.line or 1
        encode_ids = [t for t in dict.fromkeys(info.encode_type_ids)]
        decode_ids = [t for t in dict.fromkeys(info.decode_type_ids)]
        if not info.has_encode and not info.has_decode:
            yield Finding(
                rule="BRK102",
                path=source_file.rel_path,
                line=info.line or 1,
                message=(
                    f"{info.name} is in the Message union but has neither an "
                    "encode branch nor a decode branch"
                ),
                hint="register it in _encode_message and decode_message",
            )
            return
        for missing, side in (
            (not info.has_encode, "encode"),
            (not info.has_decode, "decode"),
        ):
            if missing:
                yield Finding(
                    rule="BRK102",
                    path=source_file.rel_path,
                    line=line,
                    message=f"{info.name} has no {side} branch",
                    hint=f"add the {side} side or drop it from the union",
                )
        if encode_ids and decode_ids and encode_ids[0] != decode_ids[0]:
            yield Finding(
                rule="BRK102",
                path=source_file.rel_path,
                line=line,
                message=(
                    f"{info.name} encodes as MsgType.{encode_ids[0]} but "
                    f"decodes on MsgType.{decode_ids[0]}"
                ),
                hint="encode and decode must dispatch on the same member",
            )
        for type_id in encode_ids[:1]:
            owner = claimed.get(type_id)
            if owner is not None and owner != info.name:
                yield Finding(
                    rule="BRK102",
                    path=source_file.rel_path,
                    line=line,
                    message=(
                        f"MsgType.{type_id} is claimed by both {owner} "
                        f"and {info.name}"
                    ),
                    hint="one wire discriminator per message class",
                )
            else:
                claimed[type_id] = info.name

    def _report_field_order(
        self, source_file: SourceFile, info: _MessageInfo
    ) -> Iterator[Finding]:
        encode_fields = [e.field for e in info.encode_events]
        if encode_fields != info.decode_keywords:
            yield Finding(
                rule="BRK101",
                path=source_file.rel_path,
                line=info.decode_line or info.encode_line,
                message=(
                    f"{info.name} encodes fields {encode_fields} but decodes "
                    f"{info.decode_keywords}"
                ),
                hint=(
                    "XDR decoding is order-sensitive: make the decode "
                    "constructor's keyword order match the encode pack order"
                ),
            )
        # Trailing-word rule: conditional events must be a suffix, and
        # guarded on the decode side.
        events = info.encode_events
        first_conditional = next(
            (i for i, e in enumerate(events) if e.conditional), None
        )
        if first_conditional is not None:
            if any(not e.conditional for e in events[first_conditional:]):
                bad = events[first_conditional]
                yield Finding(
                    rule="BRK103",
                    path=source_file.rel_path,
                    line=bad.line,
                    message=(
                        f"{info.name}.{bad.field} is conditionally encoded "
                        "before unconditional fields"
                    ),
                    hint=(
                        "extensions must be trailing words: old decoders stop "
                        "early, old payloads stay byte-identical"
                    ),
                )
            for event in events[first_conditional:]:
                if (
                    event.conditional
                    and event.field in info.decode_keywords
                    and event.field not in info.decode_guarded
                ):
                    yield Finding(
                        rule="BRK103",
                        path=source_file.rel_path,
                        line=info.decode_line or event.line,
                        message=(
                            f"{info.name}.{event.field} is optional on the "
                            "wire but its decode does not guard on "
                            "dec.remaining"
                        ),
                        hint=(
                            "decode trailing extensions as "
                            "'dec.remaining >= N and ...' so legacy payloads "
                            "still parse"
                        ),
                    )

    def _report_dark_fields(
        self, source_file: SourceFile, info: _MessageInfo
    ) -> Iterator[Finding]:
        if not (info.has_encode and info.has_decode):
            return
        encoded = {e.field for e in info.encode_events}
        decoded = set(info.decode_keywords)
        for fname in info.fields:
            if fname not in encoded and fname not in decoded:
                yield Finding(
                    rule="BRK104",
                    path=source_file.rel_path,
                    line=info.line,
                    message=(
                        f"{info.name}.{fname} appears in neither the encode "
                        "nor the decode path"
                    ),
                    hint=(
                        "encode it (trailing word if optional) or remove the "
                        "field — a silently defaulting field is wire data loss"
                    ),
                )
