"""Checker registry: one module per rule family."""

from __future__ import annotations

from repro.lint.engine import Checker
from repro.lint.checkers.wire_conformance import WireConformanceChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.loop_discipline import LoopDisciplineChecker
from repro.lint.checkers.exception_hygiene import ExceptionHygieneChecker
from repro.lint.checkers.instruments import InstrumentRegistrationChecker
from repro.lint.checkers.deep_loop import DeepLoopChecker
from repro.lint.checkers.durability import DurabilityChecker
from repro.lint.checkers.capgate import CapGateChecker

__all__ = ["all_checkers"]


def all_checkers() -> list[Checker]:
    """Instantiate every registered checker, in rule-id order."""
    return [
        WireConformanceChecker(),
        DeterminismChecker(),
        LoopDisciplineChecker(),
        ExceptionHygieneChecker(),
        InstrumentRegistrationChecker(),
        DeepLoopChecker(),
        DurabilityChecker(),
        CapGateChecker(),
    ]
