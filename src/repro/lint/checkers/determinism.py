"""BRK2xx — determinism: no ambient time or randomness in the sim zone.

The golden PICL trace (``tests/test_golden_pipeline.py``) is byte-stable
only because the simulation-reachable pipeline never reads a wall clock
or an unseeded RNG: virtual time is always *passed in* and every random
draw flows from one seeded ``random.Random``.  This checker makes that
reachability argument a machine-checked zone invariant:

* **zone** — modules under ``repro/sim/``, ``repro/core/`` and
  ``repro/obs/`` (the sim engine, the virtual-time-driven pipeline
  stages, and the self-observability layer the sim dogfoods);
* **banned** — wall-clock reads (``time.time``, ``time.monotonic`` and
  their ``_ns`` forms, ``datetime.now``/``utcnow``/``today``), ambient
  entropy (``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets.*``),
  module-level ``random.*`` functions, and unseeded ``random.Random()``;
* **sanctioned** — ``time.perf_counter``/``perf_counter_ns`` (duration
  measurement for self-timing histograms; never a timestamp source),
  seeded ``random.Random(seed)`` construction, references to the
  :mod:`repro.util.timebase` clock interface, and annotation-only uses
  (``rng: random.Random`` types a parameter, it does not read entropy).

Real-runtime modules (``runtime/``, ``wire/``, ``tools/``) are outside
the zone: they are *supposed* to read real clocks.  Individual runtime
files that commit to the sanctioned :mod:`repro.util.timebase` interface
anyway can opt in via :data:`ZONE_FILES`.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import ImportMap
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["DeterminismChecker"]

#: Path prefixes (repo-relative) forming the deterministic zone.
ZONE_PREFIXES = (
    "src/repro/sim/",
    "src/repro/core/",
    "src/repro/obs/",
    "src/repro/log/",
    "src/repro/monitor/",
)
#: Runtime files opted into the zone individually: they time themselves
#: exclusively through the sanctioned ``repro.util.timebase`` interface,
#: and this checker keeps a raw ``time.*``/entropy read from creeping in.
ZONE_FILES = (
    "src/repro/runtime/relay_proc.py",
)
#: Zone files exempted wholesale, with the reason on record here.
ZONE_EXEMPT = {
    # Reads /proc and host CPU clocks by design; never simulated (the
    # sim's workload models replace it) and documented as real-runtime.
    "src/repro/core/system_sensor.py",
}

#: Qualified names whose *call or reference* breaks determinism.
BANNED = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.localtime": "wall clock",
    "time.gmtime": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "ambient entropy",
    "uuid.uuid1": "ambient entropy",
    "uuid.uuid4": "ambient entropy",
    "secrets.token_bytes": "ambient entropy",
    "secrets.token_hex": "ambient entropy",
    "secrets.randbits": "ambient entropy",
}
#: Module-level random functions (random.random, random.randint, ...)
#: are banned as a family; random.Random with a seed argument is fine.
_RANDOM_MODULE_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "expovariate",
    "normalvariate",
    "getrandbits",
    "randbytes",
    "seed",
}


def _annotation_ranges(tree: ast.AST) -> set[int]:
    """ids of AST nodes that live inside type annotations."""
    out: set[int] = set()

    def mark(node: ast.AST | None) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            out.add(id(sub))

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mark(node.returns)
            args = node.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                args.vararg,
                args.kwarg,
            ):
                if arg is not None:
                    mark(arg.annotation)
        elif isinstance(node, ast.AnnAssign):
            mark(node.annotation)
    return out


class DeterminismChecker(Checker):
    name = "determinism"
    rules = {
        "BRK201": "wall-clock or entropy read in the deterministic zone",
        "BRK202": "module-level random.* call in the deterministic zone",
        "BRK203": "unseeded random.Random() in the deterministic zone",
        "BRK204": (
            "zone function transitively reaches an ambient clock/entropy "
            "read through a helper outside the zone"
        ),
    }
    explain = {
        "BRK204": (
            "BRK201 only sees reads written inside zone files; a zone "
            "function that calls a runtime/util helper which reads "
            "time.time() leaks exactly the same nondeterminism one hop "
            "removed, and nothing flagged it before the call graph "
            "existed. This rule walks the interprocedural effect "
            "lattice (repro.lint.effects) from every zone function and "
            "reports the shortest chain to an out-of-zone ambient "
            "read. repro.util.timebase is a barrier — routing time "
            "through the sanctioned clock interface is the approved "
            "escape hatch and never flags."
        ),
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        for source_file in tree.under(*ZONE_PREFIXES, *ZONE_FILES):
            if source_file.tree is None:
                continue
            if source_file.rel_path in ZONE_EXEMPT:
                continue
            yield from self._check_file(source_file)
        yield from self._check_transitive(tree)

    def _check_transitive(self, tree: SourceTree) -> Iterator[Finding]:
        """BRK204: zone code reaching ambient reads *through* helpers.

        Only chains that terminate outside the zone are reported —
        in-zone reads are already flagged at their own line by
        BRK201/202/203, and ``ZONE_FILES`` opt-ins police their own
        file only (relay legitimately calls real-clock tcp helpers).
        Edges into :data:`ZONE_EXEMPT` files inherit the exemption.
        """
        from repro.lint.effects import Effect, project_analysis

        analysis = project_analysis(tree)
        ambient = Effect.READS_CLOCK | Effect.READS_ENTROPY
        for info in analysis.graph.functions.values():
            if not info.rel_path.startswith(ZONE_PREFIXES):
                continue
            if info.rel_path in ZONE_EXEMPT:
                continue
            if analysis.effects_of(info.qname).local & ambient:
                continue  # BRK201/202/203 territory
            for effect in (Effect.READS_CLOCK, Effect.READS_ENTROPY):
                chain = analysis.chain_to(info.qname, effect)
                if not chain:  # None (unreachable) or [] (local, handled)
                    continue
                terminal = chain[-1][1]
                terminal_info = analysis.graph.functions.get(terminal)
                if terminal_info is None:
                    continue
                if terminal_info.rel_path.startswith(ZONE_PREFIXES):
                    continue  # the read itself is flagged in-zone
                if terminal_info.rel_path in ZONE_EXEMPT:
                    continue
                site = analysis.effects_of(terminal).site_for(effect)
                via = " -> ".join(e.callee.rsplit(".", 1)[-1] for e, _ in chain)
                detail = site.detail if site else effect.describe()
                where = (
                    f"{terminal_info.rel_path}:{site.lineno}"
                    if site
                    else terminal_info.rel_path
                )
                yield Finding(
                    rule="BRK204",
                    path=info.rel_path,
                    line=chain[0][0].lineno,
                    message=(
                        f"zone function '{info.name}' reaches an ambient "
                        f"{'clock' if effect is Effect.READS_CLOCK else 'entropy'} "
                        f"read via {via} ({detail} at {where})"
                    ),
                    hint=(
                        "inject the value (parameter or timebase clock) "
                        "instead of calling through to the ambient read"
                    ),
                )

    def _check_file(self, source_file: SourceFile) -> Iterator[Finding]:
        assert source_file.tree is not None  # guarded by check()
        imports = ImportMap(source_file.tree)
        in_annotation = _annotation_ranges(source_file.tree)
        for node in ast.walk(source_file.tree):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if id(node) in in_annotation:
                continue
            # Only the outermost attribute chain matters; `time.monotonic`
            # resolves at the Attribute node, and its inner Name child
            # resolves to just `time`, which is not banned.
            qual = imports.resolve(node)
            if qual is None:
                continue
            if qual in BANNED:
                yield Finding(
                    rule="BRK201",
                    path=source_file.rel_path,
                    line=node.lineno,
                    message=(
                        f"{qual} is a {BANNED[qual]} read inside the "
                        "deterministic zone"
                    ),
                    hint=(
                        "take 'now' as a parameter, inject a clock callable "
                        "(repro.util.timebase / Simulator.time_fn), or move "
                        "the read out of sim-reachable code"
                    ),
                )
            elif (
                qual.startswith("random.")
                and qual.rsplit(".", 1)[-1] in _RANDOM_MODULE_FUNCS
                and qual.count(".") == 1
            ):
                yield Finding(
                    rule="BRK202",
                    path=source_file.rel_path,
                    line=node.lineno,
                    message=(
                        f"{qual} draws from the shared ambient RNG; the sim "
                        "must be a pure function of its seed"
                    ),
                    hint="accept a seeded random.Random and draw from it",
                )
        # Unseeded random.Random(): seeds itself from OS entropy.
        for node in ast.walk(source_file.tree):
            if (
                isinstance(node, ast.Call)
                and imports.resolve(node.func) == "random.Random"
                and not node.args
                and not node.keywords
            ):
                yield Finding(
                    rule="BRK203",
                    path=source_file.rel_path,
                    line=node.lineno,
                    message="random.Random() with no seed reads OS entropy",
                    hint="pass an explicit seed (or a caller-provided rng)",
                )
