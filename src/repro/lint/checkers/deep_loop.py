"""BRK6xx — deep loop discipline: pumps must not *reach* blocking calls.

BRK301–303 police blocking calls written directly inside a pump-scoped
function.  This family closes the loophole those rules leave open: a
pump loop calling a helper that calls a helper that sleeps stalls every
multiplexed peer just the same, and the refactors of PRs 6–9 moved most
pump bodies into exactly such helpers.

Definitions (all effect queries go through the shared
:mod:`repro.lint.effects` analysis):

* a **pump** is a function in a pump-scoped file whose transitive
  effects include ``RUNS_SELECT`` — it drives, or is driven by, a
  ``select`` readiness loop;
* a finding fires for a call site **inside a ``while`` loop body** of a
  pump when the callee's propagated effects include a blocking effect
  (``BLOCKS_SLEEP``/``BLOCKS_RECV``/``BLOCKS_QUEUE`` →
  BRK601/602/603).  Restricting to ``while`` bodies is what makes
  shutdown paths legal: a bounded drain *after* the loop exits may
  sleep; the steady-state cycle may not.
* direct (chain-0) blocking calls inside the loop are reported only
  when BRK301 would not already catch them (no ``select`` in the same
  function) — one finding per defect, owned by the most precise rule.

Noise control: one finding per (rule, terminal blocking function),
keeping the pump with the shortest call chain — fixing the terminal
fixes every chain through it, so reporting each would be pure noise.
The message renders the chain so the finding is actionable without
running ``--graph``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.callgraph import FunctionInfo
from repro.lint.checkers.loop_discipline import SCOPE_SUFFIXES
from repro.lint.effects import (
    BLOCKING_EFFECTS,
    PROPAGATING_KINDS,
    Effect,
    ProjectAnalysis,
    project_analysis,
)
from repro.lint.engine import Checker, Finding, SourceTree

__all__ = ["DeepLoopChecker"]

_HINTS = {
    "BRK601": (
        "fold the wait into the pump's select timeout, or make the "
        "helper's retry bounded and non-sleeping (return and let the "
        "next cycle retry)"
    ),
    "BRK602": (
        "give the read a timeout= bound or select-guard it inside the "
        "helper that performs it"
    ),
    "BRK603": "pass timeout= (or block=False) at the .get() and handle Empty",
}


class DeepLoopChecker(Checker):
    name = "deep-loop"
    rules = {
        "BRK601": "pump loop reaches time.sleep through a call chain",
        "BRK602": "pump loop reaches an unguarded blocking read via a call chain",
        "BRK603": "pump loop reaches an unbounded Queue.get() via a call chain",
    }
    explain = {
        "BRK601": (
            "A select-driven pump multiplexes every peer through one "
            "loop; the only sanctioned wait is the select timeout "
            "itself (the paper's 40 ms worst case). BRK301 catches "
            "time.sleep written in the pump function; BRK601 follows "
            "the call graph, so a sleep buried two helpers deep — "
            "e.g. a retry backoff inside a push helper — is flagged "
            "at the pump call site that reaches it, with the chain "
            "printed. Sleeping there stalls acks, heartbeats, and "
            "every other connection for the duration."
        ),
        "BRK602": (
            "Every kernel read a pump reaches must be select-guarded "
            "or timeout-bounded where it happens. A helper that calls "
            ".recv() bare can block on a slow peer, freezing the pump "
            "— readiness was checked (if at all) in a different "
            "function, and the two drift apart under refactoring."
        ),
        "BRK603": (
            "An unbounded Queue.get() reached from a pump waits "
            "forever if the producer stalls or exits; bounded waits "
            "keep the pump's worst-case cycle time provable."
        ),
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        analysis = project_analysis(tree)
        candidates: list[tuple[Finding, str, int]] = []
        for source_file in tree.matching(*SCOPE_SUFFIXES):
            if source_file.tree is None:
                continue
            for info in analysis.graph.functions.values():
                if info.rel_path != source_file.rel_path:
                    continue
                fx = analysis.effects_of(info.qname)
                if not fx.transitive & Effect.RUNS_SELECT:
                    continue
                candidates.extend(
                    self._check_pump(analysis, source_file.rel_path, info)
                )
        yield from _dedupe(candidates)

    def _check_pump(
        self,
        analysis: ProjectAnalysis,
        rel_path: str,
        info: FunctionInfo,
    ) -> list[tuple[Finding, str, int]]:
        loop_lines = _while_body_lines(info.node)
        if not loop_lines:
            return []
        out: list[tuple[Finding, str, int]] = []
        fx = analysis.effects_of(info.qname)
        has_direct_select = bool(fx.local & Effect.RUNS_SELECT)
        pump_name = info.qname.rsplit(".", 1)[-1]

        # chain-0: blocking seed sites written directly in the loop body.
        # BRK301 already owns direct sleeps in functions that also select.
        for site in fx.sites:
            for effect, rule in BLOCKING_EFFECTS.items():
                if not site.effect & effect:
                    continue
                if site.lineno not in loop_lines:
                    continue
                if rule == "BRK601" and has_direct_select:
                    continue  # BRK301's finding, not ours
                if rule in ("BRK602", "BRK603"):
                    continue  # BRK302/303 own direct sites in scoped files
                out.append(
                    (
                        Finding(
                            rule=rule,
                            path=rel_path,
                            line=site.lineno,
                            message=(
                                f"pump '{pump_name}' blocks directly in its "
                                f"loop: {site.detail}"
                            ),
                            hint=_HINTS[rule],
                        ),
                        f"{info.qname}:{site.lineno}",
                        0,
                    )
                )

        # chain-1+: call sites in the loop whose callee reaches a block.
        for edge in analysis.graph.callees(info.qname):
            if edge.kind not in PROPAGATING_KINDS:
                continue
            if edge.lineno not in loop_lines:
                continue
            reach = analysis.outward(edge.callee)
            for effect, rule in BLOCKING_EFFECTS.items():
                if not reach & effect:
                    continue
                chain, site = analysis.describe_chain(edge.callee, effect)
                terminal = site.detail if site else effect.describe()
                where = (
                    f" ({terminal} at "
                    f"{_site_location(analysis, edge.callee, effect)})"
                    if site
                    else ""
                )
                callee_name = edge.callee.rsplit(".", 1)[-1]
                full_chain = (
                    callee_name if chain in ("", "(local)") else f"{callee_name} -> {chain}"
                )
                terminal_key = _terminal_qname(analysis, edge.callee, effect)
                out.append(
                    (
                        Finding(
                            rule=rule,
                            path=rel_path,
                            line=edge.lineno,
                            message=(
                                f"pump '{pump_name}' reaches a blocking call "
                                f"through {full_chain}{where}"
                            ),
                            hint=_HINTS[rule],
                        ),
                        terminal_key,
                        1 + len(chain.split(" -> ")) if chain not in ("", "(local)") else 1,
                    )
                )
        return out


def _while_body_lines(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """Line numbers inside any ``while`` body of *func* (own scope only)."""
    lines: set[int] = set()
    stack: list[tuple[ast.AST, bool]] = [(n, False) for n in func.body]
    while stack:
        node, in_loop = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if in_loop and hasattr(node, "lineno"):
            lines.add(node.lineno)
        entering = in_loop or isinstance(node, ast.While)
        for child in ast.iter_child_nodes(node):
            stack.append((child, entering))
    return lines


def _terminal_qname(
    analysis: ProjectAnalysis, start: str, effect: Effect
) -> str:
    chain = analysis.chain_to(start, effect)
    if chain:
        return chain[-1][1]
    return start


def _site_location(
    analysis: ProjectAnalysis, start: str, effect: Effect
) -> str:
    terminal = _terminal_qname(analysis, start, effect)
    info = analysis.graph.functions.get(terminal)
    site = analysis.effects_of(terminal).site_for(effect)
    if info is None or site is None:
        return terminal
    return f"{info.rel_path}:{site.lineno}"


def _dedupe(
    candidates: list[tuple[Finding, str, int]]
) -> list[Finding]:
    """One finding per (rule, terminal blocking function), shortest chain."""
    best: dict[tuple[str, str], tuple[int, Finding]] = {}
    for finding, terminal_key, depth in candidates:
        key = (finding.rule, terminal_key)
        kept = best.get(key)
        if kept is None or depth < kept[0] or (
            depth == kept[0]
            and (finding.path, finding.line) < (kept[1].path, kept[1].line)
        ):
            best[key] = (depth, finding)
    return sorted(
        (f for _, f in best.values()),
        key=lambda f: (f.path, f.line, f.rule),
    )
