"""BRK7xx — durability ordering: fsync+checkpoint dominate ack release.

PR 8's whole guarantee is one ordering: deliver → fsync → checkpoint →
*then* ack.  An EXS drops records from its outbox the moment an ack
arrives, so an ack released before the covering ``sync`` turns a crash
into silent data loss.  The ordering lives in three functions today and
every refactor since PR 8 has had to re-derive it by hand; this family
checks it from the source.

Scope: functions in the server-tier modules (``runtime/ism_proc.py``,
``runtime/shard.py``, ``runtime/relay_proc.py``) that reference
``durable_sink`` — the durable path by definition (the shard workers,
which stage acks into the dispatcher-committed redo ring instead, are
deliberately out of scope: their ordering is the commit protocol's job).

* **BRK701** — an ack-release call site not preceded (in statement
  order) by a call carrying ``FSYNCS``.  Release sites are: ack-frame
  constructions (``protocol.Ack``/``AckBundle``/``ack_record``), calls
  to the :class:`~repro.core.ackgate.AckGate` release primitives
  (``commit``/``take_dirty``), and calls to ack-dedicated helpers
  (transitively releasing functions whose name mentions ``ack``).  A
  callee that *internally* carries both ``FSYNCS`` and ``CHECKPOINTS``
  (``_flush_durable_acks``) orders itself and is exempt, as is a site
  inside an explicit ``durable_sink is None`` branch (the non-durable
  path).  Known limit, by design: a transitive release buried in a
  helper whose name never mentions acks is invisible here — the
  non-durable pump path releases acks through the same machinery, and
  only runtime mode checks separate the two.
* **BRK702** — a resume reply (``HelloReply``/``hello_reply_record``)
  built in a function that also reads ``.acked(...)``: resume must
  quote the *committed* watermark; quoting the acked one re-promises
  records a crash may still lose.
* **BRK703** — bytes drained from a shard *output* ring flowing
  straight into delivery (``_deliver``/``push``/``deliver_many``)
  without passing through commit staging: the output ring is a redo
  log, and reading past the commit watermark un-does exactly-once.
* **BRK704** — a ``try`` whose body syncs but whose handler falls
  through (no ``return``/``raise``/``continue``/``break``) while a
  release site follows: the failure path must divert before acks flow.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.callgraph import FunctionInfo
from repro.lint.effects import (
    PROPAGATING_KINDS,
    Effect,
    ProjectAnalysis,
    project_analysis,
)
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["DurabilityChecker"]

#: Files whose functions are under durability ordering.
SCOPE_SUFFIXES = (
    "src/repro/runtime/ism_proc.py",
    "src/repro/runtime/shard.py",
    "src/repro/runtime/relay_proc.py",
)

_DELIVERY_SINKS = {"_deliver", "push", "push_many", "deliver_many"}
_FSYNC_BOTH = Effect.FSYNCS | Effect.CHECKPOINTS


def _own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _references_durable_sink(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == "durable_sink":
            return True
        if isinstance(node, ast.Name) and node.id == "durable_sink":
            return True
    return False


def _non_durable_ranges(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[int, int]]:
    """Line ranges provably on the non-durable path.

    ``if <...durable_sink...> is None:`` exempts the body;
    ``... is not None:`` exempts the orelse.
    """
    ranges: list[tuple[int, int]] = []

    def sink_none_test(test: ast.expr) -> str | None:
        for node in ast.walk(test):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            left = dotted_name(node.left) or ""
            comparator = node.comparators[0]
            is_none = (
                isinstance(comparator, ast.Constant)
                and comparator.value is None
            )
            if not is_none or not left.endswith("durable_sink"):
                continue
            if isinstance(node.ops[0], ast.Is):
                return "body"
            if isinstance(node.ops[0], ast.IsNot):
                return "orelse"
        return None

    for node in _own_nodes(func):
        if not isinstance(node, ast.If):
            continue
        which = sink_none_test(node.test)
        if which is None:
            continue
        stmts = node.body if which == "body" else node.orelse
        if stmts:
            ranges.append(
                (stmts[0].lineno, stmts[-1].end_lineno or stmts[-1].lineno)
            )
    return ranges


def _in_ranges(lineno: int, ranges: list[tuple[int, int]]) -> bool:
    return any(start <= lineno <= end for start, end in ranges)


class DurabilityChecker(Checker):
    name = "durability"
    rules = {
        "BRK701": "ack release on the durable path not dominated by fsync+checkpoint",
        "BRK702": "resume reply quotes the acked watermark instead of the committed one",
        "BRK703": "output-ring drain flows to delivery without commit staging",
        "BRK704": "sync-failure handler falls through to a later ack release",
    }
    explain = {
        "BRK701": (
            "deliver -> fsync -> checkpoint -> ack is the durable "
            "pipeline's entire crash-safety argument: an EXS drops "
            "outbox entries on ack, so an ack whose records are not "
            "yet on stable storage converts a crash into silent loss. "
            "The checker requires every ack-release call site in a "
            "durable_sink-referencing function to be preceded by a "
            "call whose inferred effects include FSYNCS — sites under "
            "an explicit 'durable_sink is None' branch (the "
            "non-durable path) and callees that carry the full "
            "fsync+checkpoint+release sequence internally are exempt."
        ),
        "BRK702": (
            "On resume, the server tells the EXS where to restart via "
            "HelloReply.last_seq. AckGate keeps two watermarks: acked "
            "(released by the sorter) and committed (covered by the "
            "last sync/commit). Quoting acked re-promises records "
            "that a crash between ack-advance and commit would lose; "
            "resume must always quote committed. The shard worker's "
            "_on_hello comment documents the same rule."
        ),
        "BRK703": (
            "The shard output ring is a redo log: the dispatcher "
            "replays it after a worker crash, and everything between "
            "the last commit record and the head is provisional. "
            "Draining it straight into _deliver()/merger.push() "
            "makes provisional records visible downstream, breaking "
            "exactly-once under shard restart — drains must land in "
            "commit staging (_ingest_items) and only the committed "
            "prefix may be released."
        ),
        "BRK704": (
            "When durable_sink.sync() raises, nothing it was meant to "
            "cover may be acked afterwards: the handler must return, "
            "raise, or continue to the next cycle (where the dirty "
            "set retries). A handler that just counts the error and "
            "falls through lets the function reach its ack-release "
            "sites with the sync not actually performed."
        ),
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        analysis = project_analysis(tree)
        for source_file in tree.matching(*SCOPE_SUFFIXES):
            if source_file.tree is None:
                continue
            imports = ImportMap(source_file.tree)
            for info in analysis.graph.functions.values():
                if info.rel_path != source_file.rel_path:
                    continue
                yield from self._check_ordering(analysis, source_file, info)
                yield from self._check_resume(source_file, imports, info)
                yield from self._check_ring_drain(source_file, info)

    # -- BRK701 / BRK704 ----------------------------------------------

    def _check_ordering(
        self,
        analysis: ProjectAnalysis,
        source_file: SourceFile,
        info: FunctionInfo,
    ) -> Iterator[Finding]:
        if not _references_durable_sink(info.node):
            return
        exempt_ranges = _non_durable_ranges(info.node)
        fx = analysis.effects_of(info.qname)

        sync_lines: list[int] = [
            site.lineno for site in fx.sites if site.effect & Effect.FSYNCS
        ]
        release_sites: list[tuple[int, str]] = [
            (site.lineno, site.detail)
            for site in fx.sites
            if site.effect & Effect.RELEASES_ACKS
        ]
        for edge in analysis.graph.callees(info.qname):
            if edge.kind not in PROPAGATING_KINDS:
                continue
            reach = analysis.outward(edge.callee)
            callee_name = edge.callee.rsplit(".", 1)[-1]
            if reach & Effect.FSYNCS:
                sync_lines.append(edge.lineno)
            if not reach & Effect.RELEASES_ACKS:
                continue
            if reach & _FSYNC_BOTH == _FSYNC_BOTH:
                continue  # internally ordered (e.g. _flush_durable_acks)
            callee_fx = analysis.effects_of(edge.callee)
            is_primitive = bool(callee_fx.local & Effect.RELEASES_ACKS)
            is_ack_helper = "ack" in callee_name.lower()
            if is_primitive or is_ack_helper:
                release_sites.append((edge.lineno, f"{callee_name}()"))

        name = info.qname.rsplit(".", 1)[-1]
        for lineno, detail in sorted(set(release_sites)):
            if _in_ranges(lineno, exempt_ranges):
                continue
            if any(sync < lineno for sync in sync_lines):
                continue
            yield Finding(
                rule="BRK701",
                path=source_file.rel_path,
                line=lineno,
                message=(
                    f"ack release ({detail}) in durable-path '{name}' is "
                    "not preceded by an fsync+checkpoint call"
                ),
                hint=(
                    "sync the covering watermarks first "
                    "(durable_sink.sync(...) / _flush_durable_acks "
                    "pattern); acks must never outrun the log"
                ),
            )

        # BRK704: sync in a try body, handler falls through, release after.
        later_release = [
            lineno
            for lineno, _ in release_sites
            if not _in_ranges(lineno, exempt_ranges)
        ]
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Try):
                continue
            body_end = node.body[-1].end_lineno or node.body[-1].lineno
            body_range = (node.body[0].lineno, body_end)
            if not any(
                body_range[0] <= sync <= body_range[1] for sync in sync_lines
            ):
                continue
            for handler in node.handlers:
                if not handler.body:
                    continue
                last = handler.body[-1]
                if isinstance(
                    last, (ast.Return, ast.Raise, ast.Continue, ast.Break)
                ):
                    continue
                trailing = [ln for ln in later_release if ln > body_end]
                if not trailing:
                    continue
                yield Finding(
                    rule="BRK704",
                    path=source_file.rel_path,
                    line=handler.lineno,
                    message=(
                        f"sync-failure handler in '{name}' falls through; an "
                        f"ack release follows at line {trailing[0]}"
                    ),
                    hint=(
                        "return/continue out of the cycle on sync failure — "
                        "the gate's dirty set makes the retry free"
                    ),
                )

    # -- BRK702 --------------------------------------------------------

    def _check_resume(
        self,
        source_file: SourceFile,
        imports: ImportMap,
        info: FunctionInfo,
    ) -> Iterator[Finding]:
        builds_reply = False
        acked_reads: list[int] = []
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.resolve(node.func) or ""
            leaf = (dotted_name(node.func) or "").rsplit(".", 1)[-1]
            if (
                qual.endswith("protocol.HelloReply")
                or leaf == "hello_reply_record"
            ):
                builds_reply = True
            elif leaf == "acked":
                acked_reads.append(node.lineno)
        if builds_reply and acked_reads:
            name = info.qname.rsplit(".", 1)[-1]
            yield Finding(
                rule="BRK702",
                path=source_file.rel_path,
                line=acked_reads[0],
                message=(
                    f"resume reply in '{name}' reads .acked(...): resume "
                    "must quote the committed watermark"
                ),
                hint=(
                    "use .committed(...) — acked-but-uncommitted batches "
                    "must stay in the EXS outbox across a crash"
                ),
            )

    # -- BRK703 --------------------------------------------------------

    def _check_ring_drain(
        self, source_file: SourceFile, info: FunctionInfo
    ) -> Iterator[Finding]:
        drained_names: set[str] = set()
        findings: list[Finding] = []
        name = info.qname.rsplit(".", 1)[-1]

        def is_output_drain(call: ast.Call) -> bool:
            chain = dotted_name(call.func) or ""
            if not chain.endswith(".drain_bytes"):
                return False
            tokens = set(chain.replace("_", ".").split("."))
            return bool(tokens & {"out", "output"})

        def flag(lineno: int, sink: str) -> None:
            findings.append(
                Finding(
                    rule="BRK703",
                    path=source_file.rel_path,
                    line=lineno,
                    message=(
                        f"'{name}' feeds output-ring drain_bytes() into "
                        f"{sink}() without commit staging"
                    ),
                    hint=(
                        "stage drained items (_ingest_items) and deliver "
                        "only the commit-released prefix — the output ring "
                        "is a redo log, not a stream"
                    ),
                )
            )

        # statement order matters: walk in source order
        nodes = sorted(
            (n for n in _own_nodes(info.node) if hasattr(n, "lineno")),
            key=lambda n: (n.lineno, getattr(n, "col_offset", 0)),
        )
        for node in nodes:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if is_output_drain(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            drained_names.add(target.id)
            elif isinstance(node, ast.Call):
                leaf = (dotted_name(node.func) or "").rsplit(".", 1)[-1]
                if leaf not in _DELIVERY_SINKS:
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in drained_names:
                        flag(node.lineno, leaf)
                    elif isinstance(arg, ast.Call) and is_output_drain(arg):
                        flag(node.lineno, leaf)
        yield from findings
