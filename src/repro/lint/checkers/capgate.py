"""BRK8xx — capability gating: negotiated-cap checks dominate extensions.

The wire protocol grows by negotiated capability bits
(``wire/protocol.py``: ``CAP_COMPRESS``, ``CAP_ACK_BUNDLE``,
``CAP_SEQ_RANGE``, ``CAP_STEERING``): a peer that did not advertise the
bit receives the legacy encoding, byte-identical to the seed format.
Every send site of an extension must therefore be *control-dependent* on
the matching cap check — PRs 7 and 9 each shipped one of these guards,
and PR 10's first full lint run found one missing (the relay coalescing
``first_seq`` toward non-``CAP_SEQ_RANGE`` upstreams).

A call is considered guarded for cap ``C`` when the enclosing function
tests ``C`` in a way that can steer the call:

* an ancestor ``if``/``while``/ternary whose test mentions ``C``
  (directly or through a **cap-tainted** variable — one assigned from an
  expression mentioning ``C``, e.g. ``coalesce_ok = bool(caps &
  protocol.CAP_SEQ_RANGE)``), or
* an *earlier* ``if`` whose test mentions ``C`` and whose body ends in
  ``return``/``raise``/``continue`` (the early-bail guard shape of
  ``_maybe_compress``), or
* for BRK804, a ``first_seq=`` value that is itself a ternary whose test
  mentions the cap.

Branch polarity is deliberately not modelled: once a function tests the
cap at all, inverting the test is a logic bug this AST-level checker
cannot judge; what it catches is the real failure mode — the send site
written with *no* awareness that the capability is optional.

Scope: ``src/repro/runtime/`` (the tiers that talk to negotiated peers);
``wire/protocol.py`` itself and the sim models are exempt — codecs and
models construct these frames without owning a negotiation.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import ImportMap, dotted_name, walk_functions
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["CapGateChecker"]

SCOPE_PREFIXES = ("src/repro/runtime/",)

_CAP_PREFIX = "repro.wire.protocol.CAP_"

#: rule → (cap constant leaf, what the rule polices)
_RULES = {
    "BRK801": ("CAP_COMPRESS", "compress_frame"),
    "BRK802": ("CAP_ACK_BUNDLE", "AckBundle"),
    "BRK803": ("CAP_STEERING", "SetFilter send"),
    "BRK804": ("CAP_SEQ_RANGE", "first_seq batch encoding"),
}

_BAIL = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionGuards:
    """Which CAP_* constants each test expression in a function mentions."""

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: ImportMap,
    ) -> None:
        self._imports = imports
        self._tainted: dict[str, set[str]] = {}  # var name → caps
        # Two passes: taint assignments first (a guard may test a var
        # assigned above it), then collect test expressions.
        for node in _own_nodes(func):
            if isinstance(node, ast.Assign):
                caps = self._caps_in(node.value)
                if caps:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self._tainted.setdefault(target.id, set()).update(
                                caps
                            )
        #: (test-mentioned caps, node) for ancestor lookup
        self.guard_tests: list[tuple[set[str], ast.AST, bool]] = []
        for node in _own_nodes(func):
            test: ast.expr | None = None
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                test = node.test
            if test is None:
                continue
            caps = self._caps_in(test)
            if not caps:
                continue
            bails = isinstance(node, ast.If) and bool(node.body) and isinstance(
                node.body[-1], _BAIL
            )
            self.guard_tests.append((caps, node, bails))

    def _caps_in(self, expr: ast.expr) -> set[str]:
        caps: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, (ast.Name, ast.Attribute)):
                qual = self._imports.resolve(node) or ""
                if qual.startswith(_CAP_PREFIX):
                    caps.add(qual[len("repro.wire.protocol."):])
                elif isinstance(node, ast.Name) and node.id in self._tainted:
                    caps.update(self._tainted[node.id])
        return caps

    def guards(
        self, call: ast.Call, cap: str, allow_bail: bool = True
    ) -> bool:
        """Is *call* control-dependent on a test mentioning *cap*?

        ``allow_bail=False`` restricts to enclosing tests: BRK804 uses
        it because an earlier cap-mentioning fast-path ``return`` can
        fall through in *both* polarities (the original relay bug did
        exactly that — computed ``coalesce_ok``, bailed on an unrelated
        fast path, then encoded ``first_seq`` unconditionally).
        """
        for caps, node, bails in self.guard_tests:
            if cap not in caps:
                continue
            start = node.lineno
            end = getattr(node, "end_lineno", None) or start
            if start <= call.lineno <= end:
                return True  # ancestor if/while/ternary
            if allow_bail and bails and end < call.lineno:
                return True  # earlier early-bail guard
        return False

    def value_tests(self, value: ast.expr, cap: str) -> bool:
        """Is *value* a ternary whose test mentions *cap*?"""
        return isinstance(value, ast.IfExp) and cap in self._caps_in(
            value.test
        )


class CapGateChecker(Checker):
    name = "cap-gate"
    rules = {
        "BRK801": "compress_frame() not gated by a CAP_COMPRESS check",
        "BRK802": "AckBundle construction not gated by a CAP_ACK_BUNDLE check",
        "BRK803": "SetFilter send in a function that never tests CAP_STEERING",
        "BRK804": "first_seq (FLAG_SEQ_RANGE) encode not gated by CAP_SEQ_RANGE",
    }
    explain = {
        "BRK801": (
            "compress_frame wraps a payload in the 0xB0C3 compressed "
            "envelope; a peer without CAP_COMPRESS decodes it as "
            "garbage (or drops the frame). Every call must sit under "
            "a CAP_COMPRESS test for the destination peer, like "
            "_maybe_compress's early-return guard."
        ),
        "BRK802": (
            "AckBundle is a post-seed control frame; legacy peers "
            "only understand per-source Ack frames. Constructing one "
            "outside an all-peers-advertise-CAP_ACK_BUNDLE check "
            "drops acks on mixed fleets — the PR 7 relay guard shape "
            "(all(caps & CAP_ACK_BUNDLE ...)) is the reference."
        ),
        "BRK803": (
            "Full SetFilter specs (field tests, sampling, epochs) "
            "ride CAP_STEERING; a legacy EXS understands only the "
            "event-type mask. Senders must consult CAP_STEERING and "
            "downgrade (SetFilter.downgraded()) when absent, or the "
            "peer silently ignores the steering it was sent."
        ),
        "BRK804": (
            "first_seq sets FLAG_SEQ_RANGE, the coalesced-batch wire "
            "extension, which protocol.py documents as CAP_SEQ_RANGE-"
            "only: a legacy ISM treats the extension word as record "
            "bytes and mis-frames the batch. The first full run of "
            "this rule caught the relay's _emit_run coalescing "
            "unconditionally — the fix ships in the same PR as the "
            "rule."
        ),
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        for source_file in tree.under(*SCOPE_PREFIXES):
            if source_file.tree is None:
                continue
            imports = ImportMap(source_file.tree)
            for func in walk_functions(source_file.tree):
                yield from self._check_function(source_file, imports, func)

    def _check_function(
        self,
        source_file: SourceFile,
        imports: ImportMap,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        guards = _FunctionGuards(func, imports)
        setfilter_names = _setfilter_locals(func, imports)
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            qual = imports.resolve(node.func) or ""
            leaf = (dotted_name(node.func) or "").rsplit(".", 1)[-1]

            if qual.endswith("protocol.compress_frame"):
                if not guards.guards(node, "CAP_COMPRESS"):
                    yield self._finding(
                        "BRK801", source_file, node, func.name,
                        "compress_frame() call",
                        "test the peer's CAP_COMPRESS first (see "
                        "_maybe_compress for the guard shape)",
                    )
            elif qual.endswith("protocol.AckBundle"):
                if not guards.guards(node, "CAP_ACK_BUNDLE"):
                    yield self._finding(
                        "BRK802", source_file, node, func.name,
                        "AckBundle construction",
                        "bundle only when every destination source "
                        "advertised CAP_ACK_BUNDLE; send per-source Acks "
                        "otherwise",
                    )
            elif leaf in ("send", "send_many") and node.args:
                if _sends_setfilter(node, imports, setfilter_names):
                    if not guards.guard_tests or not any(
                        "CAP_STEERING" in caps
                        for caps, _, _ in guards.guard_tests
                    ):
                        yield self._finding(
                            "BRK803", source_file, node, func.name,
                            "SetFilter send",
                            "consult the peer's CAP_STEERING and send "
                            "msg.downgraded() to legacy peers",
                        )
            elif qual.endswith("protocol.encode_batch_records"):
                first_seq = next(
                    (
                        kw.value
                        for kw in node.keywords
                        if kw.arg == "first_seq"
                    ),
                    None,
                )
                if first_seq is None or (
                    isinstance(first_seq, ast.Constant)
                    and first_seq.value is None
                ):
                    continue
                if guards.guards(node, "CAP_SEQ_RANGE", allow_bail=False):
                    continue
                if guards.value_tests(first_seq, "CAP_SEQ_RANGE"):
                    continue
                yield self._finding(
                    "BRK804", source_file, node, func.name,
                    "first_seq= batch encode",
                    "emit first_seq only when the upstream advertised "
                    "CAP_SEQ_RANGE (ternary on the negotiated caps)",
                )

    @staticmethod
    def _finding(
        rule: str,
        source_file: SourceFile,
        node: ast.Call,
        func_name: str,
        what: str,
        hint: str,
    ) -> Finding:
        cap, _ = _RULES[rule]
        return Finding(
            rule=rule,
            path=source_file.rel_path,
            line=node.lineno,
            message=(
                f"{what} in '{func_name}' is not control-dependent on a "
                f"{cap} check"
            ),
            hint=hint,
        )


def _setfilter_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef, imports: ImportMap
) -> set[str]:
    """Names in *func* that (statically) hold a SetFilter.

    Sources: parameters annotated ``protocol.SetFilter``, assignments
    from ``protocol.SetFilter...`` constructors/classmethods, and
    assignments from ``<setfilter>.downgraded()`` / ``.desired_filter``.
    """
    names: set[str] = set()
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        ann = arg.annotation
        if ann is None:
            continue
        text = dotted_name(ann) or ""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            text = ann.value
        if "SetFilter" in text:
            names.add(arg.arg)
    for node in _own_nodes(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_filter = False
        if isinstance(value, ast.Call):
            qual = imports.resolve(value.func) or ""
            chain = dotted_name(value.func) or ""
            if "SetFilter" in qual or chain.endswith(".downgraded"):
                is_filter = True
            head = chain.split(".", 1)[0]
            if head in names:
                is_filter = is_filter or chain.endswith(".downgraded")
        elif isinstance(value, ast.Attribute):
            if value.attr == "desired_filter":
                is_filter = True
        if is_filter:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _sends_setfilter(
    call: ast.Call, imports: ImportMap, setfilter_names: set[str]
) -> bool:
    arg = call.args[0]
    if isinstance(arg, ast.Name):
        return arg.id in setfilter_names
    if isinstance(arg, ast.Call):
        qual = imports.resolve(arg.func) or ""
        chain = dotted_name(arg.func) or ""
        return "SetFilter" in qual or chain.endswith(".downgraded")
    if isinstance(arg, ast.Attribute):
        return arg.attr == "desired_filter"
    return False
