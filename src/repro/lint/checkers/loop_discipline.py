"""BRK3xx — select-loop pump discipline: pumps never block uncontrolled.

The runtime's pump loops (``runtime/*_proc.py``, ``wire/tcp.py``) are
``select``-driven: the *only* place a pump is allowed to wait is the
bounded ``select`` timeout itself (the paper's 40 ms worst case).  Any
other blocking call inside a pump function stalls every connection the
loop multiplexes.  Concretely, within the scoped files:

* **BRK301** — ``time.sleep`` in a function that also calls
  ``select.select``: sleeping competes with the select timeout and adds
  unconditional latency to every peer.
* **BRK302** — a blocking socket primitive (``.recv``/``.recv_into``/
  ``.accept``) in a function with **no** ``select.select`` call: the
  discipline is that every kernel read is select-guarded *in the same
  function*, so readiness and the read can never drift apart.
* **BRK303** — an unbounded ``Queue.get()`` (no ``timeout=``, not
  ``block=False``): a producer hiccup freezes the pump forever.  The
  zero-argument ``.get()`` spelling is unambiguous — ``dict.get`` always
  takes at least a key.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import ImportMap, dotted_name, walk_functions
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["LoopDisciplineChecker"]

#: Repo-relative suffixes of the files under pump discipline.
SCOPE_SUFFIXES = (
    "src/repro/runtime/exs_proc.py",
    "src/repro/runtime/ism_proc.py",
    "src/repro/runtime/relay_proc.py",
    "src/repro/runtime/shard.py",
    "src/repro/wire/tcp.py",
)

_SOCKET_BLOCKING = {"recv", "recv_into", "recvfrom", "accept", "recvmsg"}


def _select_lines(func: ast.AST, imports: ImportMap) -> list[int]:
    """Lines inside *func* that call ``select.select`` (or ``poll``)."""
    out = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            qual = imports.resolve(node.func) or ""
            if qual in ("select.select", "select.poll", "selectors.select"):
                out.append(node.lineno)
    return out


def _own_statements(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk *func* without descending into nested function definitions."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


class LoopDisciplineChecker(Checker):
    name = "loop-discipline"
    rules = {
        "BRK301": "time.sleep inside a select-driven pump function",
        "BRK302": "blocking socket read/accept with no select guard in scope",
        "BRK303": "unbounded Queue.get() inside a pump-scoped file",
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        for source_file in tree:
            if source_file.tree is None:
                continue
            if not any(source_file.rel_path.endswith(s) for s in SCOPE_SUFFIXES):
                continue
            yield from self._check_file(source_file)

    def _check_file(self, source_file: SourceFile) -> Iterator[Finding]:
        assert source_file.tree is not None  # guarded by check()
        imports = ImportMap(source_file.tree)
        for func in walk_functions(source_file.tree):
            has_select = bool(_select_lines(func, imports))
            for node in _own_statements(func):
                if not isinstance(node, ast.Call):
                    continue
                qual = imports.resolve(node.func) or ""
                attr = dotted_name(node.func) or ""
                leaf = attr.rsplit(".", 1)[-1]
                if qual == "time.sleep" and has_select:
                    yield Finding(
                        rule="BRK301",
                        path=source_file.rel_path,
                        line=node.lineno,
                        message=(
                            f"time.sleep inside select-driven '{func.name}' "
                            "adds unconditional latency to every multiplexed peer"
                        ),
                        hint="fold the wait into the select timeout argument",
                    )
                elif (
                    leaf in _SOCKET_BLOCKING
                    and "." in attr
                    and not has_select
                    and not any(k.arg == "timeout" for k in node.keywords)
                ):
                    # An explicit timeout= means the wait is bounded by
                    # construction (the MessageConnection/Listener wrappers
                    # run their own select under that bound).
                    yield Finding(
                        rule="BRK302",
                        path=source_file.rel_path,
                        line=node.lineno,
                        message=(
                            f".{leaf}() in '{func.name}' has no select guard "
                            "in the same function; a spurious wakeup or slow "
                            "peer blocks the pump"
                        ),
                        hint=(
                            "select on the fd with a bounded timeout in this "
                            "function before reading, or accept an "
                            "assume_ready flag from a caller that did"
                        ),
                    )
                elif leaf == "get" and "." in attr and not node.args:
                    kw = {k.arg for k in node.keywords}
                    blocking = "timeout" not in kw and not any(
                        k.arg == "block"
                        and isinstance(k.value, ast.Constant)
                        and k.value.value is False
                        for k in node.keywords
                    )
                    if blocking:
                        yield Finding(
                            rule="BRK303",
                            path=source_file.rel_path,
                            line=node.lineno,
                            message=(
                                f"unbounded .get() in '{func.name}' waits "
                                "forever if the producer stalls"
                            ),
                            hint="pass timeout= (or block=False) and handle Empty",
                        )
