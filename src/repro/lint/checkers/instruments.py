"""BRK5xx — instrument registration: every obs instrument is reachable.

The self-observability layer only earns its keep if every instrument a
stage constructs actually shows up in a :class:`~repro.obs.metrics.
MetricsRegistry` snapshot.  Two decidable contracts:

* **BRK501** — a ``Counter``/``Gauge``/``FixedHistogram`` constructed
  directly (outside ``repro/obs`` itself) must have **registration
  evidence** somewhere in the tree: the attribute it is assigned to is
  either passed to ``adopt_counter(...)`` or read inside a
  ``gauge_fn(...)`` closure (the ``collect.wire_*`` idiom).  An
  instrument nobody wires is dark data.
* **BRK502** — a statically-known metric name must be constructed with a
  **string-literal** first argument (auditable namespace), and one name
  must not be claimed by two different instrument kinds (a ``counter``
  and a ``gauge_fn`` fighting over ``ism.foo`` would make merged
  snapshots silently additive-vs-sampled nonsense).

Instruments obtained *from* a registry (``registry.counter(...)``,
``.gauge``/``.histogram``/``.timer``) are registered by construction and
only participate in the name-collision check.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.astutil import dotted_name
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["InstrumentRegistrationChecker"]

_DIRECT_CTORS = {"Counter", "Gauge", "FixedHistogram"}
_REGISTRY_FACTORIES = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "timer": "histogram",     # a timer wraps a histogram of the same name
    "gauge_fn": "gauge",
}
#: Files whose constructions are definitionally fine (the obs layer
#: itself, where instruments are built *by* the registry).
_EXEMPT_PREFIXES = ("src/repro/obs/", "src/repro/lint/")


def _literal_name(call: ast.Call) -> str | None:
    """The instrument name if it is a plain string literal or an f-string
    whose placeholders we can't fold (returns None for the latter)."""
    if call.args:
        arg = call.args[0]
    else:
        named = [k for k in call.keywords if k.arg == "name"]
        if not named:
            return None
        arg = named[0].value
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


def _is_name_literalish(call: ast.Call) -> bool:
    """Literal, f-string, or name-variable first argument all count as an
    intentional name; only a *missing* name argument is flagged."""
    return bool(call.args) or any(k.arg == "name" for k in call.keywords)


class InstrumentRegistrationChecker(Checker):
    name = "instrument-registration"
    rules = {
        "BRK501": "directly constructed instrument never registered on a registry",
        "BRK502": "metric name collides across instrument kinds or is not a literal",
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        findings: list[Finding] = []
        # Pass 1 — registration evidence: attribute names that reach a
        # registry anywhere in the tree.
        adopted_attrs: set[str] = set()       # adopt_counter(x.attr)
        gauge_read_attrs: set[str] = set()    # attrs read inside gauge_fn lambdas
        for source_file in tree:
            if source_file.tree is None:
                continue
            for node in ast.walk(source_file.tree):
                if not isinstance(node, ast.Call):
                    continue
                leaf = (dotted_name(node.func) or "").rsplit(".", 1)[-1]
                if leaf == "adopt_counter":
                    for arg in node.args:
                        if isinstance(arg, ast.Attribute):
                            adopted_attrs.add(arg.attr)
                elif leaf == "gauge_fn":
                    for arg in [*node.args[1:], *[k.value for k in node.keywords]]:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Attribute):
                                gauge_read_attrs.add(sub.attr)
        evidence = adopted_attrs | gauge_read_attrs

        # Pass 2 — direct constructions + name bookkeeping.
        #: name → (kind, rel_path, line) of first claim
        claims: dict[str, tuple[str, str, int]] = {}
        for source_file in tree:
            if source_file.tree is None:
                continue
            exempt = source_file.rel_path.startswith(_EXEMPT_PREFIXES)
            for node in ast.walk(source_file.tree):
                if not isinstance(node, ast.Call):
                    continue
                func_name = dotted_name(node.func) or ""
                leaf = func_name.rsplit(".", 1)[-1]
                if leaf in _DIRECT_CTORS and not exempt:
                    findings.extend(
                        self._check_direct(source_file, node, leaf, evidence)
                    )
                    kind = leaf.lower().replace("fixedhistogram", "histogram")
                elif leaf in _REGISTRY_FACTORIES and "." in func_name:
                    kind = _REGISTRY_FACTORIES[leaf]
                else:
                    continue
                name = _literal_name(node)
                if name is None:
                    continue
                prior = claims.get(name)
                if prior is None:
                    claims[name] = (kind, source_file.rel_path, node.lineno)
                elif prior[0] != kind:
                    findings.append(
                        Finding(
                            rule="BRK502",
                            path=source_file.rel_path,
                            line=node.lineno,
                            message=(
                                f"metric {name!r} is a {kind} here but a "
                                f"{prior[0]} at {prior[1]}:{prior[2]}"
                            ),
                            hint="one name, one instrument kind — rename one side",
                        )
                    )
        return findings

    def _check_direct(
        self,
        source_file: SourceFile,
        node: ast.Call,
        ctor: str,
        evidence: set[str],
    ) -> Iterable[Finding]:
        if not _is_name_literalish(node):
            yield Finding(
                rule="BRK502",
                path=source_file.rel_path,
                line=node.lineno,
                message=f"{ctor} constructed without a name argument",
                hint="instruments need a dotted literal name (e.g. 'ism.idle_drops')",
            )
            return
        # Find the attribute the instrument lands on: self.X = Counter(...)
        parent_attr = self._assigned_attr(source_file, node)
        if parent_attr is None:
            # Not assigned to an attribute (local/expression): nothing can
            # wire it later, so it must be registered at the call site —
            # which only registry factories do.
            yield Finding(
                rule="BRK501",
                path=source_file.rel_path,
                line=node.lineno,
                message=(
                    f"{ctor} is constructed but not stored on an attribute "
                    "any registry wiring could reach"
                ),
                hint=(
                    "create it via registry.counter()/gauge()/histogram(), or "
                    "assign it to an attribute that collect.wire_* / "
                    "adopt_counter registers"
                ),
            )
            return
        if parent_attr not in evidence:
            yield Finding(
                rule="BRK501",
                path=source_file.rel_path,
                line=node.lineno,
                message=(
                    f"{ctor} on attribute '{parent_attr}' has no registration "
                    "evidence (no adopt_counter / gauge_fn reads it anywhere)"
                ),
                hint=(
                    "register it: registry.adopt_counter(obj."
                    f"{parent_attr}) or a collect.wire_* gauge_fn reading it"
                ),
            )

    @staticmethod
    def _assigned_attr(source_file: SourceFile, call: ast.Call) -> str | None:
        """The attribute name a ``x.attr = Ctor(...)`` assignment targets."""
        assert source_file.tree is not None  # guarded by check()
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.Assign) and node.value is call:
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        return target.attr
            elif isinstance(node, ast.AnnAssign) and node.value is call:
                if isinstance(node.target, ast.Attribute):
                    return node.target.attr
        return None
