"""BRK4xx — exception hygiene: no silently swallowed broad excepts.

The delivery-guarantees work fixed a bug class where a broad ``except``
discarded the error entirely (``QueuedConsumer.close`` dropping pending
sink errors).  The contract since then: a handler that catches *broadly*
(bare ``except:``, ``except Exception``, ``except BaseException``) must
leave evidence — re-raise, log, or count the error on something — before
moving on.  Narrow handlers (``except OSError``) are out of scope: they
document exactly which failure is expected and are routinely used for
"peer went away" paths.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.engine import Checker, Finding, SourceFile, SourceTree

__all__ = ["ExceptionHygieneChecker"]

_BROAD = {"Exception", "BaseException"}
_LOGGING_METHODS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
}
#: Call names that count as recording the failure.
_RECORDING_METHODS = _LOGGING_METHODS | {"inc", "observe", "print"}


def _is_broad(handler: ast.ExceptHandler, imports: ImportMap) -> str | None:
    """The broad exception name this handler catches, or None."""
    if handler.type is None:
        return "bare except"
    types: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for node in types:
        qual = imports.resolve(node) or dotted_name(node) or ""
        leaf = qual.rsplit(".", 1)[-1]
        if leaf in _BROAD:
            return leaf
    return None


def _handler_leaves_evidence(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises, logs, or counts the error.

    Accepted evidence, anywhere in the handler body:

    * ``raise`` (re-raise or translate);
    * a call to a logging-shaped method (``.warning()``, ``logger.error()``,
      ``log()``, ``print()``, ...) or to ``.inc()`` / ``.observe()``;
    * a counting write: ``x += n`` or an assignment whose value contains
      an addition (the ``count = strikes.get(k, 0) + 1`` idiom);
    * any use of the bound exception name (``except ... as exc`` where
      ``exc`` is referenced: stored, appended, chained — the error object
      demonstrably went *somewhere*).
    """
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            return True
        if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value is not None:
            if any(
                isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add)
                for sub in ast.walk(node.value)
            ):
                return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func) or ""
            leaf = name.rsplit(".", 1)[-1]
            if leaf in _RECORDING_METHODS or leaf.startswith("log"):
                return True
        if bound and isinstance(node, ast.Name) and node.id == bound:
            if isinstance(node.ctx, ast.Load):
                return True
    return False


class ExceptionHygieneChecker(Checker):
    name = "exception-hygiene"
    rules = {
        "BRK401": "broad except swallows the error without logging or counting",
        "BRK402": "bare except: catches everything, including KeyboardInterrupt",
    }

    def check(self, tree: SourceTree) -> Iterable[Finding]:
        for source_file in tree:
            if source_file.tree is None:
                continue
            yield from self._check_file(source_file)

    def _check_file(self, source_file: SourceFile) -> Iterator[Finding]:
        assert source_file.tree is not None  # guarded by check()
        imports = ImportMap(source_file.tree)
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _is_broad(node, imports)
            if broad is None:
                continue
            if broad == "bare except":
                yield Finding(
                    rule="BRK402",
                    path=source_file.rel_path,
                    line=node.lineno,
                    message="bare 'except:' also catches KeyboardInterrupt/SystemExit",
                    hint="catch Exception (and log or count it), or a narrower type",
                )
                continue
            if _handler_leaves_evidence(node):
                continue
            yield Finding(
                rule="BRK401",
                path=source_file.rel_path,
                line=node.lineno,
                message=(
                    f"'except {broad}' discards the error without logging "
                    "or counting it"
                ),
                hint=(
                    "increment a metrics Counter, log the exception, or "
                    "re-raise; a deliberate swallow needs "
                    "'# brisk-lint: disable=BRK401 (reason)'"
                ),
            )
