"""Effect inference over the call graph: what can a function *reach*?

Each function gets a small lattice of effects (an :class:`Effect` bit
set).  Effects originate at **seeds** — a registry of known stdlib and
project primitives (``time.sleep`` blocks, ``os.fsync`` syncs,
``AckGate.commit`` releases acks, ...) — detected syntactically in each
function body, then propagated caller-ward over the
:class:`~repro.lint.callgraph.CallGraph` to a transitive-closure
fixpoint.  The BRK6xx/7xx/8xx checkers and transitive BRK204 all consume
the same shared :class:`ProjectAnalysis`, built once per tree.

Two refinements keep the lattice honest:

* **barriers** — functions under ``repro.util.timebase`` are the
  project's sanctioned clock interface: they *have* ``READS_CLOCK``
  locally (``--graph`` shows it) but do not propagate it to callers,
  exactly like the determinism checker's sanctioned-reference rule.
* **method fallback seeds** — a call through a duck-typed receiver
  (``self.durable_sink.sync(...)`` — ``durable_sink`` is deliberately
  unannotated) resolves to no tree function, so a short list of
  unambiguous method names carries effects by name.  ``sync`` is safe:
  every ``.sync()`` in this tree is a durability flush.

Local detection mirrors the BRK3xx syntactic rules so the transitive
checkers agree with the direct ones: a ``.recv()`` with ``timeout=`` or
with a ``select`` call in the same function is *not* blocking; a
``.get()`` with ``timeout=``/``block=False`` is bounded.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import IntFlag
from typing import Iterator, Mapping

from repro.lint.astutil import ImportMap, dotted_name
from repro.lint.callgraph import (
    CallEdge,
    CallGraph,
    FunctionInfo,
    build_callgraph,
    module_qname,
)
from repro.lint.engine import SourceTree

__all__ = [
    "Effect",
    "EffectSite",
    "FunctionEffects",
    "ProjectAnalysis",
    "project_analysis",
    "BLOCKING_EFFECTS",
    "PROPAGATING_KINDS",
]


class Effect(IntFlag):
    """One bit per observable effect a function may perform or reach."""

    NONE = 0
    BLOCKS_SLEEP = 1 << 0     #: unconditional time.sleep
    BLOCKS_RECV = 1 << 1      #: socket/pipe read with no select guard or timeout
    BLOCKS_QUEUE = 1 << 2     #: unbounded Queue.get()
    READS_CLOCK = 1 << 3      #: ambient wall-clock read
    READS_ENTROPY = 1 << 4    #: ambient randomness
    FSYNCS = 1 << 5           #: forces data to stable storage
    CHECKPOINTS = 1 << 6      #: writes the ack-frontier checkpoint
    RELEASES_ACKS = 1 << 7    #: emits/commits an ack a peer may act on
    SENDS_MESSAGE = 1 << 8    #: writes a protocol frame to a peer
    RUNS_SELECT = 1 << 9      #: calls select (marks pump-driver functions)

    def describe(self) -> str:
        if self is Effect.NONE:
            return "(none)"
        return "|".join(
            flag.name or "" for flag in Effect if flag and flag in self
        )


#: The effects BRK6xx treats as "blocking", with the rule that owns each.
BLOCKING_EFFECTS: Mapping[Effect, str] = {
    Effect.BLOCKS_SLEEP: "BRK601",
    Effect.BLOCKS_RECV: "BRK602",
    Effect.BLOCKS_QUEUE: "BRK603",
}

# ----------------------------------------------------------------------
# seed registry
# ----------------------------------------------------------------------

#: Fully qualified external callables → effect.
EXTERNAL_SEEDS: Mapping[str, Effect] = {
    "time.sleep": Effect.BLOCKS_SLEEP,
    "os.fsync": Effect.FSYNCS,
    "os.fdatasync": Effect.FSYNCS,
    # ambient clock (mirrors determinism.BANNED)
    "time.time": Effect.READS_CLOCK,
    "time.time_ns": Effect.READS_CLOCK,
    "time.monotonic": Effect.READS_CLOCK,
    "time.monotonic_ns": Effect.READS_CLOCK,
    "time.localtime": Effect.READS_CLOCK,
    "time.gmtime": Effect.READS_CLOCK,
    "datetime.datetime.now": Effect.READS_CLOCK,
    "datetime.datetime.utcnow": Effect.READS_CLOCK,
    "datetime.datetime.today": Effect.READS_CLOCK,
    "datetime.date.today": Effect.READS_CLOCK,
    # ambient entropy
    "os.urandom": Effect.READS_ENTROPY,
    "uuid.uuid1": Effect.READS_ENTROPY,
    "uuid.uuid4": Effect.READS_ENTROPY,
    "secrets.token_bytes": Effect.READS_ENTROPY,
    "secrets.token_hex": Effect.READS_ENTROPY,
    "secrets.randbits": Effect.READS_ENTROPY,
}

_RANDOM_MODULE_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "normalvariate",
    "getrandbits", "randbytes", "seed",
}

_SELECT_CALLS = {"select.select", "select.poll", "selectors.select"}

#: Project functions/constructors seeded by qname **suffix** (so fixture
#: trees that mirror the repo layout inherit the same seeds).
PROJECT_SEEDS: Mapping[str, Effect] = {
    "repro.core.ackgate.AckGate.commit": Effect.RELEASES_ACKS,
    "repro.core.ackgate.AckGate.take_dirty": Effect.RELEASES_ACKS,
    "repro.log.commitlog.CommitLog._write_checkpoint": Effect.CHECKPOINTS,
    "repro.runtime.shard.ack_record": Effect.RELEASES_ACKS,
}

#: Constructing one of these wire messages *is* releasing an ack — the
#: object exists only to be sent.  Matched on the import-resolved qname.
ACK_CONSTRUCTORS = {
    "repro.wire.protocol.Ack",
    "repro.wire.protocol.AckBundle",
}

#: Leaf method names that imply sending a protocol frame to a peer.
_SEND_METHODS = {"send", "send_many", "sendall", "send_raw", "sendmsg"}
_SOCKET_BLOCKING = {"recv", "recv_into", "recvfrom", "accept", "recvmsg"}

#: Method-name fallback seeds for duck-typed receivers (see module doc).
METHOD_FALLBACK_SEEDS: Mapping[str, Effect] = {
    "sync": Effect.FSYNCS | Effect.CHECKPOINTS,
}

#: qname prefixes whose effects are masked toward callers: calling the
#: sanctioned interface scrubs the effect instead of propagating it.
BARRIERS: Mapping[str, Effect] = {
    "repro.util.timebase.": Effect.READS_CLOCK,
}

#: Edge kinds that mean "the callee runs *now*, on this thread".
#: ``callback`` and ``partial`` edges defer execution (a Thread target's
#: blocking loop does not block the function that spawned the thread),
#: so they appear in ``--graph`` output but do not propagate effects.
PROPAGATING_KINDS = frozenset({"call", "method", "instantiate", "unique"})


@dataclass(frozen=True)
class EffectSite:
    """Where a local (seed-level) effect enters a function."""

    effect: Effect
    lineno: int
    detail: str     #: e.g. ``time.sleep`` or ``.recv() without guard``


@dataclass
class FunctionEffects:
    """Local and transitive effects for one function."""

    local: Effect = Effect.NONE
    transitive: Effect = Effect.NONE   #: local | masked union of callees
    sites: list[EffectSite] = field(default_factory=list)

    def site_for(self, effect: Effect) -> EffectSite | None:
        for site in self.sites:
            if site.effect & effect:
                return site
        return None


class ProjectAnalysis:
    """Call graph + per-function effects, shared by every checker."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.effects: dict[str, FunctionEffects] = {}

    # -- queries -------------------------------------------------------

    def effects_of(self, qname: str) -> FunctionEffects:
        return self.effects.get(qname) or FunctionEffects()

    def outward(self, qname: str) -> Effect:
        """Effects *qname* propagates to its callers (barriers applied)."""
        out = self.effects_of(qname).transitive
        for prefix, mask in BARRIERS.items():
            if qname.startswith(prefix):
                out &= ~mask
        return out

    def call_site_effects(self, caller: str, edge: CallEdge) -> Effect:
        """What calling through *edge* can reach."""
        return self.outward(edge.callee)

    def chain_to(
        self, qname: str, effect: Effect
    ) -> list[tuple[CallEdge, str]] | None:
        """Shortest call chain from *qname* to a local carrier of *effect*.

        Returns ``[(edge, callee), ...]``; empty list when *qname* itself
        carries the effect locally; ``None`` when unreachable.  BFS with
        deterministic tie-breaking (edge order = source order).
        """
        if self.effects_of(qname).local & effect:
            return []
        seen = {qname}
        queue: list[tuple[str, list[tuple[CallEdge, str]]]] = [(qname, [])]
        while queue:
            current, path = queue.pop(0)
            for edge in self.graph.callees(current):
                callee = edge.callee
                if edge.kind not in PROPAGATING_KINDS or callee in seen:
                    continue
                if not self.outward(callee) & effect:
                    continue
                seen.add(callee)
                new_path = [*path, (edge, callee)]
                if self.effects_of(callee).local & effect:
                    return new_path
                queue.append((callee, new_path))
        return None

    def describe_chain(
        self, qname: str, effect: Effect
    ) -> tuple[str, EffectSite | None]:
        """Human-readable chain plus the terminal seed site, for messages."""
        chain = self.chain_to(qname, effect)
        if chain is None:
            return "", None
        if not chain:
            site = self.effects_of(qname).site_for(effect)
            return "(local)", site
        names = [edge.callee.rsplit(".", 1)[-1] for edge, _ in chain]
        terminal = chain[-1][1]
        site = self.effects_of(terminal).site_for(effect)
        return " -> ".join(names), site


# ----------------------------------------------------------------------
# local effect scan
# ----------------------------------------------------------------------

def _own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body, excluding nested def bodies (lambdas stay)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_effects(
    info: FunctionInfo, imports: ImportMap
) -> FunctionEffects:
    out = FunctionEffects()

    def add(effect: Effect, lineno: int, detail: str) -> None:
        out.local |= effect
        out.sites.append(EffectSite(effect, lineno, detail))

    # Pre-scan: does this function select anywhere?  (BRK302 parity —
    # a recv next to its own select is guarded, not blocking.)
    has_select = False
    for node in _own_nodes(info.node):
        if isinstance(node, ast.Call):
            qual = imports.resolve(node.func) or ""
            if qual in _SELECT_CALLS:
                has_select = True
                break

    for node in _own_nodes(info.node):
        if not isinstance(node, ast.Call):
            continue
        qual = imports.resolve(node.func) or ""
        attr = dotted_name(node.func) or ""
        leaf = attr.rsplit(".", 1)[-1]
        kwargs = {kw.arg for kw in node.keywords if kw.arg}

        if qual in _SELECT_CALLS:
            add(Effect.RUNS_SELECT, node.lineno, qual)
        elif qual in EXTERNAL_SEEDS:
            add(EXTERNAL_SEEDS[qual], node.lineno, qual)
        elif qual in ACK_CONSTRUCTORS:
            add(Effect.RELEASES_ACKS, node.lineno, f"{qual}(...)")
        elif (
            qual.startswith("random.")
            and qual.count(".") == 1
            and qual.rsplit(".", 1)[-1] in _RANDOM_MODULE_FUNCS
        ):
            add(Effect.READS_ENTROPY, node.lineno, qual)
        elif qual == "random.Random" and not node.args and not node.keywords:
            add(Effect.READS_ENTROPY, node.lineno, "random.Random() unseeded")

        if "." not in attr:
            continue
        # method-shaped calls below: receiver unknown, judge by name
        if (
            leaf in _SOCKET_BLOCKING
            and not has_select
            and "timeout" not in kwargs
        ):
            add(
                Effect.BLOCKS_RECV,
                node.lineno,
                f".{leaf}() without select guard or timeout=",
            )
        elif leaf == "get" and not node.args:
            bounded = "timeout" in kwargs or any(
                kw.arg == "block"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            )
            if not bounded:
                add(Effect.BLOCKS_QUEUE, node.lineno, ".get() unbounded")
        elif leaf in _SEND_METHODS:
            add(Effect.SENDS_MESSAGE, node.lineno, f".{leaf}()")
        elif leaf in METHOD_FALLBACK_SEEDS:
            add(
                METHOD_FALLBACK_SEEDS[leaf],
                node.lineno,
                f".{leaf}() [method-name seed]",
            )
    return out


# ----------------------------------------------------------------------
# fixpoint
# ----------------------------------------------------------------------

def _compute_effects(analysis: ProjectAnalysis, tree: SourceTree) -> None:
    graph = analysis.graph
    imports_by_module: dict[str, ImportMap] = {}
    for source_file in tree:
        if source_file.tree is None:
            continue
        imports_by_module[module_qname(source_file.rel_path)] = ImportMap(
            source_file.tree
        )

    for qname, info in graph.functions.items():
        imports = imports_by_module.get(info.module)
        if imports is None:
            analysis.effects[qname] = FunctionEffects()
            continue
        fx = _local_effects(info, imports)
        seeded = PROJECT_SEEDS.get(qname)
        if seeded is not None:
            fx.local |= seeded
            fx.sites.append(EffectSite(seeded, info.lineno, "project seed"))
        fx.transitive = fx.local
        analysis.effects[qname] = fx

    # Worklist fixpoint: propagate callee effects (through barriers)
    # caller-ward until nothing changes.  Monotone over a finite lattice,
    # so it terminates; cycles (recursion) are handled for free.
    worklist = set(graph.functions)
    while worklist:
        qname = worklist.pop()
        fx = analysis.effects[qname]
        combined = fx.local
        for edge in graph.callees(qname):
            if edge.kind in PROPAGATING_KINDS:
                combined |= analysis.outward(edge.callee)
        if combined != fx.transitive:
            fx.transitive = combined
            for edge in graph.callers(qname):
                worklist.add(edge.caller)


def project_analysis(tree: SourceTree) -> ProjectAnalysis:
    """The shared per-tree analysis: one call-graph build, one fixpoint."""
    cached = tree.caches.get("project_analysis")
    if isinstance(cached, ProjectAnalysis):
        return cached
    analysis = ProjectAnalysis(build_callgraph(tree))
    _compute_effects(analysis, tree)
    tree.caches["project_analysis"] = analysis
    return analysis
